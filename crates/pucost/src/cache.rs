//! A sharded, thread-safe memoization cache fronting [`evaluate`] and
//! [`best_dataflow`].
//!
//! The AutoSeg search loops (Algorithm 1's dataflow probes, the Section
//! VI-G co-design sweeps) evaluate the same `(layer, PU, dataflow)`
//! triples thousands of times: every scale-up trial re-scores every
//! segment, every search candidate re-probes both dataflows per item.
//! [`evaluate`] is a pure function of its inputs plus the energy model, so
//! those repeats can be served from a cache without changing a single bit
//! of the result.
//!
//! The cache is sharded (`Vec<Mutex<HashMap<..>>>`) so concurrent DSE
//! workers rarely contend on the same lock: the key hash picks the shard,
//! and each shard is an independent map guarded by its own mutex.
//!
//! One cache is tied to one [`EnergyModel`] (the model is part of the
//! evaluation's identity); callers that switch energy models use separate
//! caches.

use crate::batch::{PuBatch, PuEvalBatch};
use crate::compile::CompiledEval;
use crate::energy::EnergyModel;
use crate::eval::{evaluate, pick_dataflow, PuEval};
use crate::layer::LayerDesc;
use crate::pu::{Dataflow, PuConfig};
use crate::util::u64_of;
// Shard maps are lookup-only (never iterated), so hash order cannot leak
// into any output; lint: allow(nondet-iter)
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Canonical hashable identity of one `(layer, PU, dataflow)` evaluation.
///
/// [`PuConfig`] carries an `f64` clock and therefore cannot implement
/// `Eq`/`Hash` directly; the key stores the frequency's IEEE-754 bits,
/// which is exact for the cache's purpose (two configs evaluate
/// identically iff every field, including the clock, is bit-identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvalKey {
    layer: LayerDesc,
    rows: usize,
    cols: usize,
    act_buf_bytes: u64,
    wgt_buf_bytes: u64,
    freq_bits: u64,
    dataflow: Dataflow,
}

impl EvalKey {
    /// Builds the key for `(layer, pu, df)`.
    pub fn new(layer: &LayerDesc, pu: &PuConfig, df: Dataflow) -> Self {
        Self {
            layer: *layer,
            rows: pu.rows,
            cols: pu.cols,
            act_buf_bytes: pu.act_buf_bytes,
            wgt_buf_bytes: pu.wgt_buf_bytes,
            freq_bits: pu.freq_mhz.to_bits(),
            dataflow: df,
        }
    }
}

/// Default shard count: enough that 8–16 workers rarely collide, small
/// enough that an idle cache costs nothing noticeable.
const DEFAULT_SHARDS: usize = 16;

/// One stored evaluation plus its provenance tier: `warm` entries were
/// imported (disk snapshot / checkpoint), everything else was computed by
/// this cache instance ("hot"). The tier never changes the served value —
/// it only routes the hit into the matching counter.
#[derive(Debug, Clone, Copy)]
struct Entry {
    eval: PuEval,
    warm: bool,
}

/// Sharded concurrent memo cache for PU cost evaluations.
///
/// Cheap to share by reference across scoped worker threads; all methods
/// take `&self`.
///
/// # Example
///
/// ```
/// use pucost::{Dataflow, EnergyModel, EvalCache, LayerDesc, PuConfig, evaluate};
///
/// let cache = EvalCache::new(EnergyModel::tsmc28());
/// let layer = LayerDesc {
///     in_c: 64, in_h: 28, in_w: 28, out_c: 128, out_h: 28, out_w: 28,
///     kernel: 3, stride: 1, groups: 1, is_fc: false,
/// };
/// let pu = PuConfig::new(16, 16);
/// let direct = evaluate(&layer, &pu, Dataflow::WeightStationary, &EnergyModel::tsmc28());
/// let cached = cache.evaluate(&layer, &pu, Dataflow::WeightStationary);
/// assert_eq!(direct, cached);                 // bit-identical
/// let again = cache.evaluate(&layer, &pu, Dataflow::WeightStationary);
/// assert_eq!(cached, again);
/// assert_eq!(cache.hits(), 1);
/// ```
#[derive(Debug)]
pub struct EvalCache {
    em: EnergyModel,
    shards: Vec<Mutex<HashMap<EvalKey, Entry>>>, // lookup-only; lint: allow(nondet-iter)
    hits: AtomicU64,
    warm_hits: AtomicU64,
    misses: AtomicU64,
    batched_probes: AtomicU64,
    batch_misses: AtomicU64,
    batch_shard_locks: AtomicU64,
}

impl Default for EvalCache {
    fn default() -> Self {
        Self::new(EnergyModel::default())
    }
}

impl EvalCache {
    /// A cache bound to `em` with the default shard count.
    pub fn new(em: EnergyModel) -> Self {
        Self::with_shards(em, DEFAULT_SHARDS)
    }

    /// A cache bound to `em` with an explicit shard count (minimum 1).
    pub fn with_shards(em: EnergyModel, shards: usize) -> Self {
        Self {
            em,
            // lookup-only; lint: allow(nondet-iter)
            shards: (0..shards.max(1)).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            batched_probes: AtomicU64::new(0),
            batch_misses: AtomicU64::new(0),
            batch_shard_locks: AtomicU64::new(0),
        }
    }

    /// The energy model every cached evaluation was produced under.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.em
    }

    fn shard_index(&self, key: &EvalKey) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        crate::util::usize_of(h.finish()) % self.shards.len()
    }

    // lookup-only; lint: allow(nondet-iter)
    fn shard_of(&self, key: &EvalKey) -> &Mutex<HashMap<EvalKey, Entry>> {
        &self.shards[self.shard_index(key)]
    }

    /// Memoized [`evaluate`]: identical results, repeated calls served
    /// from the shard map.
    ///
    /// Shard locks recover from poisoning: the map holds plain values
    /// whose invariants cannot be half-written, so a panicking worker
    /// elsewhere in the pool must not cascade through the cache.
    pub fn evaluate(&self, layer: &LayerDesc, pu: &PuConfig, df: Dataflow) -> PuEval {
        let key = EvalKey::new(layer, pu, df);
        let shard = self.shard_of(&key);
        if let Some(hit) = shard.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::add("pucost.cache.hits", 1);
            if hit.warm {
                self.warm_hits.fetch_add(1, Ordering::Relaxed);
                obs::add("pucost.cache.warm_hits", 1);
            }
            return hit.eval;
        }
        // Compute outside the lock so a slow evaluation never blocks the
        // shard's other keys.
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::add("pucost.cache.misses", 1);
        let eval = evaluate(layer, pu, df, &self.em);
        // `cache.poison` fault point: poison this shard's mutex as a
        // crashed worker would, then proceed — the insert below must
        // recover, proving a panic elsewhere in the pool cannot take the
        // cache (or the search) down with it.
        if faultsim::armed() && faultsim::hit("cache.poison") {
            obs::add("fault.injected", 1);
            obs::event("fault.injected", &[("point", "cache.poison".into())]);
            poison_mutex(shard);
        }
        shard
            .lock()
            .unwrap_or_else(|e| {
                obs::add("fault.recovered", 1);
                obs::event("fault.recovered", &[("point", "cache.poison".into())]);
                e.into_inner()
            })
            .insert(key, Entry { eval, warm: false });
        eval
    }

    /// Memoized [`best_dataflow`]: probes both dataflows through the cache
    /// and applies the same latency-first, energy-tie-break selection.
    pub fn best_dataflow(&self, layer: &LayerDesc, pu: &PuConfig) -> (Dataflow, PuEval) {
        let ws = self.evaluate(layer, pu, Dataflow::WeightStationary);
        let os = self.evaluate(layer, pu, Dataflow::OutputStationary);
        pick_dataflow(ws, os)
    }

    /// Batched probe core: resolves every key in `keys`, touching each
    /// shard's lock at most twice (one hit-probe pass, one miss-insert
    /// pass) instead of once or twice *per key* like the scalar path.
    ///
    /// Misses are computed outside all locks through a [`CompiledEval`]
    /// that is recompiled only when the layer changes (callers order keys
    /// layer-major, so a batch over one layer compiles once). Results,
    /// counters and the `cache.poison` fault point behave exactly like an
    /// equivalent sequence of scalar [`EvalCache::evaluate`] calls:
    /// duplicate keys within a batch count one miss then hits, values are
    /// bit-identical, and the injected-poison recovery leaves every entry
    /// served.
    fn probe_batch(&self, keys: &[EvalKey]) -> Vec<PuEval> {
        let n = keys.len();
        if n == 0 {
            return Vec::new();
        }
        self.batched_probes.fetch_add(u64_of(n), Ordering::Relaxed);
        let n_shards = self.shards.len();
        let mut out: Vec<Option<PuEval>> = vec![None; n];
        // Pass 0 — shard assignment by prefix-cloned hashing. The derived
        // `Hash` for `EvalKey` feeds one sequential hasher field by field
        // (layer first), so hashing the layer once into a base hasher and
        // cloning it per key before hashing the remaining fields yields
        // the exact same `finish()` — and therefore the same shard — as
        // the scalar `shard_index`, while paying the (large) layer hash
        // once per layer run instead of once per key.
        let mut shard_idx: Vec<usize> = Vec::with_capacity(n);
        let mut counts: Vec<usize> = vec![0; n_shards];
        let mut prefix: Option<(LayerDesc, std::collections::hash_map::DefaultHasher)> = None;
        for key in keys {
            let mut h = match &prefix {
                Some((layer, base)) if *layer == key.layer => base.clone(),
                _ => {
                    let mut base = std::collections::hash_map::DefaultHasher::new();
                    key.layer.hash(&mut base);
                    let h = base.clone();
                    prefix = Some((key.layer, base));
                    h
                }
            };
            key.rows.hash(&mut h);
            key.cols.hash(&mut h);
            key.act_buf_bytes.hash(&mut h);
            key.wgt_buf_bytes.hash(&mut h);
            key.freq_bits.hash(&mut h);
            key.dataflow.hash(&mut h);
            let si = crate::util::usize_of(h.finish()) % n_shards;
            shard_idx.push(si);
            counts[si] += 1;
        }
        // Flat counting-sort bucketing: `order` lists key indices grouped
        // by shard (batch order within a shard), replacing per-shard Vecs.
        let mut starts: Vec<usize> = Vec::with_capacity(n_shards);
        let mut acc = 0usize;
        for &c in &counts {
            starts.push(acc);
            acc += c;
        }
        let mut cursor = starts.clone();
        let mut order: Vec<usize> = vec![0; n];
        for (i, &si) in shard_idx.iter().enumerate() {
            order[cursor[si]] = i;
            cursor[si] += 1;
        }
        // Pass 1 — probe: one lock per populated shard. In-batch duplicate
        // keys that miss are resolved by a linear scan of the shard's
        // pending misses (batches are small per shard, and key equality is
        // far cheaper than the two extra hashes a dedupe map would cost);
        // duplicates of present entries simply hit the map like the first
        // occurrence did.
        let mut locks = 0u64;
        let mut hit_count = 0u64;
        let mut warm_count = 0u64;
        // Miss key indices grouped by shard (shard-major, batch order
        // within a shard), with per-shard counts for the insert pass.
        let mut miss_by_shard: Vec<usize> = Vec::new();
        let mut miss_counts: Vec<usize> = vec![0; n_shards];
        // (duplicate, first-miss) index pairs, resolved after pass 2.
        let mut dups: Vec<(usize, usize)> = Vec::new();
        for si in 0..n_shards {
            let bucket = &order[starts[si]..starts[si] + counts[si]];
            if bucket.is_empty() {
                continue;
            }
            let guard = self.shards[si].lock().unwrap_or_else(|e| e.into_inner());
            locks += 1;
            let pending_from = miss_by_shard.len();
            for &i in bucket {
                if let Some(hit) = guard.get(&keys[i]) {
                    hit_count += 1;
                    if hit.warm {
                        warm_count += 1;
                    }
                    out[i] = Some(hit.eval);
                } else if let Some(&j) =
                    miss_by_shard[pending_from..].iter().find(|&&j| keys[j] == keys[i])
                {
                    // Duplicate of an earlier in-batch miss: the scalar
                    // sequence would hit the (cold) entry the first
                    // occurrence inserted.
                    dups.push((i, j));
                    hit_count += 1;
                } else {
                    miss_by_shard.push(i);
                    miss_counts[si] += 1;
                }
            }
        }
        // Pass 2 — compute all misses outside any lock, in batch order so
        // one layer's candidates share one compiled program.
        let mut miss_idx = miss_by_shard.clone();
        miss_idx.sort_unstable();
        let mut compiled: Option<CompiledEval> = None;
        for &i in &miss_idx {
            let key = &keys[i];
            if compiled.as_ref().is_none_or(|c| *c.layer() != key.layer) {
                compiled = Some(CompiledEval::new(&key.layer, &self.em));
            }
            let program = compiled.as_ref().expect("compiled above");
            out[i] = Some(program.eval_parts(
                key.rows,
                key.cols,
                key.act_buf_bytes,
                key.wgt_buf_bytes,
                f64::from_bits(key.freq_bits),
                key.dataflow,
            ));
        }
        // `cache.poison` fault point: the scalar path checks once per
        // miss, so the batch path draws the same number of faults in the
        // same (batch) order and poisons each struck shard before its
        // insert pass below, which must recover.
        let mut poisoned: Vec<bool> = vec![false; n_shards];
        if faultsim::armed() {
            for &i in &miss_idx {
                if faultsim::hit("cache.poison") {
                    obs::add("fault.injected", 1);
                    obs::event("fault.injected", &[("point", "cache.poison".into())]);
                    poisoned[shard_idx[i]] = true;
                }
            }
        }
        // Pass 3 — insert: one lock per shard that had misses, walking the
        // shard-major miss list by per-shard counts.
        let mut off = 0usize;
        for (si, &cnt) in miss_counts.iter().enumerate() {
            let bucket = &miss_by_shard[off..off + cnt];
            off += cnt;
            if bucket.is_empty() {
                continue;
            }
            if poisoned[si] {
                poison_mutex(&self.shards[si]);
            }
            let mut guard = self.shards[si].lock().unwrap_or_else(|e| {
                obs::add("fault.recovered", 1);
                obs::event("fault.recovered", &[("point", "cache.poison".into())]);
                e.into_inner()
            });
            locks += 1;
            for &i in bucket {
                let eval = out[i].expect("miss computed in pass 2");
                guard.insert(keys[i], Entry { eval, warm: false });
            }
        }
        // In-batch duplicates of misses resolve against their first
        // occurrence; they were counted as (cold) hits in pass 1.
        for &(i, j) in &dups {
            out[i] = out[j];
        }
        let miss_count = u64_of(miss_idx.len());
        self.hits.fetch_add(hit_count, Ordering::Relaxed);
        self.warm_hits.fetch_add(warm_count, Ordering::Relaxed);
        self.misses.fetch_add(miss_count, Ordering::Relaxed);
        self.batch_misses.fetch_add(miss_count, Ordering::Relaxed);
        self.batch_shard_locks.fetch_add(locks, Ordering::Relaxed);
        if hit_count > 0 {
            obs::add("pucost.cache.hits", hit_count);
        }
        if warm_count > 0 {
            obs::add("pucost.cache.warm_hits", warm_count);
        }
        if miss_count > 0 {
            obs::add("pucost.cache.misses", miss_count);
        }
        obs::add("pucost.cache.batched_probes", u64_of(n));
        obs::flight::note("cache.batch_probe", u64_of(n), miss_count);
        out.into_iter().map(|e| e.expect("all keys resolved")).collect()
    }

    /// Memoized [`crate::evaluate_batch`]: evaluates `layer` against
    /// every candidate in `pus` under `df`, serving hits and inserting
    /// misses with one lock acquisition per shard. Results (and the
    /// resulting cache contents) are bit-identical to calling
    /// [`EvalCache::evaluate`] per candidate.
    pub fn evaluate_batch(&self, layer: &LayerDesc, pus: &PuBatch, df: Dataflow) -> PuEvalBatch {
        let keys: Vec<EvalKey> =
            (0..pus.len()).map(|i| EvalKey::new(layer, &pus.pu(i), df)).collect();
        PuEvalBatch::from(self.probe_batch(&keys))
    }

    /// Memoized [`crate::best_dataflow_batch`]: probes WS and OS for
    /// every candidate in one fused sweep (both entries are cached, as
    /// the scalar [`EvalCache::best_dataflow`] would) and applies the
    /// shared latency-first, energy-tie-break selection per candidate.
    pub fn best_dataflow_batch(&self, layer: &LayerDesc, pus: &PuBatch) -> PuEvalBatch {
        let mut keys = Vec::with_capacity(pus.len() * 2);
        for i in 0..pus.len() {
            let pu = pus.pu(i);
            keys.push(EvalKey::new(layer, &pu, Dataflow::WeightStationary));
            keys.push(EvalKey::new(layer, &pu, Dataflow::OutputStationary));
        }
        let evals = self.probe_batch(&keys);
        let picked: Vec<PuEval> = evals
            .chunks_exact(2)
            .map(|pair| pick_dataflow(pair[0], pair[1]).1)
            .collect();
        PuEvalBatch::from(picked)
    }

    /// Batched probe of many layers against one PU under one dataflow —
    /// the segment-scoring shape (`eval_pu_segment` sums one PU over a
    /// segment's items). Same results and cache contents as a scalar
    /// [`EvalCache::evaluate`] loop.
    pub fn evaluate_layers(
        &self,
        layers: &[LayerDesc],
        pu: &PuConfig,
        df: Dataflow,
    ) -> Vec<PuEval> {
        let keys: Vec<EvalKey> = layers.iter().map(|l| EvalKey::new(l, pu, df)).collect();
        self.probe_batch(&keys)
    }

    /// Batched probe of an arbitrary `(layer, PU, dataflow)` list — the
    /// heterogeneous shape the serving scheduler collects. Group probes
    /// by layer where possible: each layer change recompiles the miss
    /// kernel.
    pub fn evaluate_probes(&self, probes: &[(LayerDesc, PuConfig, Dataflow)]) -> Vec<PuEval> {
        let keys: Vec<EvalKey> =
            probes.iter().map(|(l, pu, df)| EvalKey::new(l, pu, *df)).collect();
        self.probe_batch(&keys)
    }

    /// Number of lookups served from the cache (both tiers).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Hits served from entries imported via [`EvalCache::import_line`]
    /// (the persistent "warm" tier — a disk snapshot or a checkpoint).
    pub fn warm_hits(&self) -> u64 {
        self.warm_hits.load(Ordering::Relaxed)
    }

    /// Hits served from entries this cache instance computed itself (the
    /// in-memory "hot" tier): `hits - warm_hits`.
    pub fn hot_hits(&self) -> u64 {
        self.hits().saturating_sub(self.warm_hits())
    }

    /// Number of lookups that had to evaluate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups that arrived through the batch API (each batched key
    /// counts once; also included in `hits`/`misses`).
    pub fn batched_probes(&self) -> u64 {
        self.batched_probes.load(Ordering::Relaxed)
    }

    /// Batch-path lookups that had to evaluate (subset of `misses`).
    pub fn batch_misses(&self) -> u64 {
        self.batch_misses.load(Ordering::Relaxed)
    }

    /// Shard-lock acquisitions taken by the batch path. The scalar path
    /// pays one lock per probe plus one per insert; comparing this
    /// against `batched_probes` shows the amortization (a whole batch
    /// costs at most `2 * shards` acquisitions).
    pub fn batch_shard_locks(&self) -> u64 {
        self.batch_shard_locks.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 for an unused cache.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            crate::util::f64_of(h) / crate::util::f64_of(h + m)
        }
    }

    /// Number of distinct evaluations stored.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and resets the hit/miss counters.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.warm_hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.batched_probes.store(0, Ordering::Relaxed);
        self.batch_misses.store(0, Ordering::Relaxed);
        self.batch_shard_locks.store(0, Ordering::Relaxed);
    }

    /// Point-in-time snapshot of the cache's counters and occupancy,
    /// cheap enough to take at the end of every search.
    pub fn stats(&self) -> CacheStats {
        let per_shard: Vec<usize> = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .collect();
        let entries = per_shard.iter().sum();
        let max_shard = per_shard.iter().copied().max().unwrap_or(0);
        CacheStats {
            hits: self.hits(),
            warm_hits: self.warm_hits(),
            hot_hits: self.hot_hits(),
            misses: self.misses(),
            hit_rate: self.hit_rate(),
            entries,
            shards: per_shard.len(),
            max_shard,
            batched_probes: self.batched_probes(),
            batch_misses: self.batch_misses(),
            batch_shard_locks: self.batch_shard_locks(),
        }
    }

    /// FNV-1a fingerprint of the bound [`EnergyModel`]'s exact bits.
    ///
    /// Checkpoints store this next to exported cache entries so a resume
    /// under a different energy model is rejected instead of silently
    /// mixing evaluations from two models.
    pub fn model_fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for bits in [
            self.em.mac_pj.to_bits(),
            self.em.sram_pj_per_byte.to_bits(),
            self.em.psum_pj_per_byte.to_bits(),
            self.em.dram_pj_per_byte.to_bits(),
        ] {
            for byte in bits.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Serializes every cached entry to one text line each, sorted (the
    /// shard maps hash-order their entries; sorting makes the export a
    /// deterministic function of the cache *contents*). Floats are IEEE
    /// bits in hex, so [`EvalCache::import_line`] round-trips bit-exactly.
    pub fn export_lines(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.len());
        for s in &self.shards {
            let g = s.lock().unwrap_or_else(|e| e.into_inner());
            for (k, v) in g.iter() {
                out.push(entry_line(k, &v.eval));
            }
        }
        out.sort_unstable();
        out
    }

    /// Restores one [`EvalCache::export_lines`] line into the cache
    /// (hit/miss counters are untouched — a restored entry is neither).
    /// Imported entries belong to the warm tier: later lookups that land
    /// on them count under [`EvalCache::warm_hits`].
    pub fn import_line(&self, line: &str) -> Result<(), SnapshotError> {
        let (key, eval) = parse_entry_line(line)?;
        let shard = self.shard_of(&key);
        shard
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, Entry { eval, warm: true });
        Ok(())
    }
}

/// A malformed [`EvalCache::export_lines`] line fed to
/// [`EvalCache::import_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// The offending line.
    pub line: String,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad cache snapshot line {:?}", self.line)
    }
}

impl std::error::Error for SnapshotError {}

/// Serializes one cache entry: `ck` + 16 key fields + 13 eval fields.
fn entry_line(k: &EvalKey, v: &PuEval) -> String {
    let l = &k.layer;
    let e = &v.energy;
    format!(
        "ck {} {} {} {} {} {} {} {} {} {} {} {} {} {} {:016x} {} {} {} {:016x} {} {:016x} {} {} {} {:016x} {:016x} {:016x} {:016x} {}",
        l.in_c,
        l.in_h,
        l.in_w,
        l.out_c,
        l.out_h,
        l.out_w,
        l.kernel,
        l.stride,
        l.groups,
        u8::from(l.is_fc),
        k.rows,
        k.cols,
        k.act_buf_bytes,
        k.wgt_buf_bytes,
        k.freq_bits,
        k.dataflow,
        v.dataflow,
        v.cycles,
        v.seconds.to_bits(),
        v.macs,
        v.utilization.to_bits(),
        v.act_buf_bytes,
        v.wgt_buf_bytes,
        v.psum_bytes,
        e.mac_pj.to_bits(),
        e.act_buf_pj.to_bits(),
        e.wgt_buf_pj.to_bits(),
        e.psum_pj.to_bits(),
        u8::from(v.buffers_ok),
    )
}

fn parse_entry_line(line: &str) -> Result<(EvalKey, PuEval), SnapshotError> {
    let bad = || SnapshotError {
        line: line.to_string(),
    };
    let toks: Vec<&str> = line.split_ascii_whitespace().collect();
    if toks.len() != 30 || toks[0] != "ck" {
        return Err(bad());
    }
    let int = |i: usize| -> Result<usize, SnapshotError> {
        toks[i].parse::<usize>().map_err(|_| bad())
    };
    let int64 = |i: usize| -> Result<u64, SnapshotError> {
        toks[i].parse::<u64>().map_err(|_| bad())
    };
    let bits = |i: usize| -> Result<u64, SnapshotError> {
        u64::from_str_radix(toks[i], 16).map_err(|_| bad())
    };
    let flag = |i: usize| -> Result<bool, SnapshotError> {
        match toks[i] {
            "0" => Ok(false),
            "1" => Ok(true),
            _ => Err(bad()),
        }
    };
    let df = |i: usize| -> Result<Dataflow, SnapshotError> {
        match toks[i] {
            "WS" => Ok(Dataflow::WeightStationary),
            "OS" => Ok(Dataflow::OutputStationary),
            _ => Err(bad()),
        }
    };
    let layer = LayerDesc {
        in_c: int(1)?,
        in_h: int(2)?,
        in_w: int(3)?,
        out_c: int(4)?,
        out_h: int(5)?,
        out_w: int(6)?,
        kernel: int(7)?,
        stride: int(8)?,
        groups: int(9)?,
        is_fc: flag(10)?,
    };
    let key = EvalKey {
        layer,
        rows: int(11)?,
        cols: int(12)?,
        act_buf_bytes: int64(13)?,
        wgt_buf_bytes: int64(14)?,
        freq_bits: bits(15)?,
        dataflow: df(16)?,
    };
    let eval = PuEval {
        dataflow: df(17)?,
        cycles: int64(18)?,
        seconds: f64::from_bits(bits(19)?),
        macs: int64(20)?,
        utilization: f64::from_bits(bits(21)?),
        act_buf_bytes: int64(22)?,
        wgt_buf_bytes: int64(23)?,
        psum_bytes: int64(24)?,
        energy: crate::energy::EnergyBreakdown {
            mac_pj: f64::from_bits(bits(25)?),
            act_buf_pj: f64::from_bits(bits(26)?),
            wgt_buf_pj: f64::from_bits(bits(27)?),
            psum_pj: f64::from_bits(bits(28)?),
        },
        buffers_ok: flag(29)?,
    };
    Ok((key, eval))
}

/// Poisons `mutex` exactly as a panicking thread holding its guard would,
/// keeping the panic contained (and the default hook silenced) so the
/// only observable effect is the poison flag the recovery path must
/// handle.
// lint: allow(nondet-iter) — type mention in the signature only; the shard map is never iterated here.
fn poison_mutex(mutex: &Mutex<HashMap<EvalKey, Entry>>) {
    struct QuietPayload;
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _guard = mutex.lock().unwrap_or_else(|e| e.into_inner());
        std::panic::panic_any(QuietPayload);
    }));
    std::panic::set_hook(prev);
}

/// Snapshot of an [`EvalCache`]'s counters, taken by [`EvalCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheStats {
    /// Lookups served from the cache (warm + hot).
    pub hits: u64,
    /// Hits served from imported (persistent-tier) entries.
    pub warm_hits: u64,
    /// Hits served from entries computed by this cache instance.
    pub hot_hits: u64,
    /// Lookups that had to evaluate.
    pub misses: u64,
    /// `hits / (hits + misses)`, 0 for an unused cache.
    pub hit_rate: f64,
    /// Distinct evaluations stored across all shards.
    pub entries: usize,
    /// Shard count.
    pub shards: usize,
    /// Occupancy of the fullest shard (balance indicator).
    pub max_shard: usize,
    /// Lookups that arrived through the batch API.
    pub batched_probes: u64,
    /// Batch-path lookups that had to evaluate.
    pub batch_misses: u64,
    /// Shard-lock acquisitions taken by the batch path (at most two per
    /// populated shard per batch — the amortization the batch API buys).
    pub batch_shard_locks: u64,
}

impl CacheStats {
    /// Publishes the snapshot as obs counters plus one summary event.
    pub fn publish(&self, label: &'static str) {
        if !obs::enabled() {
            return;
        }
        obs::event(
            label,
            &[
                ("hits", self.hits.into()),
                ("warm_hits", self.warm_hits.into()),
                ("misses", self.misses.into()),
                ("hit_rate", self.hit_rate.into()),
                ("entries", self.entries.into()),
                ("max_shard", self.max_shard.into()),
                ("batched_probes", self.batched_probes.into()),
                ("batch_misses", self.batch_misses.into()),
                ("batch_shard_locks", self.batch_shard_locks.into()),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::best_dataflow;

    fn conv() -> LayerDesc {
        LayerDesc {
            in_c: 64,
            in_h: 28,
            in_w: 28,
            out_c: 128,
            out_h: 28,
            out_w: 28,
            kernel: 3,
            stride: 1,
            groups: 1,
            is_fc: false,
        }
    }

    #[test]
    fn cached_matches_direct() {
        let em = EnergyModel::tsmc28();
        let cache = EvalCache::new(em);
        let pu = PuConfig::new(8, 16).with_buffers(4096, 4096);
        for df in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
            assert_eq!(cache.evaluate(&conv(), &pu, df), evaluate(&conv(), &pu, df, &em));
        }
        assert_eq!(cache.best_dataflow(&conv(), &pu), best_dataflow(&conv(), &pu, &em));
    }

    #[test]
    fn hits_and_misses_counted() {
        let cache = EvalCache::new(EnergyModel::tsmc28());
        let pu = PuConfig::new(16, 16);
        assert_eq!(cache.hit_rate(), 0.0);
        cache.evaluate(&conv(), &pu, Dataflow::WeightStationary);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.evaluate(&conv(), &pu, Dataflow::WeightStationary);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        // A different PU or dataflow is a different key.
        cache.evaluate(&conv(), &pu, Dataflow::OutputStationary);
        cache.evaluate(&conv(), &PuConfig::new(8, 8), Dataflow::WeightStationary);
        assert_eq!(cache.len(), 3);
        assert!(cache.hit_rate() > 0.0 && cache.hit_rate() < 1.0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn stats_snapshot_matches_counters() {
        let cache = EvalCache::with_shards(EnergyModel::tsmc28(), 4);
        let s0 = cache.stats();
        assert_eq!((s0.hits, s0.misses, s0.entries), (0, 0, 0));
        assert_eq!(s0.hit_rate, 0.0);
        assert_eq!(s0.shards, 4);
        let pu = PuConfig::new(16, 16);
        cache.evaluate(&conv(), &pu, Dataflow::WeightStationary);
        cache.evaluate(&conv(), &pu, Dataflow::WeightStationary);
        cache.evaluate(&conv(), &pu, Dataflow::OutputStationary);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (cache.hits(), cache.misses()));
        assert_eq!(s.entries, cache.len());
        assert!(s.max_shard >= 1 && s.max_shard <= s.entries);
        assert!((s.hit_rate - cache.hit_rate()).abs() < 1e-12);
    }

    #[test]
    fn frequency_and_buffers_distinguish_keys() {
        let cache = EvalCache::new(EnergyModel::tsmc28());
        let a = PuConfig::new(16, 16).with_freq_mhz(800.0);
        let b = PuConfig::new(16, 16).with_freq_mhz(400.0);
        let ea = cache.evaluate(&conv(), &a, Dataflow::WeightStationary);
        let eb = cache.evaluate(&conv(), &b, Dataflow::WeightStationary);
        assert_eq!(cache.misses(), 2, "distinct clocks must not collide");
        assert_eq!(ea.cycles, eb.cycles);
        assert!(ea.seconds < eb.seconds);
        let c = PuConfig::new(16, 16).with_buffers(1, 1);
        let ec = cache.evaluate(&conv(), &c, Dataflow::WeightStationary);
        assert_eq!(cache.misses(), 3);
        assert!(!ec.buffers_ok);
    }

    #[test]
    fn snapshot_lines_round_trip_bit_exactly() {
        let em = EnergyModel::tsmc28();
        let cache = EvalCache::with_shards(em, 4);
        let pus = [
            PuConfig::new(16, 16),
            PuConfig::new(8, 8).with_buffers(4096, 4096),
            PuConfig::new(16, 16).with_freq_mhz(400.0),
        ];
        for pu in &pus {
            for df in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
                cache.evaluate(&conv(), pu, df);
            }
        }
        let lines = cache.export_lines();
        assert_eq!(lines.len(), cache.len());
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "export is sorted (deterministic)");

        let restored = EvalCache::with_shards(em, 2);
        for l in &lines {
            restored.import_line(l).expect("line parses");
        }
        assert_eq!(restored.len(), cache.len());
        assert_eq!((restored.hits(), restored.misses()), (0, 0));
        // Every restored entry is served as a hit, bit-identical.
        for pu in &pus {
            for df in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
                assert_eq!(
                    restored.evaluate(&conv(), pu, df),
                    evaluate(&conv(), pu, df, &em)
                );
            }
        }
        assert_eq!(restored.misses(), 0, "restored entries hit, never re-evaluate");
        assert_eq!(restored.export_lines(), lines, "round trip is stable");
    }

    #[test]
    fn import_rejects_malformed_lines() {
        let cache = EvalCache::new(EnergyModel::tsmc28());
        for bad in [
            "",
            "ck 1 2 3",
            "nonsense",
            "ck a 28 28 128 28 28 3 1 1 0 16 16 0 0 0 WS WS 1 0 1 0 1 1 1 0 0 0 0 1",
            "ck 64 28 28 128 28 28 3 1 1 0 16 16 0 0 0 XX WS 1 0 1 0 1 1 1 0 0 0 0 1",
        ] {
            let e = cache.import_line(bad).expect_err(bad);
            assert_eq!(e.line, bad);
        }
        assert!(cache.is_empty());
    }

    #[test]
    fn warm_and_hot_hits_are_tiered() {
        let em = EnergyModel::tsmc28();
        let source = EvalCache::new(em);
        let pu = PuConfig::new(16, 16);
        source.evaluate(&conv(), &pu, Dataflow::WeightStationary);

        let cache = EvalCache::new(em);
        for l in source.export_lines() {
            cache.import_line(&l).expect("line parses");
        }
        // Imported entry → warm hit.
        cache.evaluate(&conv(), &pu, Dataflow::WeightStationary);
        assert_eq!((cache.hits(), cache.warm_hits(), cache.hot_hits()), (1, 1, 0));
        // Freshly computed entry → hot hit.
        cache.evaluate(&conv(), &pu, Dataflow::OutputStationary);
        cache.evaluate(&conv(), &pu, Dataflow::OutputStationary);
        assert_eq!((cache.hits(), cache.warm_hits(), cache.hot_hits()), (2, 1, 1));
        let s = cache.stats();
        assert_eq!((s.warm_hits, s.hot_hits), (1, 1));
        assert_eq!(s.hits, s.warm_hits + s.hot_hits);
        cache.clear();
        assert_eq!(cache.warm_hits(), 0);
    }

    #[test]
    fn model_fingerprint_distinguishes_models() {
        let a = EvalCache::new(EnergyModel::tsmc28());
        let b = EvalCache::new(EnergyModel::tsmc28());
        assert_eq!(a.model_fingerprint(), b.model_fingerprint());
        let mut other = EnergyModel::tsmc28();
        other.mac_pj *= 2.0;
        let c = EvalCache::new(other);
        assert_ne!(a.model_fingerprint(), c.model_fingerprint());
    }

    #[test]
    fn injected_shard_poison_is_recovered() {
        faultsim::arm("cache.poison@1").expect("plan parses");
        let em = EnergyModel::tsmc28();
        let cache = EvalCache::with_shards(em, 1); // one shard: the poisoned one
        let pu = PuConfig::new(16, 16);
        let a = cache.evaluate(&conv(), &pu, Dataflow::WeightStationary);
        assert_eq!(faultsim::injected(), vec!["cache.poison@1"]);
        faultsim::disarm();
        // The poisoned shard still serves correct results, and the entry
        // inserted through the poisoned lock is served as a hit.
        assert_eq!(a, evaluate(&conv(), &pu, Dataflow::WeightStationary, &em));
        let again = cache.evaluate(&conv(), &pu, Dataflow::WeightStationary);
        assert_eq!(again, a);
        assert_eq!(cache.hits(), 1);
        // Fresh keys keep inserting fine through the recovered lock.
        cache.evaluate(&conv(), &pu, Dataflow::OutputStationary);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn batch_matches_scalar_and_amortizes_locks() {
        let em = EnergyModel::tsmc28();
        let scalar = EvalCache::new(em);
        let batched = EvalCache::new(em);
        let pus: Vec<PuConfig> = [(4, 4), (8, 16), (16, 16), (16, 32), (32, 32)]
            .iter()
            .map(|&(r, c)| PuConfig::new(r, c).with_buffers(4096, 4096))
            .collect();
        let batch = crate::batch::PuBatch::from_pus(&pus);
        for df in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
            let out = batched.evaluate_batch(&conv(), &batch, df);
            for (i, pu) in pus.iter().enumerate() {
                assert_eq!(out.evals()[i], scalar.evaluate(&conv(), pu, df));
            }
        }
        assert_eq!(batched.len(), scalar.len());
        assert_eq!(batched.misses(), scalar.misses());
        assert_eq!(batched.batched_probes(), 2 * pus.len() as u64);
        assert_eq!(batched.batch_misses(), batched.misses());
        // Two passes over at most `shards` locks per batch, never one
        // lock per probe.
        assert!(batched.batch_shard_locks() <= 2 * 2 * DEFAULT_SHARDS as u64);
        // A second identical batch is all hits: only probe locks.
        let before = batched.batch_shard_locks();
        let again = batched.evaluate_batch(&conv(), &batch, Dataflow::WeightStationary);
        assert_eq!(again.evals()[3], scalar.evaluate(&conv(), &pus[3], Dataflow::WeightStationary));
        assert_eq!(batched.batch_misses(), batched.misses(), "no new misses");
        assert!(batched.batch_shard_locks() - before <= DEFAULT_SHARDS as u64);
    }

    #[test]
    fn best_dataflow_batch_matches_scalar_pick_and_entries() {
        let em = EnergyModel::tsmc28();
        let scalar = EvalCache::new(em);
        let batched = EvalCache::new(em);
        let pus: Vec<PuConfig> =
            [(4, 4), (16, 16), (32, 8)].iter().map(|&(r, c)| PuConfig::new(r, c)).collect();
        let batch = crate::batch::PuBatch::from_pus(&pus);
        let out = batched.best_dataflow_batch(&conv(), &batch);
        for (i, pu) in pus.iter().enumerate() {
            let (df, eval) = scalar.best_dataflow(&conv(), pu);
            assert_eq!(out.evals()[i], eval);
            assert_eq!(out.evals()[i].dataflow, df);
        }
        // Both dataflow entries are cached, exactly like the scalar path.
        assert_eq!(batched.len(), scalar.len());
        assert_eq!(batched.export_lines(), scalar.export_lines());
    }

    #[test]
    fn batch_duplicates_count_like_sequential_probes() {
        let cache = EvalCache::new(EnergyModel::tsmc28());
        let pu = PuConfig::new(16, 16);
        let layers = vec![conv(), conv(), conv()];
        let out = cache.evaluate_layers(&layers, &pu, Dataflow::WeightStationary);
        assert_eq!(out[0], out[1]);
        assert_eq!(out[1], out[2]);
        // First occurrence misses, the two duplicates hit — the same
        // counts a scalar loop over the three probes would record.
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn batch_serves_warm_tier_and_mixed_probes() {
        let em = EnergyModel::tsmc28();
        let source = EvalCache::new(em);
        let pu = PuConfig::new(16, 16);
        source.evaluate(&conv(), &pu, Dataflow::WeightStationary);

        let cache = EvalCache::new(em);
        for l in source.export_lines() {
            cache.import_line(&l).expect("line parses");
        }
        let other = LayerDesc { in_c: 32, ..conv() };
        let probes = vec![
            (conv(), pu, Dataflow::WeightStationary), // warm hit
            (other, pu, Dataflow::WeightStationary),  // miss
            (conv(), pu, Dataflow::OutputStationary), // miss
        ];
        let out = cache.evaluate_probes(&probes);
        assert_eq!(out[0], evaluate(&conv(), &pu, Dataflow::WeightStationary, &em));
        assert_eq!(out[1], evaluate(&other, &pu, Dataflow::WeightStationary, &em));
        assert_eq!(out[2], evaluate(&conv(), &pu, Dataflow::OutputStationary, &em));
        assert_eq!((cache.hits(), cache.warm_hits(), cache.misses()), (1, 1, 2));
        let s = cache.stats();
        assert_eq!((s.batched_probes, s.batch_misses), (3, 2));
        assert!(s.batch_shard_locks >= 2);
    }

    #[test]
    fn empty_batch_touches_nothing() {
        let cache = EvalCache::new(EnergyModel::tsmc28());
        let out = cache.evaluate_batch(&conv(), &crate::batch::PuBatch::new(), Dataflow::WeightStationary);
        assert!(out.is_empty());
        assert_eq!(cache.batched_probes(), 0);
        assert_eq!(cache.batch_shard_locks(), 0);
    }

    #[test]
    fn injected_poison_in_batch_insert_is_recovered() {
        faultsim::arm("cache.poison@1").expect("plan parses");
        let em = EnergyModel::tsmc28();
        let cache = EvalCache::with_shards(em, 1);
        let pus = vec![PuConfig::new(16, 16), PuConfig::new(8, 8)];
        let batch = crate::batch::PuBatch::from_pus(&pus);
        let out = cache.evaluate_batch(&conv(), &batch, Dataflow::WeightStationary);
        assert_eq!(faultsim::injected(), vec!["cache.poison@1"]);
        faultsim::disarm();
        for (i, pu) in pus.iter().enumerate() {
            assert_eq!(out.evals()[i], evaluate(&conv(), pu, Dataflow::WeightStationary, &em));
        }
        // Entries inserted through the poisoned (recovered) lock serve
        // as hits afterwards.
        assert_eq!(cache.len(), 2);
        let again = cache.evaluate_batch(&conv(), &batch, Dataflow::WeightStationary);
        assert_eq!(again.evals()[0], out.evals()[0]);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let em = EnergyModel::tsmc28();
        let cache = EvalCache::with_shards(em, 4);
        let layers: Vec<LayerDesc> = (1..=8)
            .map(|k| LayerDesc {
                in_c: 8 * k,
                out_c: 16 * k,
                ..conv()
            })
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for l in &layers {
                        for df in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
                            let got = cache.evaluate(l, &PuConfig::new(16, 16), df);
                            assert_eq!(got, evaluate(l, &PuConfig::new(16, 16), df, &em));
                        }
                    }
                });
            }
        });
        assert_eq!(cache.len(), layers.len() * 2);
        assert_eq!(cache.hits() + cache.misses(), (layers.len() * 2 * 4) as u64);
    }
}
