//! A sharded, thread-safe memoization cache fronting [`evaluate`] and
//! [`best_dataflow`].
//!
//! The AutoSeg search loops (Algorithm 1's dataflow probes, the Section
//! VI-G co-design sweeps) evaluate the same `(layer, PU, dataflow)`
//! triples thousands of times: every scale-up trial re-scores every
//! segment, every search candidate re-probes both dataflows per item.
//! [`evaluate`] is a pure function of its inputs plus the energy model, so
//! those repeats can be served from a cache without changing a single bit
//! of the result.
//!
//! The cache is sharded (`Vec<Mutex<HashMap<..>>>`) so concurrent DSE
//! workers rarely contend on the same lock: the key hash picks the shard,
//! and each shard is an independent map guarded by its own mutex.
//!
//! One cache is tied to one [`EnergyModel`] (the model is part of the
//! evaluation's identity); callers that switch energy models use separate
//! caches.

use crate::energy::EnergyModel;
use crate::eval::{evaluate, pick_dataflow, PuEval};
use crate::layer::LayerDesc;
use crate::pu::{Dataflow, PuConfig};
// Shard maps are lookup-only (never iterated), so hash order cannot leak
// into any output; lint: allow(nondet-iter)
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Canonical hashable identity of one `(layer, PU, dataflow)` evaluation.
///
/// [`PuConfig`] carries an `f64` clock and therefore cannot implement
/// `Eq`/`Hash` directly; the key stores the frequency's IEEE-754 bits,
/// which is exact for the cache's purpose (two configs evaluate
/// identically iff every field, including the clock, is bit-identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvalKey {
    layer: LayerDesc,
    rows: usize,
    cols: usize,
    act_buf_bytes: u64,
    wgt_buf_bytes: u64,
    freq_bits: u64,
    dataflow: Dataflow,
}

impl EvalKey {
    /// Builds the key for `(layer, pu, df)`.
    pub fn new(layer: &LayerDesc, pu: &PuConfig, df: Dataflow) -> Self {
        Self {
            layer: *layer,
            rows: pu.rows,
            cols: pu.cols,
            act_buf_bytes: pu.act_buf_bytes,
            wgt_buf_bytes: pu.wgt_buf_bytes,
            freq_bits: pu.freq_mhz.to_bits(),
            dataflow: df,
        }
    }
}

/// Default shard count: enough that 8–16 workers rarely collide, small
/// enough that an idle cache costs nothing noticeable.
const DEFAULT_SHARDS: usize = 16;

/// Sharded concurrent memo cache for PU cost evaluations.
///
/// Cheap to share by reference across scoped worker threads; all methods
/// take `&self`.
///
/// # Example
///
/// ```
/// use pucost::{Dataflow, EnergyModel, EvalCache, LayerDesc, PuConfig, evaluate};
///
/// let cache = EvalCache::new(EnergyModel::tsmc28());
/// let layer = LayerDesc {
///     in_c: 64, in_h: 28, in_w: 28, out_c: 128, out_h: 28, out_w: 28,
///     kernel: 3, stride: 1, groups: 1, is_fc: false,
/// };
/// let pu = PuConfig::new(16, 16);
/// let direct = evaluate(&layer, &pu, Dataflow::WeightStationary, &EnergyModel::tsmc28());
/// let cached = cache.evaluate(&layer, &pu, Dataflow::WeightStationary);
/// assert_eq!(direct, cached);                 // bit-identical
/// let again = cache.evaluate(&layer, &pu, Dataflow::WeightStationary);
/// assert_eq!(cached, again);
/// assert_eq!(cache.hits(), 1);
/// ```
#[derive(Debug)]
pub struct EvalCache {
    em: EnergyModel,
    shards: Vec<Mutex<HashMap<EvalKey, PuEval>>>, // lookup-only; lint: allow(nondet-iter)
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for EvalCache {
    fn default() -> Self {
        Self::new(EnergyModel::default())
    }
}

impl EvalCache {
    /// A cache bound to `em` with the default shard count.
    pub fn new(em: EnergyModel) -> Self {
        Self::with_shards(em, DEFAULT_SHARDS)
    }

    /// A cache bound to `em` with an explicit shard count (minimum 1).
    pub fn with_shards(em: EnergyModel, shards: usize) -> Self {
        Self {
            em,
            // lookup-only; lint: allow(nondet-iter)
            shards: (0..shards.max(1)).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The energy model every cached evaluation was produced under.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.em
    }

    // lookup-only; lint: allow(nondet-iter)
    fn shard_of(&self, key: &EvalKey) -> &Mutex<HashMap<EvalKey, PuEval>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[crate::util::usize_of(h.finish()) % self.shards.len()]
    }

    /// Memoized [`evaluate`]: identical results, repeated calls served
    /// from the shard map.
    ///
    /// Shard locks recover from poisoning: the map holds plain values
    /// whose invariants cannot be half-written, so a panicking worker
    /// elsewhere in the pool must not cascade through the cache.
    pub fn evaluate(&self, layer: &LayerDesc, pu: &PuConfig, df: Dataflow) -> PuEval {
        let key = EvalKey::new(layer, pu, df);
        let shard = self.shard_of(&key);
        if let Some(hit) = shard.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::add("pucost.cache.hits", 1);
            return *hit;
        }
        // Compute outside the lock so a slow evaluation never blocks the
        // shard's other keys.
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::add("pucost.cache.misses", 1);
        let eval = evaluate(layer, pu, df, &self.em);
        shard
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, eval);
        eval
    }

    /// Memoized [`best_dataflow`]: probes both dataflows through the cache
    /// and applies the same latency-first, energy-tie-break selection.
    pub fn best_dataflow(&self, layer: &LayerDesc, pu: &PuConfig) -> (Dataflow, PuEval) {
        let ws = self.evaluate(layer, pu, Dataflow::WeightStationary);
        let os = self.evaluate(layer, pu, Dataflow::OutputStationary);
        pick_dataflow(ws, os)
    }

    /// Number of lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to evaluate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 for an unused cache.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            crate::util::f64_of(h) / crate::util::f64_of(h + m)
        }
    }

    /// Number of distinct evaluations stored.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and resets the hit/miss counters.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Point-in-time snapshot of the cache's counters and occupancy,
    /// cheap enough to take at the end of every search.
    pub fn stats(&self) -> CacheStats {
        let per_shard: Vec<usize> = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .collect();
        let entries = per_shard.iter().sum();
        let max_shard = per_shard.iter().copied().max().unwrap_or(0);
        CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            hit_rate: self.hit_rate(),
            entries,
            shards: per_shard.len(),
            max_shard,
        }
    }
}

/// Snapshot of an [`EvalCache`]'s counters, taken by [`EvalCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to evaluate.
    pub misses: u64,
    /// `hits / (hits + misses)`, 0 for an unused cache.
    pub hit_rate: f64,
    /// Distinct evaluations stored across all shards.
    pub entries: usize,
    /// Shard count.
    pub shards: usize,
    /// Occupancy of the fullest shard (balance indicator).
    pub max_shard: usize,
}

impl CacheStats {
    /// Publishes the snapshot as obs counters plus one summary event.
    pub fn publish(&self, label: &'static str) {
        if !obs::enabled() {
            return;
        }
        obs::event(
            label,
            &[
                ("hits", self.hits.into()),
                ("misses", self.misses.into()),
                ("hit_rate", self.hit_rate.into()),
                ("entries", self.entries.into()),
                ("max_shard", self.max_shard.into()),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::best_dataflow;

    fn conv() -> LayerDesc {
        LayerDesc {
            in_c: 64,
            in_h: 28,
            in_w: 28,
            out_c: 128,
            out_h: 28,
            out_w: 28,
            kernel: 3,
            stride: 1,
            groups: 1,
            is_fc: false,
        }
    }

    #[test]
    fn cached_matches_direct() {
        let em = EnergyModel::tsmc28();
        let cache = EvalCache::new(em);
        let pu = PuConfig::new(8, 16).with_buffers(4096, 4096);
        for df in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
            assert_eq!(cache.evaluate(&conv(), &pu, df), evaluate(&conv(), &pu, df, &em));
        }
        assert_eq!(cache.best_dataflow(&conv(), &pu), best_dataflow(&conv(), &pu, &em));
    }

    #[test]
    fn hits_and_misses_counted() {
        let cache = EvalCache::new(EnergyModel::tsmc28());
        let pu = PuConfig::new(16, 16);
        assert_eq!(cache.hit_rate(), 0.0);
        cache.evaluate(&conv(), &pu, Dataflow::WeightStationary);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.evaluate(&conv(), &pu, Dataflow::WeightStationary);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        // A different PU or dataflow is a different key.
        cache.evaluate(&conv(), &pu, Dataflow::OutputStationary);
        cache.evaluate(&conv(), &PuConfig::new(8, 8), Dataflow::WeightStationary);
        assert_eq!(cache.len(), 3);
        assert!(cache.hit_rate() > 0.0 && cache.hit_rate() < 1.0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn stats_snapshot_matches_counters() {
        let cache = EvalCache::with_shards(EnergyModel::tsmc28(), 4);
        let s0 = cache.stats();
        assert_eq!((s0.hits, s0.misses, s0.entries), (0, 0, 0));
        assert_eq!(s0.hit_rate, 0.0);
        assert_eq!(s0.shards, 4);
        let pu = PuConfig::new(16, 16);
        cache.evaluate(&conv(), &pu, Dataflow::WeightStationary);
        cache.evaluate(&conv(), &pu, Dataflow::WeightStationary);
        cache.evaluate(&conv(), &pu, Dataflow::OutputStationary);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (cache.hits(), cache.misses()));
        assert_eq!(s.entries, cache.len());
        assert!(s.max_shard >= 1 && s.max_shard <= s.entries);
        assert!((s.hit_rate - cache.hit_rate()).abs() < 1e-12);
    }

    #[test]
    fn frequency_and_buffers_distinguish_keys() {
        let cache = EvalCache::new(EnergyModel::tsmc28());
        let a = PuConfig::new(16, 16).with_freq_mhz(800.0);
        let b = PuConfig::new(16, 16).with_freq_mhz(400.0);
        let ea = cache.evaluate(&conv(), &a, Dataflow::WeightStationary);
        let eb = cache.evaluate(&conv(), &b, Dataflow::WeightStationary);
        assert_eq!(cache.misses(), 2, "distinct clocks must not collide");
        assert_eq!(ea.cycles, eb.cycles);
        assert!(ea.seconds < eb.seconds);
        let c = PuConfig::new(16, 16).with_buffers(1, 1);
        let ec = cache.evaluate(&conv(), &c, Dataflow::WeightStationary);
        assert_eq!(cache.misses(), 3);
        assert!(!ec.buffers_ok);
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let em = EnergyModel::tsmc28();
        let cache = EvalCache::with_shards(em, 4);
        let layers: Vec<LayerDesc> = (1..=8)
            .map(|k| LayerDesc {
                in_c: 8 * k,
                out_c: 16 * k,
                ..conv()
            })
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for l in &layers {
                        for df in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
                            let got = cache.evaluate(l, &PuConfig::new(16, 16), df);
                            assert_eq!(got, evaluate(l, &PuConfig::new(16, 16), df, &em));
                        }
                    }
                });
            }
        });
        assert_eq!(cache.len(), layers.len() * 2);
        assert_eq!(cache.hits() + cache.misses(), (layers.len() * 2 * 4) as u64);
    }
}
