//! Small shared integer helpers used across the cost model and the
//! simulators.
//!
//! Tile-loop arithmetic throughout `pucost`, `spa-arch` and `spa-sim`
//! divides by quantities that can legitimately collapse to zero (empty
//! channel groups, zero-capacity probe buffers). These helpers centralize
//! the zero-safe ceiling division that used to be open-coded per crate.

/// Zero-safe ceiling division for `usize`: `ceil(a / b)`, with `b == 0`
/// treated as 1 (a degenerate tiling dimension collapses to one tile).
#[inline]
pub fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b.max(1))
}

/// Zero-safe ceiling division for `u64` (see [`div_ceil`]).
#[inline]
pub fn div_ceil_u64(a: u64, b: u64) -> u64 {
    a.div_ceil(b.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_up() {
        assert_eq!(div_ceil(0, 4), 0);
        assert_eq!(div_ceil(1, 4), 1);
        assert_eq!(div_ceil(4, 4), 1);
        assert_eq!(div_ceil(5, 4), 2);
        assert_eq!(div_ceil_u64(9, 3), 3);
        assert_eq!(div_ceil_u64(10, 3), 4);
    }

    #[test]
    fn zero_divisor_is_identity() {
        assert_eq!(div_ceil(7, 0), 7);
        assert_eq!(div_ceil_u64(7, 0), 7);
    }
}
