//! Small shared integer helpers used across the cost model and the
//! simulators.
//!
//! Tile-loop arithmetic throughout `pucost`, `spa-arch` and `spa-sim`
//! divides by quantities that can legitimately collapse to zero (empty
//! channel groups, zero-capacity probe buffers). These helpers centralize
//! the zero-safe ceiling division that used to be open-coded per crate.

/// Zero-safe ceiling division for `usize`: `ceil(a / b)`, with `b == 0`
/// treated as 1 (a degenerate tiling dimension collapses to one tile).
#[inline]
pub fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b.max(1))
}

/// Zero-safe ceiling division for `u64` (see [`div_ceil`]).
#[inline]
pub fn div_ceil_u64(a: u64, b: u64) -> u64 {
    a.div_ceil(b.max(1))
}

// The conversions below are the workspace's blessed casts: every numeric
// cast in cost-model arithmetic funnels through them (the `as-cast` lint
// denies bare `as` in `pucost`/`spa-sim`/`mip`), so the precision
// assumptions are stated once instead of silently at ~100 call sites.

/// Widens an exact count (MACs, bytes, cycles) into the `f64` cost
/// domain. Workspace quantities stay far below 2^53, so the conversion
/// is exact.
#[inline]
pub fn f64_of(x: u64) -> f64 {
    x as f64 // exact below 2^53; lint: allow(as-cast)
}

/// [`f64_of`] for dimension-like `usize` values.
#[inline]
pub fn f64_of_usize(x: usize) -> f64 {
    x as f64 // exact below 2^53; lint: allow(as-cast)
}

/// Widens a `usize` count into `u64` byte/op arithmetic (lossless on the
/// 64-bit targets this workspace supports).
#[inline]
pub fn u64_of(x: usize) -> u64 {
    x as u64 // usize <= 64 bits; lint: allow(as-cast)
}

/// Narrows a `u64` tile/count back into `usize` indexing. Callers pass
/// values derived from in-memory dimensions, which fit `usize` on the
/// supported 64-bit targets.
#[inline]
pub fn usize_of(x: u64) -> usize {
    x as usize // 64-bit targets only; lint: allow(as-cast)
}

/// Rounds a nonnegative finite cycle/byte estimate up to the nearest
/// integer count. Saturates at `u64::MAX` instead of wrapping on
/// overflow or NaN (Rust float->int `as` saturates by definition).
#[inline]
pub fn ceil_u64(x: f64) -> u64 {
    x.ceil() as u64 // saturating by language rules; lint: allow(as-cast)
}

/// [`ceil_u64`]'s truncating sibling: drops the fractional part of a
/// nonnegative finite estimate (capacity-style rounding). Same saturation
/// behaviour on overflow/NaN.
#[inline]
pub fn trunc_u64(x: f64) -> u64 {
    x as u64 // saturating by language rules; lint: allow(as-cast)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_up() {
        assert_eq!(div_ceil(0, 4), 0);
        assert_eq!(div_ceil(1, 4), 1);
        assert_eq!(div_ceil(4, 4), 1);
        assert_eq!(div_ceil(5, 4), 2);
        assert_eq!(div_ceil_u64(9, 3), 3);
        assert_eq!(div_ceil_u64(10, 3), 4);
    }

    #[test]
    fn zero_divisor_is_identity() {
        assert_eq!(div_ceil(7, 0), 7);
        assert_eq!(div_ceil_u64(7, 0), 7);
    }

    #[test]
    fn blessed_casts_round_trip() {
        assert_eq!(f64_of(1u64 << 52), (1u64 << 52) as f64);
        assert_eq!(f64_of_usize(12345), 12345.0);
        assert_eq!(u64_of(usize::MAX), usize::MAX as u64);
        assert_eq!(usize_of(42), 42usize);
        assert_eq!(ceil_u64(2.1), 3);
        assert_eq!(trunc_u64(2.9), 2);
        assert_eq!(trunc_u64(f64::INFINITY), u64::MAX);
        assert_eq!(ceil_u64(-1.0), 0);
        assert_eq!(ceil_u64(f64::NAN), 0);
        assert_eq!(ceil_u64(f64::INFINITY), u64::MAX);
    }
}
