//! PU configuration and dataflow selection.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The two dataflows a dataflow-hybrid PU supports (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Weight-stationary: weights pinned in the PE array, activations
    /// stream. Preferred by layers with large weight tensors.
    WeightStationary,
    /// Output-stationary: output pixels pinned, inputs and weights stream.
    /// Preferred by layers with large feature maps (e.g. depthwise convs).
    OutputStationary,
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dataflow::WeightStationary => f.write_str("WS"),
            Dataflow::OutputStationary => f.write_str("OS"),
        }
    }
}

/// Configuration of one processing unit: an `rows x cols` systolic PE
/// array plus its activation and weight buffers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PuConfig {
    /// Systolic array rows (`R_n`): input channels (WS) or output columns
    /// (OS).
    pub rows: usize,
    /// Systolic array columns (`C_n`): output channels in both dataflows.
    pub cols: usize,
    /// Activation buffer capacity in bytes (`AB[n]`).
    pub act_buf_bytes: u64,
    /// Weight buffer capacity in bytes (`WB[n]`).
    pub wgt_buf_bytes: u64,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
}

impl PuConfig {
    /// A PU with the given array geometry, default 800 MHz and zero-sized
    /// buffers (size them with [`PuConfig::with_buffers`] or the AutoSeg
    /// allocator).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "PE array dimensions must be positive");
        Self {
            rows,
            cols,
            act_buf_bytes: 0,
            wgt_buf_bytes: 0,
            freq_mhz: 800.0,
        }
    }

    /// Sets the clock frequency.
    pub fn with_freq_mhz(mut self, mhz: f64) -> Self {
        self.freq_mhz = mhz;
        self
    }

    /// Sets the buffer capacities.
    pub fn with_buffers(mut self, act_bytes: u64, wgt_bytes: u64) -> Self {
        self.act_buf_bytes = act_bytes;
        self.wgt_buf_bytes = wgt_bytes;
        self
    }

    /// Number of processing elements (`rows * cols`).
    pub fn num_pe(&self) -> usize {
        self.rows * self.cols
    }

    /// Peak MAC throughput in operations per second.
    pub fn peak_macs_per_sec(&self) -> f64 {
        crate::util::f64_of_usize(self.num_pe()) * self.freq_mhz * 1e6
    }

    /// Silicon area of this PU in um^2 (PE array plus both buffers) under
    /// the given density model.
    pub fn area_um2(&self, area: &crate::AreaModel) -> f64 {
        crate::util::f64_of_usize(self.num_pe()) * area.pe_um2
            + crate::util::f64_of(self.act_buf_bytes + self.wgt_buf_bytes) * area.sram_um2_per_byte
    }

    /// Peak dynamic power in watts when every PE fires each cycle, from
    /// the energy model's per-MAC cost.
    pub fn peak_power_w(&self, energy: &crate::EnergyModel) -> f64 {
        // pJ/MAC * MAC/s = pJ/s; 1e-12 to watts.
        energy.mac_pj * self.peak_macs_per_sec() * 1e-12
    }

    /// Splits a PE budget into the most square `rows x cols` geometry with
    /// `rows, cols` powers of two and `rows * cols == pes` (pes must be a
    /// power of two).
    ///
    /// # Panics
    ///
    /// Panics if `pes` is not a positive power of two.
    pub fn square_geometry(pes: usize) -> (usize, usize) {
        assert!(pes > 0 && pes.is_power_of_two(), "PE count must be a power of two");
        let log = pes.trailing_zeros(); // u32 shift count: `<<` takes it directly
        let r = 1usize << (log / 2);
        (r, pes / r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_count_and_peak() {
        let pu = PuConfig::new(8, 16).with_freq_mhz(500.0);
        assert_eq!(pu.num_pe(), 128);
        assert_eq!(pu.peak_macs_per_sec(), 128.0 * 500.0 * 1e6);
    }

    #[test]
    fn square_geometry_is_balanced() {
        assert_eq!(PuConfig::square_geometry(1), (1, 1));
        assert_eq!(PuConfig::square_geometry(2), (1, 2));
        assert_eq!(PuConfig::square_geometry(64), (8, 8));
        assert_eq!(PuConfig::square_geometry(128), (8, 16));
        assert_eq!(PuConfig::square_geometry(2048), (32, 64));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_rejects_non_power_of_two() {
        PuConfig::square_geometry(96);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_panic() {
        PuConfig::new(0, 4);
    }

    #[test]
    fn area_and_power_scale_with_size() {
        let area = crate::AreaModel::tsmc28();
        let energy = crate::EnergyModel::tsmc28();
        let small = PuConfig::new(8, 8).with_buffers(1024, 1024);
        let large = PuConfig::new(16, 16).with_buffers(4096, 4096);
        assert!(large.area_um2(&area) > 3.0 * small.area_um2(&area));
        assert!(large.peak_power_w(&energy) > small.peak_power_w(&energy));
        // 256 PEs @ 800 MHz @ 0.25 pJ/MAC ~= 51 mW.
        let p = large.peak_power_w(&energy);
        assert!((0.04..0.07).contains(&p), "power {p}");
    }

    #[test]
    fn dataflow_display() {
        assert_eq!(Dataflow::WeightStationary.to_string(), "WS");
        assert_eq!(Dataflow::OutputStationary.to_string(), "OS");
    }
}
