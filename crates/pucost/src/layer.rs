//! Layer description consumed by the evaluator.

use crate::util::{f64_of, u64_of, usize_of};
use nnmodel::WorkItem;
use serde::{Deserialize, Serialize};

/// The shape information the cost model needs about one work item.
///
/// `Hash`/`Eq` make the descriptor directly usable as (part of) the
/// [`crate::EvalCache`] memoization key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerDesc {
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Output channels.
    pub out_c: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
    /// Kernel extent (square).
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Channel groups (`in_c` for depthwise).
    pub groups: usize,
    /// `true` for fully-connected layers (treated as 1x1 conv on a 1x1
    /// spatial extent).
    pub is_fc: bool,
}

impl LayerDesc {
    /// Extracts the evaluator-relevant shape from a [`WorkItem`].
    ///
    /// Note the *anchor* output shape is reconstructed from the convolution
    /// geometry, not the post-pool folded shape: the MACs happen at the
    /// anchor's native resolution.
    pub fn from_item(item: &WorkItem) -> Self {
        if item.is_fc {
            return Self {
                in_c: usize_of(item.in_shape.elems()),
                in_h: 1,
                in_w: 1,
                out_c: item.out_shape.c,
                out_h: 1,
                out_w: 1,
                kernel: 1,
                stride: 1,
                groups: 1,
                is_fc: true,
            };
        }
        // Reconstruct the anchor conv's own output extent from ops:
        // ops = out_c * oh * ow * (in_c / groups) * k^2.
        let per_pixel =
            u64_of(item.in_shape.c / item.groups) * u64_of(item.kernel * item.kernel);
        // Folded pooling only shrinks the spatial extent, never channels,
        // so the post-fold channel count is the anchor's own.
        let out_c = item.out_shape.c;
        let spatial = if per_pixel == 0 || out_c == 0 {
            1
        } else {
            (item.ops / (per_pixel * u64_of(out_c))).max(1)
        };
        // Assume square anchor output. The rounded root of a small exact
        // count is itself small and exact.
        let side = usize_of(crate::util::ceil_u64(f64_of(spatial).sqrt().round().max(1.0)));
        Self {
            in_c: item.in_shape.c,
            in_h: item.in_shape.h,
            in_w: item.in_shape.w,
            out_c,
            out_h: side,
            out_w: usize_of(spatial) / side,
            kernel: item.kernel,
            stride: item.stride,
            groups: item.groups.max(1),
            is_fc: false,
        }
    }

    /// Total MACs of the layer.
    pub fn macs(&self) -> u64 {
        u64_of(self.out_c)
            * u64_of(self.out_h)
            * u64_of(self.out_w)
            * u64_of(self.in_c / self.groups)
            * u64_of(self.kernel * self.kernel)
    }

    /// Number of weight parameters.
    pub fn weight_elems(&self) -> u64 {
        u64_of(self.out_c) * u64_of(self.in_c / self.groups) * u64_of(self.kernel * self.kernel)
    }

    /// Input channels per group.
    pub fn in_c_per_group(&self) -> usize {
        (self.in_c / self.groups).max(1)
    }

    /// Output channels per group.
    pub fn out_c_per_group(&self) -> usize {
        (self.out_c / self.groups).max(1)
    }

    /// Minimum activation-buffer bytes: the `(K + S)` active ifmap rows of
    /// the circular buffer (Section IV-B, Eq. 1), channel-first layout.
    pub fn min_act_buf_bytes(&self) -> u64 {
        u64_of(self.kernel + self.stride)
            .min(u64_of(self.in_h))
            .saturating_mul(u64_of(self.in_w))
            .saturating_mul(u64_of(self.in_c))
            .max(1)
    }

    /// Minimum weight-buffer bytes for a PU with `pes` PEs: `K^2 * PE`
    /// weights (Algorithm 1 line 10), int8.
    pub fn min_wgt_buf_bytes(&self, pes: usize) -> u64 {
        u64_of(self.kernel * self.kernel * pes).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnmodel::{zoo, Workload};

    #[test]
    fn roundtrip_macs_from_items() {
        for g in [zoo::alexnet(), zoo::mobilenet_v2(), zoo::resnet18()] {
            let w = Workload::from_graph(&g);
            for item in w.items() {
                let d = LayerDesc::from_item(item);
                let ratio = d.macs() as f64 / item.ops.max(1) as f64;
                assert!(
                    (0.9..1.12).contains(&ratio),
                    "{}::{}: desc {} vs item {}",
                    g.name(),
                    item.name,
                    d.macs(),
                    item.ops
                );
            }
        }
    }

    #[test]
    fn fc_maps_to_flat_shape() {
        let w = Workload::from_graph(&zoo::alexnet());
        let fc = w.items().iter().find(|i| i.is_fc).unwrap();
        let d = LayerDesc::from_item(fc);
        assert!(d.is_fc);
        assert_eq!(d.out_h * d.out_w, 1);
        assert_eq!(d.macs(), fc.ops);
    }

    #[test]
    fn depthwise_keeps_channels() {
        let w = Workload::from_graph(&zoo::mobilenet_v1());
        let dw = w.items().iter().find(|i| i.groups > 1).unwrap();
        let d = LayerDesc::from_item(dw);
        assert_eq!(d.groups, d.in_c);
        assert_eq!(d.out_c, d.in_c);
        assert_eq!(d.in_c_per_group(), 1);
    }

    #[test]
    fn buffer_minimums() {
        let d = LayerDesc {
            in_c: 64,
            in_h: 56,
            in_w: 56,
            out_c: 128,
            out_h: 56,
            out_w: 56,
            kernel: 3,
            stride: 1,
            groups: 1,
            is_fc: false,
        };
        // (K + S) = 4 rows of 56 x 64 int8.
        assert_eq!(d.min_act_buf_bytes(), 4 * 56 * 64);
        assert_eq!(d.min_wgt_buf_bytes(256), 9 * 256);
    }
}
