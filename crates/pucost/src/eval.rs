//! The evaluator: (layer, PU, dataflow) -> latency / traffic / energy.

use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::layer::LayerDesc;
use crate::pu::{Dataflow, PuConfig};
use crate::util::{div_ceil, f64_of, f64_of_usize, u64_of};
use serde::{Deserialize, Serialize};

/// Result of evaluating one layer on one PU under one dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PuEval {
    /// Dataflow used.
    pub dataflow: Dataflow,
    /// Compute cycles (tile loops plus fill/drain).
    pub cycles: u64,
    /// Latency in seconds at the PU's clock.
    pub seconds: f64,
    /// MAC operations performed.
    pub macs: u64,
    /// PE-array utilization: `macs / (cycles * num_pe)`.
    pub utilization: f64,
    /// Activation-buffer bytes read.
    pub act_buf_bytes: u64,
    /// Weight-buffer bytes read.
    pub wgt_buf_bytes: u64,
    /// Partial-sum buffer bytes moved (reads + writes).
    pub psum_bytes: u64,
    /// On-chip energy breakdown (DRAM excluded; see `spa-sim`).
    pub energy: EnergyBreakdown,
    /// `true` if the PU's buffers meet the layer's minimum requirements
    /// (`(K+S)` ifmap rows in AB, `K^2 * PE` weights in WB).
    pub buffers_ok: bool,
}

/// Evaluates `layer` on `pu` under dataflow `df`.
///
/// The cycle model enumerates the dataflow's tile loops exactly:
///
/// * **WS**: tiles over `ceil(icg/R) * ceil(ocg/C) * K^2 * groups`; each
///   tile streams `out_h * out_w` pixels (stalling only when the fmap is
///   shorter than the double-buffered weight reload), one `R + C`
///   fill/drain per layer.
/// * **OS**: spatial tiles over `out_h * ceil(out_w/R) * ceil(oc/C)`; each
///   tile accumulates `icg * K^2` terms; one `R + C` fill/drain per layer.
///
/// Traffic uses each dataflow's reuse factors (inputs reused across the
/// `C` columns; WS reuses weights temporally across the fmap and pays
/// partial-sum traffic, OS the converse).
pub fn evaluate(layer: &LayerDesc, pu: &PuConfig, df: Dataflow, em: &EnergyModel) -> PuEval {
    let macs = layer.macs();
    let (r, c) = (pu.rows, pu.cols);
    let fill = u64_of(r + c);
    let icg = layer.in_c_per_group();
    let ocg = layer.out_c_per_group();
    let ohw = u64_of(layer.out_h * layer.out_w);

    let (cycles, act_reads, wgt_reads, psum_moves) = match df {
        Dataflow::WeightStationary => {
            // Grouped convolutions pack several groups along the array
            // diagonal (accumulation chains must not mix groups, so the
            // packing is limited by the *smaller* of the per-dimension
            // fits). Depthwise layers on a WS array therefore run at
            // roughly `min(R, C) / (R * C)` utilization — poor, but not
            // the 1/(R*C) of a naive per-group schedule, matching how
            // channel-parallel engines (NVDLA, TPUs) handle them.
            let par = ((r / icg.max(1)).min(c / ocg.max(1)))
                .clamp(1, layer.groups);
            let tiles = u64_of(div_ceil(icg, r) * div_ceil(ocg, c) * layer.kernel * layer.kernel)
                * u64_of(div_ceil(layer.groups, par));
            // Consecutive tiles pipeline: the next weight tile loads (R
            // cycles, C-wide) behind the current tile's compute, stalling
            // only when the streamed fmap is shorter than the reload; the
            // array fill/drain is paid once per layer.
            let stall = u64_of(r).saturating_sub(ohw);
            let cycles = tiles * (ohw + stall) + fill;
            // Each streamed input feeds all C columns of its tile.
            let act_reads = macs / u64_of(c).min(u64_of(ocg)).max(1);
            // Weights loaded once per tile residency.
            let wgt_reads = layer.weight_elems();
            // Partial sums cross the array boundary once per R-chain, read
            // back for the next input-channel tile.
            let chains = macs / u64_of(r).min(u64_of(icg)).max(1);
            let psum = 2 * chains;
            (cycles, act_reads, wgt_reads, psum)
        }
        Dataflow::OutputStationary => {
            let spatial_tiles = u64_of(layer.out_h * div_ceil(layer.out_w, r));
            let chan_tiles = u64_of(div_ceil(layer.out_c, c));
            let depth = u64_of(icg * layer.kernel * layer.kernel);
            // Tiles pipeline back to back; fill/drain is paid once.
            let cycles = spatial_tiles * chan_tiles * depth + fill;
            // Inputs broadcast across the C channel columns.
            let act_reads = macs / u64_of(c).min(u64_of(ocg)).max(1);
            // Weights re-fetched for every spatial tile, shared across the
            // R output columns.
            let wgt_reads = (macs / u64_of(r).min(u64_of(layer.out_w)).max(1)).max(1);
            // Outputs accumulate in place; only the final value moves.
            let psum = u64_of(layer.out_c * layer.out_h * layer.out_w);
            (cycles, act_reads, wgt_reads, psum)
        }
    };

    let cycles = cycles.max(1);
    let utilization = f64_of(macs) / (f64_of(cycles) * f64_of_usize(pu.num_pe()));
    let energy = EnergyBreakdown {
        mac_pj: f64_of(macs) * em.mac_pj,
        act_buf_pj: f64_of(act_reads) * em.sram_pj_per_byte,
        wgt_buf_pj: f64_of(wgt_reads) * em.sram_pj_per_byte,
        psum_pj: f64_of(psum_moves) * em.psum_pj_per_byte,
    };
    let buffers_ok = pu.act_buf_bytes >= layer.min_act_buf_bytes()
        && pu.wgt_buf_bytes >= layer.min_wgt_buf_bytes(pu.num_pe());
    PuEval {
        dataflow: df,
        cycles,
        seconds: f64_of(cycles) / (pu.freq_mhz * 1e6),
        macs,
        utilization,
        act_buf_bytes: act_reads,
        wgt_buf_bytes: wgt_reads,
        psum_bytes: psum_moves,
        energy,
        buffers_ok,
    }
}

/// Selects between a WS and an OS evaluation of the same layer: lower
/// cycle count wins, ties broken toward the lower on-chip energy. Shared
/// by [`best_dataflow`], the memoized [`crate::EvalCache`] and the
/// batched sweeps (`best_dataflow_batch`, the serving scheduler's
/// stitched best-picks) so every path applies bit-identical selection.
pub fn pick_dataflow(ws: PuEval, os: PuEval) -> (Dataflow, PuEval) {
    if os_wins(
        ws.cycles,
        os.cycles,
        ws.energy.total_pj(),
        os.energy.total_pj(),
    ) {
        (Dataflow::OutputStationary, os)
    } else {
        (Dataflow::WeightStationary, ws)
    }
}

/// The tie-break predicate behind [`pick_dataflow`], over the already
/// normalized cycle counts and total energies of the two candidates. The
/// compiled fused kernel (`CompiledEval::best_parts`) calls this with the
/// same quantities before materializing only the winning evaluation, so
/// both paths share one selection rule by construction.
#[inline(always)]
pub(crate) fn os_wins(ws_cycles: u64, os_cycles: u64, ws_total_pj: f64, os_total_pj: f64) -> bool {
    match ws_cycles.cmp(&os_cycles) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => os_total_pj < ws_total_pj,
    }
}

/// Evaluates both dataflows and returns the faster (ties broken toward the
/// one with lower on-chip energy) — Algorithm 1 line 12's `DF[n][s]`
/// selection.
pub fn best_dataflow(layer: &LayerDesc, pu: &PuConfig, em: &EnergyModel) -> (Dataflow, PuEval) {
    let ws = evaluate(layer, pu, Dataflow::WeightStationary, em);
    let os = evaluate(layer, pu, Dataflow::OutputStationary, em);
    pick_dataflow(ws, os)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnmodel::{zoo, Workload};

    fn big_conv() -> LayerDesc {
        LayerDesc {
            in_c: 128,
            in_h: 28,
            in_w: 28,
            out_c: 256,
            out_h: 28,
            out_w: 28,
            kernel: 3,
            stride: 1,
            groups: 1,
            is_fc: false,
        }
    }

    #[test]
    fn utilization_bounded() {
        let em = EnergyModel::tsmc28();
        for (r, c) in [(4, 4), (8, 16), (32, 32)] {
            let pu = PuConfig::new(r, c);
            for df in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
                let e = evaluate(&big_conv(), &pu, df, &em);
                assert!(e.utilization > 0.0 && e.utilization <= 1.0, "{df} {r}x{c}");
            }
        }
    }

    #[test]
    fn well_matched_conv_is_highly_utilized() {
        // 128 in / 256 out channels tile perfectly on a 16x16 WS array.
        let em = EnergyModel::tsmc28();
        let pu = PuConfig::new(16, 16);
        let e = evaluate(&big_conv(), &pu, Dataflow::WeightStationary, &em);
        assert!(e.utilization > 0.85, "utilization {}", e.utilization);
    }

    #[test]
    fn more_pes_never_slower() {
        let em = EnergyModel::tsmc28();
        let small = evaluate(
            &big_conv(),
            &PuConfig::new(8, 8),
            Dataflow::WeightStationary,
            &em,
        );
        let large = evaluate(
            &big_conv(),
            &PuConfig::new(16, 16),
            Dataflow::WeightStationary,
            &em,
        );
        assert!(large.cycles < small.cycles);
    }

    #[test]
    fn depthwise_prefers_os_large_weights_prefer_ws() {
        let em = EnergyModel::tsmc28();
        let pu = PuConfig::new(16, 16);
        let w = Workload::from_graph(&zoo::mobilenet_v1());
        let dw = LayerDesc::from_item(w.items().iter().find(|i| i.groups > 1).unwrap());
        assert_eq!(best_dataflow(&dw, &pu, &em).0, Dataflow::OutputStationary);

        // A late-stage weight-heavy conv (many channels, tiny fmap) keeps
        // its weights stationary: Figure 19's "large-size weights prefer
        // WS".
        let late = LayerDesc {
            in_c: 512,
            in_h: 7,
            in_w: 7,
            out_c: 512,
            out_h: 7,
            out_w: 7,
            kernel: 3,
            stride: 1,
            groups: 1,
            is_fc: false,
        };
        assert_eq!(best_dataflow(&late, &pu, &em).0, Dataflow::WeightStationary);
    }

    #[test]
    fn cycles_scale_with_work() {
        let em = EnergyModel::tsmc28();
        let pu = PuConfig::new(16, 16);
        let mut half = big_conv();
        half.out_c /= 2;
        let full = evaluate(&big_conv(), &pu, Dataflow::WeightStationary, &em);
        let halved = evaluate(&half, &pu, Dataflow::WeightStationary, &em);
        let ratio = full.cycles as f64 / halved.cycles as f64;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn ws_weight_traffic_below_os_for_fmap_heavy_layers() {
        // WS reads each weight once; OS re-reads per spatial tile.
        let em = EnergyModel::tsmc28();
        let pu = PuConfig::new(16, 16);
        let ws = evaluate(&big_conv(), &pu, Dataflow::WeightStationary, &em);
        let os = evaluate(&big_conv(), &pu, Dataflow::OutputStationary, &em);
        assert!(ws.wgt_buf_bytes < os.wgt_buf_bytes);
        // And the converse for partial sums.
        assert!(ws.psum_bytes > os.psum_bytes);
    }

    #[test]
    fn buffers_checked_against_minima() {
        let em = EnergyModel::tsmc28();
        let l = big_conv();
        let tight = PuConfig::new(16, 16).with_buffers(1, 1);
        assert!(!evaluate(&l, &tight, Dataflow::WeightStationary, &em).buffers_ok);
        let roomy = PuConfig::new(16, 16)
            .with_buffers(l.min_act_buf_bytes(), l.min_wgt_buf_bytes(256));
        assert!(evaluate(&l, &roomy, Dataflow::WeightStationary, &em).buffers_ok);
    }

    #[test]
    fn seconds_follow_frequency() {
        let em = EnergyModel::tsmc28();
        let slow = PuConfig::new(16, 16).with_freq_mhz(200.0);
        let fast = PuConfig::new(16, 16).with_freq_mhz(800.0);
        let es = evaluate(&big_conv(), &slow, Dataflow::WeightStationary, &em);
        let ef = evaluate(&big_conv(), &fast, Dataflow::WeightStationary, &em);
        assert_eq!(es.cycles, ef.cycles);
        assert!((es.seconds / ef.seconds - 4.0).abs() < 1e-9);
    }

    #[test]
    fn energy_components_positive_and_mac_dominated_for_dense_conv() {
        let em = EnergyModel::tsmc28();
        let pu = PuConfig::new(16, 16);
        let e = evaluate(&big_conv(), &pu, Dataflow::WeightStationary, &em);
        assert!(e.energy.mac_pj > 0.0);
        assert!(e.energy.act_buf_pj > 0.0);
        assert!(e.energy.total_pj() > e.energy.data_moving_pj());
    }
}
