//! Analytical cost model for SPA processing units (the Timeloop substitute).
//!
//! The paper evaluates each PU with Timeloop (Section V-B, Algorithm 1 line
//! 12): given a layer, a PU configuration and a dataflow, produce latency,
//! on-chip traffic and energy. This crate implements that evaluator
//! analytically for the paper's two dataflows:
//!
//! * **Weight-stationary (WS)** — an `R x C` systolic array holds an
//!   `R`-input-channel by `C`-output-channel weight tile; activations
//!   stream through, partial sums accumulate down columns (Figure 9a).
//! * **Output-stationary (OS)** — `R` output columns by `C` output channels
//!   are pinned to PEs; inputs and weights stream in, each PE accumulates
//!   its own output (Figure 9b).
//!
//! Cycle counts come from exact tile-loop arithmetic (including pipeline
//! fill/drain, array-edge effects, and grouped/depthwise convolutions);
//! on-chip traffic from the dataflows' reuse factors; energy from
//! per-access 28 nm constants.
//!
//! # Example
//!
//! ```
//! use pucost::{Dataflow, EnergyModel, LayerDesc, PuConfig, evaluate, best_dataflow};
//! use nnmodel::{zoo, Workload};
//!
//! let w = Workload::from_graph(&zoo::mobilenet_v1());
//! let pu = PuConfig::new(16, 16).with_freq_mhz(800.0);
//! let em = EnergyModel::tsmc28();
//!
//! // A depthwise layer prefers output-stationary ...
//! let dw = LayerDesc::from_item(w.items().iter().find(|i| i.groups > 1).unwrap());
//! let (df, _) = best_dataflow(&dw, &pu, &em);
//! assert_eq!(df, Dataflow::OutputStationary);
//! // ... and the evaluator never reports more than 100% utilization.
//! let eval = evaluate(&dw, &pu, df, &em);
//! assert!(eval.utilization <= 1.0 && eval.utilization > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod cache;
mod compile;
mod energy;
mod eval;
mod layer;
mod pu;
pub mod util;

pub use batch::{best_dataflow_batch, evaluate_batch, PuBatch, PuEvalBatch};
pub use cache::{CacheStats, EvalCache, EvalKey, SnapshotError};
pub use compile::CompiledEval;
pub use energy::{AreaModel, EnergyBreakdown, EnergyModel};
pub use eval::{best_dataflow, evaluate, pick_dataflow, PuEval};
pub use layer::LayerDesc;
pub use pu::{Dataflow, PuConfig};
