//! Per-access energy and area constants (28 nm class) and the energy
//! breakdown record.

use serde::{Deserialize, Serialize};

/// Per-access energy constants.
///
/// Values follow the widely-used accelerator energy hierarchy (register <<
/// on-chip SRAM << DRAM, roughly 1 : 6 : 200 per the Eyeriss
/// characterization), rescaled to 28 nm int8 arithmetic: a MAC including
/// its local register traffic costs ~0.25 pJ, on-chip SRAM ~0.8 pJ/byte,
/// LPDDR4-class DRAM ~32 pJ/byte.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one int8 MAC including PE-local register traffic (pJ).
    pub mac_pj: f64,
    /// On-chip SRAM access energy (pJ per byte) for activation and weight
    /// buffers.
    pub sram_pj_per_byte: f64,
    /// Partial-sum accumulator access energy (pJ per byte). Accumulators
    /// are small per-column register files / latch arrays next to the PE
    /// edge, several times cheaper than the main buffers.
    pub psum_pj_per_byte: f64,
    /// DRAM access energy (pJ per byte).
    pub dram_pj_per_byte: f64,
}

impl EnergyModel {
    /// Representative TSMC 28 nm constants.
    pub fn tsmc28() -> Self {
        Self {
            mac_pj: 0.25,
            sram_pj_per_byte: 0.8,
            psum_pj_per_byte: 0.2,
            dram_pj_per_byte: 32.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::tsmc28()
    }
}

/// Area constants for ASIC resource accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Area of one int8 MAC PE including pipeline registers (um^2).
    pub pe_um2: f64,
    /// SRAM macro density (um^2 per byte).
    pub sram_um2_per_byte: f64,
}

impl AreaModel {
    /// Representative TSMC 28 nm constants.
    pub fn tsmc28() -> Self {
        Self {
            pe_um2: 580.0,
            sram_um2_per_byte: 0.6,
        }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::tsmc28()
    }
}

/// Energy consumed by one layer execution on one PU, by component.
///
/// DRAM energy is *not* included here — feature-map DRAM traffic depends on
/// the execution mode (layerwise vs pipelined) and is accounted by the
/// simulator; see `spa-sim`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// MAC (compute) energy, pJ.
    pub mac_pj: f64,
    /// Activation-buffer access energy, pJ.
    pub act_buf_pj: f64,
    /// Weight-buffer access energy, pJ.
    pub wgt_buf_pj: f64,
    /// Partial-sum buffer access energy, pJ.
    pub psum_pj: f64,
}

impl EnergyBreakdown {
    /// Total on-chip energy (pJ).
    #[inline(always)]
    pub fn total_pj(&self) -> f64 {
        self.mac_pj + self.act_buf_pj + self.wgt_buf_pj + self.psum_pj
    }

    /// On-chip data-moving energy only (everything except MACs) — the
    /// quantity Figure 19 of the paper compares across dataflows.
    pub fn data_moving_pj(&self) -> f64 {
        self.act_buf_pj + self.wgt_buf_pj + self.psum_pj
    }

    /// Component-wise sum.
    pub fn add(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            mac_pj: self.mac_pj + other.mac_pj,
            act_buf_pj: self.act_buf_pj + other.act_buf_pj,
            wgt_buf_pj: self.wgt_buf_pj + other.wgt_buf_pj,
            psum_pj: self.psum_pj + other.psum_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_hierarchy_holds() {
        let e = EnergyModel::tsmc28();
        assert!(e.mac_pj < e.sram_pj_per_byte);
        assert!(e.psum_pj_per_byte < e.sram_pj_per_byte);
        assert!(e.sram_pj_per_byte * 10.0 < e.dram_pj_per_byte);
    }

    #[test]
    fn breakdown_sums() {
        let a = EnergyBreakdown {
            mac_pj: 1.0,
            act_buf_pj: 2.0,
            wgt_buf_pj: 3.0,
            psum_pj: 4.0,
        };
        assert_eq!(a.total_pj(), 10.0);
        assert_eq!(a.data_moving_pj(), 9.0);
        let b = a.add(&a);
        assert_eq!(b.total_pj(), 20.0);
    }
}
