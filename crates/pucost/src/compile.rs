//! Layer-specialized ("compiled") evaluation kernels.
//!
//! [`evaluate`](crate::evaluate) re-derives every layer-only quantity —
//! MAC count, per-group channel fits, weight element count, buffer
//! minima, energy coefficients — on each call, even though the search
//! loops evaluate one layer against hundreds of PU candidates.
//! [`CompiledEval`] performs that derivation once per
//! `(layer, energy model)` pair and leaves only the PU-dependent
//! remainder as a compact straight-line program, so a batched sweep
//! (see [`crate::batch`]) pays the layer analysis once instead of per
//! candidate.
//!
//! The kernels reproduce `evaluate`'s arithmetic operation for
//! operation (same integer widths, same `f64` expression shapes), so a
//! compiled result is bit-identical to the scalar one — the
//! differential suite in `tests/batch_diff.rs` pins this.

use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::eval::{os_wins, PuEval};
use crate::layer::LayerDesc;
use crate::pu::{Dataflow, PuConfig};

// Always-inline twins of the blessed casts and the zero-safe ceiling
// division. The offline harness measures debug builds, where `#[inline]`
// hints are not acted on and every `util::*` helper in the per-candidate
// loop is a real call; these twins keep the compiled kernel straight-line
// without touching the scalar baseline's code generation. Semantics are
// identical to `util::{u64_of, f64_of, f64_of_usize, div_ceil}`.

#[inline(always)]
fn w64(x: usize) -> u64 {
    x as u64 // usize <= 64 bits; lint: allow(as-cast)
}

#[inline(always)]
fn wf(x: u64) -> f64 {
    x as f64 // exact below 2^53; lint: allow(as-cast)
}

#[inline(always)]
fn wfu(x: usize) -> f64 {
    x as f64 // exact below 2^53; lint: allow(as-cast)
}

/// `util::div_ceil` with the call and `div_ceil` intrinsics open-coded.
/// Operands are layer/PU dimensions, far below `usize::MAX`, so the
/// `a + m - 1` rearrangement cannot overflow.
#[inline(always)]
fn dcz(a: usize, b: usize) -> usize {
    let m = if b == 0 { 1 } else { b };
    (a + m - 1) / m
}

/// One layer's cost model, specialized against an [`EnergyModel`]: every
/// subexpression that does not depend on the PU candidate is hoisted into
/// this constant pool at construction time.
///
/// # Example
///
/// ```
/// use pucost::{CompiledEval, Dataflow, EnergyModel, LayerDesc, PuConfig, evaluate};
///
/// let layer = LayerDesc {
///     in_c: 64, in_h: 28, in_w: 28, out_c: 128, out_h: 28, out_w: 28,
///     kernel: 3, stride: 1, groups: 1, is_fc: false,
/// };
/// let em = EnergyModel::tsmc28();
/// let compiled = CompiledEval::new(&layer, &em);
/// let pu = PuConfig::new(16, 16);
/// let df = Dataflow::WeightStationary;
/// assert_eq!(compiled.evaluate(&pu, df), evaluate(&layer, &pu, df, &em));
/// ```
#[derive(Debug, Clone)]
pub struct CompiledEval {
    layer: LayerDesc,
    /// `layer.macs()`.
    macs: u64,
    /// `f64_of(macs)` — numerator of the utilization ratio.
    macs_f: f64,
    /// `f64_of(macs) * em.mac_pj` — the MAC energy term is fully
    /// PU-independent.
    mac_pj_total: f64,
    sram_pj_per_byte: f64,
    psum_pj_per_byte: f64,
    /// `layer.in_c_per_group()` (already `>= 1`).
    icg: usize,
    icg64: u64,
    /// `layer.out_c_per_group()` (already `>= 1`).
    ocg: usize,
    ocg64: u64,
    /// `out_h * out_w` — pixels streamed per WS tile.
    ohw: u64,
    /// `kernel * kernel`.
    k2: usize,
    groups: usize,
    /// `layer.weight_elems()` — WS weight traffic.
    wgt_elems: u64,
    /// `layer.min_act_buf_bytes()`.
    min_act_buf: u64,
    out_c: usize,
    out_h: usize,
    out_w: usize,
    out_w64: u64,
    /// `icg * k2` — accumulation depth of one OS tile.
    os_depth: u64,
    /// `out_c * out_h * out_w` — OS partial-sum traffic.
    os_psum: u64,
}

impl CompiledEval {
    /// Specializes the cost model for `layer` under `em`.
    ///
    /// The layer derivations (`macs`, per-group fits, `weight_elems`,
    /// `min_act_buf_bytes`) are open-coded rather than delegated to the
    /// `LayerDesc` methods: construction sits on the batched hot path
    /// (once per layer batch) and the method calls are real calls in the
    /// debug builds the offline harness measures. The expressions mirror
    /// the `LayerDesc` method bodies term for term.
    pub fn new(layer: &LayerDesc, em: &EnergyModel) -> Self {
        let l = *layer;
        let k2 = l.kernel * l.kernel;
        let icg_raw = l.in_c / l.groups;
        // `LayerDesc::macs`, same multiplication order.
        let macs = w64(l.out_c) * w64(l.out_h) * w64(l.out_w) * w64(icg_raw) * w64(k2);
        let macs_f = wf(macs);
        let icg = if icg_raw < 1 { 1 } else { icg_raw };
        let ocg_raw = l.out_c / l.groups;
        let ocg = if ocg_raw < 1 { 1 } else { ocg_raw };
        // `LayerDesc::min_act_buf_bytes`: `(K + S).min(in_h)` active rows,
        // channel-first. The scalar helper saturates its multiplies; the
        // operands are in-memory tensor dimensions, so plain multiplies
        // produce the same value.
        let ks = w64(l.kernel + l.stride);
        let ih = w64(l.in_h);
        let act_rows = if ks < ih { ks } else { ih };
        let mab = act_rows * w64(l.in_w) * w64(l.in_c);
        Self {
            layer: l,
            macs,
            macs_f,
            mac_pj_total: macs_f * em.mac_pj,
            sram_pj_per_byte: em.sram_pj_per_byte,
            psum_pj_per_byte: em.psum_pj_per_byte,
            icg,
            icg64: w64(icg),
            ocg,
            ocg64: w64(ocg),
            ohw: w64(l.out_h * l.out_w),
            k2,
            groups: l.groups,
            wgt_elems: w64(l.out_c) * w64(icg_raw) * w64(k2),
            min_act_buf: if mab < 1 { 1 } else { mab },
            out_c: l.out_c,
            out_h: l.out_h,
            out_w: l.out_w,
            out_w64: w64(l.out_w),
            os_depth: w64(icg * k2),
            os_psum: w64(l.out_c * l.out_h * l.out_w),
        }
    }

    /// The layer this program was compiled for.
    pub fn layer(&self) -> &LayerDesc {
        &self.layer
    }

    /// Compiled equivalent of [`evaluate`](crate::evaluate): bit-identical
    /// result, layer-only work pre-paid.
    pub fn evaluate(&self, pu: &PuConfig, df: Dataflow) -> PuEval {
        self.eval_parts(
            pu.rows,
            pu.cols,
            pu.act_buf_bytes,
            pu.wgt_buf_bytes,
            pu.freq_mhz,
            df,
        )
    }

    /// Compiled equivalent of [`best_dataflow`](crate::best_dataflow):
    /// one fused WS+OS sweep sharing the activation-read and buffer
    /// checks, selected with the same tie-break as
    /// [`pick_dataflow`](crate::pick_dataflow).
    pub fn best(&self, pu: &PuConfig) -> (Dataflow, PuEval) {
        self.best_parts(
            pu.rows,
            pu.cols,
            pu.act_buf_bytes,
            pu.wgt_buf_bytes,
            pu.freq_mhz,
        )
    }

    /// WS tile-loop core: `(cycles, act_reads, wgt_reads, psum_moves)`.
    ///
    /// Straight-line program: the `min`/`max`/`clamp`/`saturating_sub`
    /// method calls of the scalar path are open-coded as branches (real
    /// calls in debug builds), but every expression keeps the scalar
    /// path's exact shape and evaluation order, so results stay
    /// bit-identical.
    /// `macs / c64.min(ocg64).max(1)` — the activation-read count, shared
    /// verbatim by both dataflows.
    #[inline(always)]
    fn act_reads(&self, c64: u64) -> u64 {
        let ad = if c64 < self.ocg64 { c64 } else { self.ocg64 };
        self.macs / if ad < 1 { 1 } else { ad }
    }

    /// WS tile-loop cycles (`fill` already included).
    #[inline(always)]
    fn ws_cycles(&self, r: usize, c: usize, r64: u64, fill: u64) -> u64 {
        // `icg`/`ocg` are already clamped to >= 1 at compile time.
        // `((r / icg).min(c / ocg)).clamp(1, groups)`:
        let pr = r / self.icg;
        let pc = c / self.ocg;
        let pmin = if pr < pc { pr } else { pc };
        let par = if pmin < 1 {
            1
        } else if pmin > self.groups {
            self.groups
        } else {
            pmin
        };
        let tiles =
            w64(dcz(self.icg, r) * dcz(self.ocg, c) * self.k2) * w64(dcz(self.groups, par));
        let stall = if r64 >= self.ohw { r64 - self.ohw } else { 0 };
        tiles * (self.ohw + stall) + fill
    }

    /// WS partial-sum moves: `2 * (macs / r64.min(icg64).max(1))`.
    #[inline(always)]
    fn ws_psum(&self, r64: u64) -> u64 {
        let cd = if r64 < self.icg64 { r64 } else { self.icg64 };
        2 * (self.macs / if cd < 1 { 1 } else { cd })
    }

    /// OS tile-loop cycles (`fill` already included).
    #[inline(always)]
    fn os_cycles(&self, r: usize, c: usize, fill: u64) -> u64 {
        let spatial_tiles = w64(self.out_h * dcz(self.out_w, r));
        let chan_tiles = w64(dcz(self.out_c, c));
        spatial_tiles * chan_tiles * self.os_depth + fill
    }

    /// OS weight reads: `(macs / r64.min(out_w64).max(1)).max(1)`.
    #[inline(always)]
    fn os_wgt(&self, r64: u64) -> u64 {
        let wd = if r64 < self.out_w64 { r64 } else { self.out_w64 };
        let wgt = self.macs / if wd < 1 { 1 } else { wd };
        if wgt < 1 {
            1
        } else {
            wgt
        }
    }

    /// WS tile-loop core: `(cycles, act_reads, wgt_reads, psum_moves)`.
    #[inline(always)]
    fn ws_core(&self, r: usize, c: usize) -> (u64, u64, u64, u64) {
        let fill = w64(r + c);
        let r64 = w64(r);
        (
            self.ws_cycles(r, c, r64, fill),
            self.act_reads(w64(c)),
            self.wgt_elems,
            self.ws_psum(r64),
        )
    }

    /// OS tile-loop core: `(cycles, act_reads, wgt_reads, psum_moves)`.
    #[inline(always)]
    fn os_core(&self, r: usize, c: usize) -> (u64, u64, u64, u64) {
        let fill = w64(r + c);
        (
            self.os_cycles(r, c, fill),
            self.act_reads(w64(c)),
            self.os_wgt(w64(r)),
            self.os_psum,
        )
    }

    /// Shared tail: normalizes cycles, prices the traffic, checks buffers.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn finish(
        &self,
        df: Dataflow,
        cycles: u64,
        act_reads: u64,
        wgt_reads: u64,
        psum_moves: u64,
        num_pe: usize,
        buffers_ok: bool,
        freq_hz: f64,
    ) -> PuEval {
        let cycles = if cycles < 1 { 1 } else { cycles };
        let cyc_f = wf(cycles);
        let utilization = self.macs_f / (cyc_f * wfu(num_pe));
        let energy = EnergyBreakdown {
            mac_pj: self.mac_pj_total,
            act_buf_pj: wf(act_reads) * self.sram_pj_per_byte,
            wgt_buf_pj: wf(wgt_reads) * self.sram_pj_per_byte,
            psum_pj: wf(psum_moves) * self.psum_pj_per_byte,
        };
        PuEval {
            dataflow: df,
            cycles,
            seconds: cyc_f / freq_hz,
            macs: self.macs,
            utilization,
            act_buf_bytes: act_reads,
            wgt_buf_bytes: wgt_reads,
            psum_bytes: psum_moves,
            energy,
            buffers_ok,
        }
    }

    /// `wgt_buf >= (k2 * num_pe).max(1)` — the PU-dependent half of the
    /// buffer feasibility check (the activation half is a pure constant
    /// compare).
    #[inline(always)]
    fn buffers_ok(&self, num_pe: usize, act_buf_bytes: u64, wgt_buf_bytes: u64) -> bool {
        let wmin = w64(self.k2 * num_pe);
        let wmin = if wmin < 1 { 1 } else { wmin };
        act_buf_bytes >= self.min_act_buf && wgt_buf_bytes >= wmin
    }

    /// Kernel entry over raw PU columns (the SoA batch path and the cache
    /// miss path feed this directly, skipping `PuConfig` reassembly).
    ///
    /// Deliberately NOT `#[inline(always)]`: in the unoptimized builds
    /// the offline harness measures, one compiled copy with a small frame
    /// beats inlining this body (and its spilled locals) into every call
    /// site.
    pub(crate) fn eval_parts(
        &self,
        r: usize,
        c: usize,
        act_buf_bytes: u64,
        wgt_buf_bytes: u64,
        freq_mhz: f64,
        df: Dataflow,
    ) -> PuEval {
        let (cycles, act, wgt, psum) = match df {
            Dataflow::WeightStationary => self.ws_core(r, c),
            Dataflow::OutputStationary => self.os_core(r, c),
        };
        let num_pe = r * c;
        let ok = self.buffers_ok(num_pe, act_buf_bytes, wgt_buf_bytes);
        self.finish(df, cycles, act, wgt, psum, num_pe, ok, freq_mhz * 1e6)
    }

    /// Fused WS+OS kernel over raw PU columns: the activation reads, PE
    /// count, buffer feasibility and frequency scaling are computed once
    /// and shared by both dataflow legs, the winner is chosen through the
    /// shared [`os_wins`] tie-break on normalized cycles and
    /// `total_pj`-ordered energy sums, and only the winning [`PuEval`] is
    /// materialized. Like `eval_parts`, deliberately a plain call.
    pub(crate) fn best_parts(
        &self,
        r: usize,
        c: usize,
        act_buf_bytes: u64,
        wgt_buf_bytes: u64,
        freq_mhz: f64,
    ) -> (Dataflow, PuEval) {
        let fill = w64(r + c);
        let r64 = w64(r);
        let wc = self.ws_cycles(r, c, r64, fill);
        let ww = self.wgt_elems;
        let wp = self.ws_psum(r64);
        let oc = self.os_cycles(r, c, fill);
        let ow = self.os_wgt(r64);
        let op = self.os_psum;
        // Both dataflows read activations identically, so the value is
        // computed once and shared.
        let wa = self.act_reads(w64(c));
        let num_pe = r * c;
        let ok = self.buffers_ok(num_pe, act_buf_bytes, wgt_buf_bytes);
        let freq_hz = freq_mhz * 1e6;
        // Normalize cycles exactly as `finish` does before comparing.
        let wcn = if wc < 1 { 1 } else { wc };
        let ocn = if oc < 1 { 1 } else { oc };
        // Price the traffic, then form both totals in
        // `EnergyBreakdown::total_pj`'s summation order.
        let act_pj = wf(wa) * self.sram_pj_per_byte;
        let ws_wgt_pj = wf(ww) * self.sram_pj_per_byte;
        let ws_psum_pj = wf(wp) * self.psum_pj_per_byte;
        let os_wgt_pj = wf(ow) * self.sram_pj_per_byte;
        let os_psum_pj = wf(op) * self.psum_pj_per_byte;
        let ws_total = self.mac_pj_total + act_pj + ws_wgt_pj + ws_psum_pj;
        let os_total = self.mac_pj_total + act_pj + os_wgt_pj + os_psum_pj;
        if os_wins(wcn, ocn, ws_total, os_total) {
            let cyc_f = wf(ocn);
            let eval = PuEval {
                dataflow: Dataflow::OutputStationary,
                cycles: ocn,
                seconds: cyc_f / freq_hz,
                macs: self.macs,
                utilization: self.macs_f / (cyc_f * wfu(num_pe)),
                act_buf_bytes: wa,
                wgt_buf_bytes: ow,
                psum_bytes: op,
                energy: EnergyBreakdown {
                    mac_pj: self.mac_pj_total,
                    act_buf_pj: act_pj,
                    wgt_buf_pj: os_wgt_pj,
                    psum_pj: os_psum_pj,
                },
                buffers_ok: ok,
            };
            (Dataflow::OutputStationary, eval)
        } else {
            let cyc_f = wf(wcn);
            let eval = PuEval {
                dataflow: Dataflow::WeightStationary,
                cycles: wcn,
                seconds: cyc_f / freq_hz,
                macs: self.macs,
                utilization: self.macs_f / (cyc_f * wfu(num_pe)),
                act_buf_bytes: wa,
                wgt_buf_bytes: ww,
                psum_bytes: wp,
                energy: EnergyBreakdown {
                    mac_pj: self.mac_pj_total,
                    act_buf_pj: act_pj,
                    wgt_buf_pj: ws_wgt_pj,
                    psum_pj: ws_psum_pj,
                },
                buffers_ok: ok,
            };
            (Dataflow::WeightStationary, eval)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{best_dataflow, evaluate};

    fn layers() -> Vec<LayerDesc> {
        let conv = LayerDesc {
            in_c: 64,
            in_h: 28,
            in_w: 28,
            out_c: 128,
            out_h: 28,
            out_w: 28,
            kernel: 3,
            stride: 1,
            groups: 1,
            is_fc: false,
        };
        vec![
            conv,
            // Depthwise: one channel per group.
            LayerDesc {
                in_c: 96,
                out_c: 96,
                groups: 96,
                ..conv
            },
            // Grouped conv.
            LayerDesc {
                in_c: 64,
                out_c: 128,
                groups: 4,
                ..conv
            },
            // FC as 1x1 on a 1x1 extent.
            LayerDesc {
                in_c: 4096,
                in_h: 1,
                in_w: 1,
                out_c: 1000,
                out_h: 1,
                out_w: 1,
                kernel: 1,
                stride: 1,
                groups: 1,
                is_fc: true,
            },
            // Tiny fmap, stride 2.
            LayerDesc {
                in_c: 512,
                in_h: 7,
                in_w: 7,
                out_c: 512,
                out_h: 4,
                out_w: 4,
                kernel: 3,
                stride: 2,
                groups: 1,
                is_fc: false,
            },
        ]
    }

    #[test]
    fn compiled_matches_scalar_bit_for_bit() {
        let em = EnergyModel::tsmc28();
        for layer in layers() {
            let compiled = CompiledEval::new(&layer, &em);
            for (r, c) in [(1, 1), (2, 16), (8, 8), (16, 16), (16, 32), (32, 32), (3, 5)] {
                for bufs in [(0, 0), (4096, 4096), (1, 1)] {
                    let pu = PuConfig::new(r, c).with_buffers(bufs.0, bufs.1);
                    for df in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
                        assert_eq!(
                            compiled.evaluate(&pu, df),
                            evaluate(&layer, &pu, df, &em),
                            "{layer:?} {r}x{c} {df}"
                        );
                    }
                    assert_eq!(
                        compiled.best(&pu),
                        best_dataflow(&layer, &pu, &em),
                        "{layer:?} {r}x{c} best"
                    );
                }
            }
        }
    }

    #[test]
    fn frequency_flows_through_seconds() {
        let em = EnergyModel::tsmc28();
        let layer = layers()[0];
        let compiled = CompiledEval::new(&layer, &em);
        let pu = PuConfig::new(16, 16).with_freq_mhz(263.0);
        assert_eq!(
            compiled.evaluate(&pu, Dataflow::WeightStationary),
            evaluate(&layer, &pu, Dataflow::WeightStationary, &em)
        );
    }
}
