//! Struct-of-arrays candidate batches for the compiled evaluator.
//!
//! The DSE loops score one layer against hundreds of PU candidates at a
//! time. [`PuBatch`] stores those candidates column-wise
//! (rows/cols/buffers/clock), and [`evaluate_batch`] /
//! [`best_dataflow_batch`] run one [`CompiledEval`] program straight down
//! the columns — the layer analysis is paid once per batch instead of
//! once per candidate, and the fused best-dataflow sweep probes WS and OS
//! in a single pass with the shared tie-break.
//!
//! These are the cache-free kernels; [`crate::EvalCache`] exposes
//! memoized equivalents (`EvalCache::evaluate_batch` etc.) that partition
//! a batch into hits and misses with one lock acquisition per shard.

use crate::compile::CompiledEval;
use crate::energy::EnergyModel;
use crate::eval::PuEval;
use crate::layer::LayerDesc;
use crate::pu::{Dataflow, PuConfig};

/// A struct-of-arrays batch of PU candidates.
///
/// # Example
///
/// ```
/// use pucost::{Dataflow, EnergyModel, LayerDesc, PuBatch, PuConfig, evaluate, evaluate_batch};
///
/// let layer = LayerDesc {
///     in_c: 64, in_h: 28, in_w: 28, out_c: 128, out_h: 28, out_w: 28,
///     kernel: 3, stride: 1, groups: 1, is_fc: false,
/// };
/// let em = EnergyModel::tsmc28();
/// let mut batch = PuBatch::new();
/// for shift in 0..4 {
///     batch.push(&PuConfig::new(1 << shift, 16));
/// }
/// let out = evaluate_batch(&layer, &batch, Dataflow::WeightStationary, &em);
/// assert_eq!(out.len(), batch.len());
/// // Bit-identical to the scalar evaluator, candidate by candidate.
/// assert_eq!(
///     out.evals()[2],
///     evaluate(&layer, &batch.pu(2), Dataflow::WeightStationary, &em)
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct PuBatch {
    rows: Vec<usize>,
    cols: Vec<usize>,
    act_buf_bytes: Vec<u64>,
    wgt_buf_bytes: Vec<u64>,
    freq_mhz: Vec<f64>,
}

impl PuBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `n` candidates.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            rows: Vec::with_capacity(n),
            cols: Vec::with_capacity(n),
            act_buf_bytes: Vec::with_capacity(n),
            wgt_buf_bytes: Vec::with_capacity(n),
            freq_mhz: Vec::with_capacity(n),
        }
    }

    /// Builds a batch from a slice of configurations.
    pub fn from_pus(pus: &[PuConfig]) -> Self {
        let mut b = Self::with_capacity(pus.len());
        for pu in pus {
            b.push(pu);
        }
        b
    }

    /// Appends one candidate.
    pub fn push(&mut self, pu: &PuConfig) {
        self.rows.push(pu.rows);
        self.cols.push(pu.cols);
        self.act_buf_bytes.push(pu.act_buf_bytes);
        self.wgt_buf_bytes.push(pu.wgt_buf_bytes);
        self.freq_mhz.push(pu.freq_mhz);
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the batch holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Reassembles candidate `i` as a [`PuConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn pu(&self, i: usize) -> PuConfig {
        PuConfig {
            rows: self.rows[i],
            cols: self.cols[i],
            act_buf_bytes: self.act_buf_bytes[i],
            wgt_buf_bytes: self.wgt_buf_bytes[i],
            freq_mhz: self.freq_mhz[i],
        }
    }

    /// Drops all candidates, keeping the allocations.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.cols.clear();
        self.act_buf_bytes.clear();
        self.wgt_buf_bytes.clear();
        self.freq_mhz.clear();
    }
}

/// Results of one batched evaluation, index-aligned with the input
/// [`PuBatch`].
#[derive(Debug, Clone, Default)]
pub struct PuEvalBatch {
    evals: Vec<PuEval>,
}

impl PuEvalBatch {
    /// The per-candidate evaluations, in batch order.
    pub fn evals(&self) -> &[PuEval] {
        &self.evals
    }

    /// Number of results.
    pub fn len(&self) -> usize {
        self.evals.len()
    }

    /// `true` when the batch produced no results.
    pub fn is_empty(&self) -> bool {
        self.evals.is_empty()
    }

    /// Consumes the batch into its backing vector.
    pub fn into_vec(self) -> Vec<PuEval> {
        self.evals
    }
}

impl From<Vec<PuEval>> for PuEvalBatch {
    fn from(evals: Vec<PuEval>) -> Self {
        Self { evals }
    }
}

/// Evaluates `layer` on every candidate in `pus` under dataflow `df`
/// through one compiled program. Bit-identical to calling
/// [`evaluate`](crate::evaluate) per candidate.
pub fn evaluate_batch(
    layer: &LayerDesc,
    pus: &PuBatch,
    df: Dataflow,
    em: &EnergyModel,
) -> PuEvalBatch {
    let compiled = CompiledEval::new(layer, em);
    let mut evals = Vec::with_capacity(pus.len());
    // Walk the columns by slice-pattern destructuring: indexing and
    // iterator `next` are real (un-inlined) calls in the debug builds the
    // offline harness measures, while pattern walks lower to inline
    // pointer bumps.
    let (mut rows, mut cols) = (&pus.rows[..], &pus.cols[..]);
    let (mut abs, mut wbs) = (&pus.act_buf_bytes[..], &pus.wgt_buf_bytes[..]);
    let mut fqs = &pus.freq_mhz[..];
    while let ([r, rt @ ..], [c, ct @ ..], [ab, at @ ..], [wb, wt @ ..], [fq, ft @ ..]) =
        (rows, cols, abs, wbs, fqs)
    {
        evals.push(compiled.eval_parts(*r, *c, *ab, *wb, *fq, df));
        (rows, cols, abs, wbs, fqs) = (rt, ct, at, wt, ft);
    }
    PuEvalBatch { evals }
}

/// Fused WS+OS sweep over every candidate in `pus`: both dataflows are
/// probed in a single pass and selected with the shared tie-break, so
/// each returned [`PuEval`] matches
/// [`best_dataflow`](crate::best_dataflow) bit for bit (its `dataflow`
/// field records the pick).
pub fn best_dataflow_batch(layer: &LayerDesc, pus: &PuBatch, em: &EnergyModel) -> PuEvalBatch {
    let compiled = CompiledEval::new(layer, em);
    let mut evals = Vec::with_capacity(pus.len());
    // Column walk by slice patterns — see `evaluate_batch`.
    let (mut rows, mut cols) = (&pus.rows[..], &pus.cols[..]);
    let (mut abs, mut wbs) = (&pus.act_buf_bytes[..], &pus.wgt_buf_bytes[..]);
    let mut fqs = &pus.freq_mhz[..];
    while let ([r, rt @ ..], [c, ct @ ..], [ab, at @ ..], [wb, wt @ ..], [fq, ft @ ..]) =
        (rows, cols, abs, wbs, fqs)
    {
        let (_, eval) = compiled.best_parts(*r, *c, *ab, *wb, *fq);
        evals.push(eval);
        (rows, cols, abs, wbs, fqs) = (rt, ct, at, wt, ft);
    }
    PuEvalBatch { evals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{best_dataflow, evaluate};

    fn conv() -> LayerDesc {
        LayerDesc {
            in_c: 64,
            in_h: 28,
            in_w: 28,
            out_c: 128,
            out_h: 28,
            out_w: 28,
            kernel: 3,
            stride: 1,
            groups: 1,
            is_fc: false,
        }
    }

    fn geometries() -> Vec<PuConfig> {
        let mut pus = Vec::new();
        for (r, c) in [(1, 1), (4, 4), (8, 16), (16, 8), (16, 16), (32, 32), (3, 7)] {
            pus.push(PuConfig::new(r, c));
            pus.push(PuConfig::new(r, c).with_buffers(4096, 4096).with_freq_mhz(400.0));
        }
        pus
    }

    #[test]
    fn soa_round_trips_configs() {
        let pus = geometries();
        let batch = PuBatch::from_pus(&pus);
        assert_eq!(batch.len(), pus.len());
        for (i, pu) in pus.iter().enumerate() {
            assert_eq!(batch.pu(i), *pu);
        }
        let mut b = PuBatch::new();
        assert!(b.is_empty());
        b.push(&pus[0]);
        assert_eq!(b.len(), 1);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn batch_matches_scalar_per_candidate() {
        let em = EnergyModel::tsmc28();
        let layer = conv();
        let batch = PuBatch::from_pus(&geometries());
        for df in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
            let out = evaluate_batch(&layer, &batch, df, &em);
            assert_eq!(out.len(), batch.len());
            for i in 0..batch.len() {
                assert_eq!(out.evals()[i], evaluate(&layer, &batch.pu(i), df, &em));
            }
        }
    }

    #[test]
    fn fused_best_matches_scalar_pick() {
        let em = EnergyModel::tsmc28();
        let layer = conv();
        let batch = PuBatch::from_pus(&geometries());
        let out = best_dataflow_batch(&layer, &batch, &em);
        for i in 0..batch.len() {
            let (df, eval) = best_dataflow(&layer, &batch.pu(i), &em);
            assert_eq!(out.evals()[i], eval);
            assert_eq!(out.evals()[i].dataflow, df);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let em = EnergyModel::tsmc28();
        let out = evaluate_batch(&conv(), &PuBatch::new(), Dataflow::WeightStationary, &em);
        assert!(out.is_empty());
        assert!(out.into_vec().is_empty());
    }
}
