//! Differential suite: the batched evaluation paths (free kernels and
//! the memoized cache front) against the scalar reference, over seeded
//! random layers (dense / grouped / depthwise / FC), random PU shapes
//! (power-of-two and not), and batch sizes from 1 through 257.
//!
//! Everything here asserts *bit* identity — the batch layer is a pure
//! performance transform and must never change a result, a dataflow
//! pick, a cache counter, or the cache's contents.

use pucost::{
    best_dataflow, best_dataflow_batch, evaluate, evaluate_batch, Dataflow, EnergyModel, EvalCache,
    LayerDesc, PuBatch, PuConfig,
};

/// splitmix64 — deterministic, dependency-free PRNG for the sweeps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi]`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + usize::try_from(self.next() % u64::try_from(hi - lo + 1).expect("fits")).expect("fits")
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.range(0, options.len() - 1)]
    }
}

/// A random layer cycling through the evaluator's edge cases: dense
/// conv, grouped conv, depthwise, and FC-as-1x1.
fn random_layer(rng: &mut Rng) -> LayerDesc {
    let kernel = rng.pick(&[1usize, 3, 5]);
    let stride = rng.range(1, 2);
    let side = rng.pick(&[1usize, 7, 14, 28, 56]);
    match rng.range(0, 3) {
        0 => {
            // Depthwise: one channel per group.
            let ch = rng.range(1, 96);
            LayerDesc {
                in_c: ch,
                in_h: side,
                in_w: side,
                out_c: ch,
                out_h: side,
                out_w: side,
                kernel,
                stride,
                groups: ch,
                is_fc: false,
            }
        }
        1 => {
            // Grouped conv (group count need not divide the channels —
            // the evaluator clamps).
            LayerDesc {
                in_c: rng.range(1, 128),
                in_h: side,
                in_w: side,
                out_c: rng.range(1, 128),
                out_h: side,
                out_w: side,
                kernel,
                stride,
                groups: rng.pick(&[2usize, 3, 4, 8]),
                is_fc: false,
            }
        }
        2 => LayerDesc {
            // FC as 1x1 conv on a 1x1 extent.
            in_c: rng.range(16, 4096),
            in_h: 1,
            in_w: 1,
            out_c: rng.range(10, 1000),
            out_h: 1,
            out_w: 1,
            kernel: 1,
            stride: 1,
            groups: 1,
            is_fc: true,
        },
        _ => LayerDesc {
            in_c: rng.range(1, 256),
            in_h: side,
            in_w: side,
            out_c: rng.range(1, 256),
            out_h: side,
            out_w: side,
            kernel,
            stride,
            groups: 1,
            is_fc: false,
        },
    }
}

/// A random PU: power-of-two and awkward shapes, buffer sizes from
/// starved (forcing `buffers_ok == false`) to ample, a few clock bins.
fn random_pu(rng: &mut Rng) -> PuConfig {
    let rows = rng.pick(&[1usize, 2, 3, 4, 7, 8, 16, 17, 32, 64]);
    let cols = rng.pick(&[1usize, 2, 4, 5, 8, 16, 31, 32, 64]);
    let act = 1u64 << rng.range(4, 18);
    let wgt = 1u64 << rng.range(4, 18);
    let freq = rng.pick(&[100.0f64, 250.0, 400.0, 933.5]);
    PuConfig::new(rows, cols).with_buffers(act, wgt).with_freq_mhz(freq)
}

fn random_batch(rng: &mut Rng, n: usize) -> PuBatch {
    let mut batch = PuBatch::with_capacity(n);
    for _ in 0..n {
        batch.push(&random_pu(rng));
    }
    batch
}

/// Batch sizes for the sweeps: every boundary the SoA walk and the
/// shard bucketing could mishandle (1, shard-count multiples, powers of
/// two and their neighbours, 257).
const SIZES: [usize; 12] = [1, 2, 3, 7, 15, 16, 17, 64, 96, 128, 256, 257];

#[test]
fn kernel_batch_matches_scalar_across_sizes() {
    let em = EnergyModel::tsmc28();
    let mut rng = Rng(0xdeadbeef);
    for &n in &SIZES {
        let layer = random_layer(&mut rng);
        let batch = random_batch(&mut rng, n);
        for df in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
            let out = evaluate_batch(&layer, &batch, df, &em);
            assert_eq!(out.len(), n);
            for i in 0..n {
                assert_eq!(
                    out.evals()[i],
                    evaluate(&layer, &batch.pu(i), df, &em),
                    "size {n} item {i} {df:?}"
                );
            }
        }
    }
}

#[test]
fn kernel_fused_best_matches_scalar_pick_across_sizes() {
    let em = EnergyModel::tsmc28();
    let mut rng = Rng(0x5eed);
    for &n in &SIZES {
        let layer = random_layer(&mut rng);
        let batch = random_batch(&mut rng, n);
        let out = best_dataflow_batch(&layer, &batch, &em);
        for i in 0..n {
            let (df, eval) = best_dataflow(&layer, &batch.pu(i), &em);
            assert_eq!(out.evals()[i], eval, "size {n} item {i}");
            assert_eq!(out.evals()[i].dataflow, df, "size {n} item {i}");
        }
    }
}

#[test]
fn kernel_batch_matches_scalar_every_size_1_to_64() {
    // Dense sweep over the small sizes, where off-by-one walk bugs live.
    let em = EnergyModel::tsmc28();
    let mut rng = Rng(42);
    let layer = random_layer(&mut rng);
    for n in 1..=64usize {
        let batch = random_batch(&mut rng, n);
        let out = best_dataflow_batch(&layer, &batch, &em);
        for i in 0..n {
            let (_, eval) = best_dataflow(&layer, &batch.pu(i), &em);
            assert_eq!(out.evals()[i], eval, "size {n} item {i}");
        }
    }
}

#[test]
fn cache_batch_matches_scalar_cache_and_counters() {
    let mut rng = Rng(7);
    for &n in &SIZES {
        let layer = random_layer(&mut rng);
        let batch = random_batch(&mut rng, n);
        let scalar = EvalCache::default();
        let batched = EvalCache::default();
        let got = batched.best_dataflow_batch(&layer, &batch);
        for i in 0..n {
            let (df, eval) = scalar.best_dataflow(&layer, &batch.pu(i));
            assert_eq!(got.evals()[i], eval, "size {n} item {i}");
            assert_eq!(got.evals()[i].dataflow, df, "size {n} item {i}");
        }
        // Same totals as the scalar sequence (duplicate PUs in the batch
        // miss once then hit, exactly like repeated scalar calls).
        assert_eq!(batched.hits(), scalar.hits(), "size {n}");
        assert_eq!(batched.misses(), scalar.misses(), "size {n}");
        // Same cache contents, proving batch inserts land in the same
        // shards the scalar path would probe.
        let mut a = scalar.export_lines();
        let mut b = batched.export_lines();
        a.sort();
        b.sort();
        assert_eq!(a, b, "size {n}");
        // A second identical probe is all hits and computes nothing new.
        let misses_before = batched.misses();
        let again = batched.best_dataflow_batch(&layer, &batch);
        assert_eq!(again.evals(), got.evals(), "size {n} second pass");
        assert_eq!(batched.misses(), misses_before, "size {n} second pass missed");
    }
}

#[test]
fn cache_batch_serves_preseeded_and_warm_entries() {
    let mut rng = Rng(11);
    let layer = random_layer(&mut rng);
    let batch = random_batch(&mut rng, 64);
    // Pre-seed half the keys through the scalar path; the batch probe
    // must hit them (same shard assignment, same key identity).
    let cache = EvalCache::default();
    for i in 0..32 {
        cache.evaluate(&layer, &batch.pu(i), Dataflow::WeightStationary);
    }
    let seeded_misses = cache.misses();
    let out = cache.evaluate_batch(&layer, &batch, Dataflow::WeightStationary);
    assert_eq!(cache.hits(), 32);
    assert_eq!(cache.misses(), seeded_misses + 32);
    for i in 0..64 {
        assert_eq!(
            out.evals()[i],
            evaluate(&layer, &batch.pu(i), Dataflow::WeightStationary, cache.energy_model()),
            "item {i}"
        );
    }
    // Warm tier: snapshot round-trip, then a batch probe over imported
    // entries counts warm hits.
    let warm = EvalCache::default();
    for line in cache.export_lines() {
        warm.import_line(&line).expect("snapshot line round-trips");
    }
    let again = warm.evaluate_batch(&layer, &batch, Dataflow::WeightStationary);
    assert_eq!(again.evals(), out.evals());
    assert_eq!(warm.hits(), 64);
    assert_eq!(warm.warm_hits(), 64);
    assert_eq!(warm.misses(), 0);
}

#[test]
fn cache_batch_duplicates_hit_like_scalar_repeats() {
    let mut rng = Rng(23);
    let layer = random_layer(&mut rng);
    let pu = random_pu(&mut rng);
    let other = random_pu(&mut rng);
    // Batch = [pu, pu, other, pu]: the scalar sequence misses twice
    // (pu, other) and hits twice (the repeated pu probes).
    let mut batch = PuBatch::new();
    for p in [&pu, &pu, &other, &pu] {
        batch.push(p);
    }
    let cache = EvalCache::default();
    let out = cache.evaluate_batch(&layer, &batch, Dataflow::OutputStationary);
    let scalar = EvalCache::default();
    let mut want = Vec::new();
    for i in 0..batch.len() {
        want.push(scalar.evaluate(&layer, &batch.pu(i), Dataflow::OutputStationary));
    }
    assert_eq!(out.evals(), &want[..]);
    assert_eq!(cache.hits(), scalar.hits());
    assert_eq!(cache.misses(), scalar.misses());
    assert_eq!(cache.misses(), 2);
    assert_eq!(cache.hits(), 2);
    assert_eq!(cache.warm_hits(), 0);
}

#[test]
fn cache_layer_and_probe_batches_match_scalar() {
    let mut rng = Rng(99);
    // evaluate_layers: many layers against one PU (the segment-scoring
    // shape) — exercises the per-layer hasher-prefix reset every key.
    let layers: Vec<LayerDesc> = (0..48).map(|_| random_layer(&mut rng)).collect();
    let pu = random_pu(&mut rng);
    let cache = EvalCache::default();
    let scalar = EvalCache::default();
    let got = cache.evaluate_layers(&layers, &pu, Dataflow::WeightStationary);
    for (i, l) in layers.iter().enumerate() {
        assert_eq!(got[i], scalar.evaluate(l, &pu, Dataflow::WeightStationary), "layer {i}");
    }
    assert_eq!(cache.misses(), scalar.misses());
    assert_eq!(cache.hits(), scalar.hits());
    // evaluate_probes: heterogeneous (layer, PU, dataflow) triples with
    // alternating layers and interleaved duplicates.
    let mut probes = Vec::new();
    for i in 0..32 {
        let l = layers[i % 5];
        let p = random_pu(&mut rng);
        let df = if i % 2 == 0 { Dataflow::WeightStationary } else { Dataflow::OutputStationary };
        probes.push((l, p, df));
        if i % 7 == 0 {
            probes.push((l, p, df));
        }
    }
    let cache = EvalCache::default();
    let scalar = EvalCache::default();
    let got = cache.evaluate_probes(&probes);
    for (i, (l, p, df)) in probes.iter().enumerate() {
        assert_eq!(got[i], scalar.evaluate(l, p, *df), "probe {i}");
    }
    assert_eq!(cache.misses(), scalar.misses());
    assert_eq!(cache.hits(), scalar.hits());
    assert_eq!(cache.warm_hits(), scalar.warm_hits());
}
