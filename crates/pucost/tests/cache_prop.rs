//! Property tests for the memoization cache: for *any* layer/PU/dataflow
//! combination, the cached evaluator must be indistinguishable from the
//! direct one — same `PuEval` bit for bit, same dataflow selection — no
//! matter how often or in what order lookups repeat.

use proptest::prelude::*;
use pucost::{best_dataflow, evaluate, Dataflow, EnergyModel, EvalCache, LayerDesc, PuConfig};

/// Random but well-formed layers: grouped convs (channels divisible by the
/// group count), depthwise included, plus flat FC layers.
fn any_layer() -> impl Strategy<Value = LayerDesc> {
    let conv = (
        1usize..=8,  // groups
        1usize..=8,  // in_c multiplier
        1usize..=8,  // out_c multiplier
        1usize..=32, // spatial extent
        0usize..3,   // kernel selector
        1usize..=2,  // stride
    )
        .prop_map(|(g, icm, ocm, hw, k, s)| {
            let kernel = [1, 3, 5][k];
            LayerDesc {
                in_c: g * icm,
                in_h: hw,
                in_w: hw,
                out_c: g * ocm,
                out_h: (hw / s).max(1),
                out_w: (hw / s).max(1),
                kernel,
                stride: s,
                groups: g,
                is_fc: false,
            }
        });
    let fc = (1usize..=4096, 1usize..=512).prop_map(|(i, o)| LayerDesc {
        in_c: i,
        in_h: 1,
        in_w: 1,
        out_c: o,
        out_h: 1,
        out_w: 1,
        kernel: 1,
        stride: 1,
        groups: 1,
        is_fc: true,
    });
    prop_oneof![4 => conv, 1 => fc]
}

fn any_pu() -> impl Strategy<Value = PuConfig> {
    (0usize..=5, 0usize..=5, 1u64..=1 << 18, 1u64..=1 << 16, 1usize..=4).prop_map(
        |(rl, cl, ab, wb, fsel)| {
            PuConfig::new(1 << rl, 1 << cl)
                .with_freq_mhz([100.0, 200.0, 650.0, 800.0][fsel % 4])
                .with_buffers(ab, wb)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cached evaluation equals direct evaluation for both dataflows, and
    /// the repeat lookup (a guaranteed hit) returns the same value.
    #[test]
    fn cached_evaluate_equals_uncached(layer in any_layer(), pu in any_pu()) {
        let em = EnergyModel::tsmc28();
        let cache = EvalCache::new(em);
        for df in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
            let direct = evaluate(&layer, &pu, df, &em);
            let miss = cache.evaluate(&layer, &pu, df);
            let hit = cache.evaluate(&layer, &pu, df);
            prop_assert_eq!(direct, miss);
            prop_assert_eq!(direct, hit);
        }
        prop_assert_eq!(cache.misses(), 2);
        prop_assert_eq!(cache.hits(), 2);
    }

    /// The cache's dataflow selection matches the uncached
    /// [`best_dataflow`] exactly (same winner, same eval).
    #[test]
    fn cached_best_dataflow_equals_uncached(layer in any_layer(), pu in any_pu()) {
        let em = EnergyModel::tsmc28();
        let cache = EvalCache::new(em);
        prop_assert_eq!(cache.best_dataflow(&layer, &pu), best_dataflow(&layer, &pu, &em));
    }

    /// Shard count is an implementation detail: any sharding returns the
    /// same values and total entry count.
    #[test]
    fn shard_count_is_invisible(layer in any_layer(), pu in any_pu(), shards in 1usize..=32) {
        let em = EnergyModel::tsmc28();
        let cache = EvalCache::with_shards(em, shards);
        let reference = EvalCache::new(em);
        for df in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
            prop_assert_eq!(cache.evaluate(&layer, &pu, df), reference.evaluate(&layer, &pu, df));
        }
        prop_assert_eq!(cache.len(), reference.len());
    }
}
