//! Criterion benchmark harness (see `benches/`): one benchmark target per paper table/figure plus substrate kernels.
