//! Tables IV-VI / Figure 14 kernels: the three AlexNet case-study designs.

use criterion::{criterion_group, criterion_main, Criterion};
use nnmodel::{zoo, Workload};
use pucost::Dataflow;
use spa_arch::{HwBudget, Platform};
use spa_sim::{full_pipeline_design, simulate_processor, simulate_spa};
use std::hint::black_box;

fn budget() -> HwBudget {
    HwBudget {
        name: "zc706-case".into(),
        platform: Platform::Fpga,
        pes: 768,
        on_chip_bytes: 545 * 4096,
        bandwidth_gbps: 5.3,
        freq_mhz: 200.0,
    }
}

fn bench(c: &mut Criterion) {
    let w = Workload::from_graph(&zoo::alexnet_conv());
    let budget = budget();
    c.bench_function("tab04_no_pipeline", |b| {
        b.iter(|| black_box(simulate_processor(&w, &budget, Dataflow::WeightStationary)))
    });
    let fp = full_pipeline_design(&w, &budget).expect("fits");
    c.bench_function("tab05_full_pipeline", |b| {
        b.iter(|| black_box(simulate_spa(&w, &fp)))
    });
    let mut g = c.benchmark_group("tab06");
    g.sample_size(10);
    g.bench_function("spa_codesign", |b| {
        b.iter(|| {
            black_box(
                autoseg::AutoSeg::new(budget.clone())
                    .max_pus(4)
                    .max_segments(2)
                    .run(&zoo::alexnet_conv())
                    .expect("feasible"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
