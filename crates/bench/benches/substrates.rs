//! Substrate kernels: the MILP solver, Benes routing/pruning, the
//! segmentation DP and Algorithm-1 allocation.

use autoseg::allocate::allocate;
use autoseg::segment::{ChainDpSegmenter, MipSegmenter, Segmenter};
use autoseg::DesignGoal;
use benes::{BenesNetwork, Demand};
use criterion::{criterion_group, criterion_main, Criterion};
use mip::{Cmp, LinExpr, Problem, Sense, Solver};
use nnmodel::{zoo, Workload};
use spa_arch::HwBudget;
use std::hint::black_box;

fn knapsack(n: usize) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    let vars: Vec<_> = (0..n).map(|i| p.add_binary(format!("x{i}"))).collect();
    let mut obj = LinExpr::new();
    let mut cons = LinExpr::new();
    for (i, &v) in vars.iter().enumerate() {
        obj.add_term(v, ((i * 7) % 13 + 1) as f64);
        cons.add_term(v, ((i * 5) % 11 + 1) as f64);
    }
    p.set_objective(obj);
    p.add_constraint(cons, Cmp::Le, (2 * n) as f64);
    p
}

fn bench(c: &mut Criterion) {
    c.bench_function("mip_knapsack_16", |b| {
        let p = knapsack(16);
        b.iter(|| black_box(Solver::new().solve(&p).expect("solves")))
    });

    let net = BenesNetwork::new(8);
    let perm: Vec<usize> = (0..8).rev().collect();
    c.bench_function("benes_route_permutation_8", |b| {
        b.iter(|| black_box(net.route_permutation(&perm).expect("routes")))
    });
    c.bench_function("benes_route_multicast_8", |b| {
        b.iter(|| {
            black_box(
                net.route(&[Demand::multicast(0, vec![1, 3]), Demand::unicast(2, 0)])
                    .expect("routes"),
            )
        })
    });

    let w = Workload::from_graph(&zoo::resnet50());
    c.bench_function("segment_chain_dp_resnet50_4x6", |b| {
        let seg = ChainDpSegmenter::new();
        b.iter(|| black_box(seg.segment(&w, 4, 6).expect("feasible")))
    });
    let wa = Workload::from_graph(&zoo::alexnet_conv());
    let mut g = c.benchmark_group("milp");
    g.sample_size(10);
    g.bench_function("segment_milp_alexnet_4x1", |b| {
        let seg = MipSegmenter::new();
        b.iter(|| black_box(seg.segment(&wa, 4, 1).expect("feasible")))
    });
    g.finish();

    let schedule = ChainDpSegmenter::new().segment(&w, 4, 6).expect("feasible");
    let budget = HwBudget::nvdla_large();
    c.bench_function("allocate_algorithm1_resnet50", |b| {
        b.iter(|| black_box(allocate(&w, &schedule, &budget, DesignGoal::Latency).expect("allocates")))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
