//! Parallel-DSE executor and memo-cache kernels: the same co-design
//! search measured serial vs multi-threaded, and cold- vs warm-cache.
//!
//! The searches are deterministic for any thread count (see the
//! `dse_equiv` integration tests), so every variant here performs
//! identical work — the timings isolate executor and cache overheads.

use autoseg::codesign::{mip_baye_with, mip_heuristic_with, CodesignBudgets};
use autoseg::dse::DsePool;
use criterion::{criterion_group, criterion_main, Criterion};
use nnmodel::zoo;
use pucost::EvalCache;
use spa_arch::HwBudget;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = zoo::alexnet_conv();
    let budget = HwBudget::nvdla_small();
    let iters = CodesignBudgets {
        hw_iters: 32,
        seg_iters: 32,
        seed: 3,
        threads: 1,
    };

    let mut g = c.benchmark_group("dse_parallel");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let pool = DsePool::new(threads);
        g.bench_function(format!("mip_baye_t{threads}"), |b| {
            b.iter(|| {
                // Fresh cache per run: measures the executor, not reuse.
                let cache = EvalCache::default();
                black_box(mip_baye_with(&model, &budget, &iters, &pool, &cache).expect("runs"))
            })
        });
    }
    // Cache contribution at a fixed thread count: cold vs pre-warmed.
    let pool = DsePool::new(4);
    g.bench_function("mip_heuristic_cold_cache", |b| {
        b.iter(|| {
            let cache = EvalCache::default();
            black_box(mip_heuristic_with(&model, &budget, &pool, &cache).expect("runs"))
        })
    });
    let warm = EvalCache::default();
    mip_heuristic_with(&model, &budget, &pool, &warm).expect("warmup");
    g.bench_function("mip_heuristic_warm_cache", |b| {
        b.iter(|| black_box(mip_heuristic_with(&model, &budget, &pool, &warm).expect("runs")))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
