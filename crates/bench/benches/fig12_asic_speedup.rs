//! Figure 12 kernel: one full AutoSeg co-design run plus the same-budget
//! general-processor baseline (one table cell).

use autoseg::AutoSeg;
use criterion::{criterion_group, criterion_main, Criterion};
use nnmodel::{zoo, Workload};
use pucost::Dataflow;
use spa_arch::HwBudget;
use spa_sim::simulate_processor;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let budget = HwBudget::nvdla_small();
    let model = zoo::squeezenet1_0();
    let w = Workload::from_graph(&model);
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("baseline_processor", |b| {
        b.iter(|| black_box(simulate_processor(&w, &budget, Dataflow::WeightStationary)))
    });
    g.bench_function("autoseg_full_run", |b| {
        b.iter(|| {
            black_box(
                AutoSeg::new(budget.clone())
                    .max_pus(4)
                    .max_segments(6)
                    .run(&model)
                    .expect("feasible"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
