//! Figure 13 kernel: DRAM traffic accounting of layerwise vs pipelined
//! execution.

use criterion::{criterion_group, criterion_main, Criterion};
use nnmodel::{zoo, Workload};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let models: Vec<Workload> = zoo::evaluation_models()
        .iter()
        .map(Workload::from_graph)
        .collect();
    c.bench_function("fig13_access_accounting", |b| {
        b.iter(|| {
            for w in &models {
                let all: Vec<usize> = (0..w.len()).collect();
                black_box((w.total_layerwise_access(), w.pipelined_access(&all)));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
