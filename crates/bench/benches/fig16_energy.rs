//! Figure 16 kernel: per-frame energy breakdown of one design trio.

use criterion::{criterion_group, criterion_main, Criterion};
use nnmodel::{zoo, Workload};
use pucost::Dataflow;
use spa_arch::HwBudget;
use spa_sim::{simulate_fusion, simulate_processor};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let w = Workload::from_graph(&zoo::squeezenet1_0());
    let budget = HwBudget::eyeriss();
    c.bench_function("fig16_energy_breakdowns", |b| {
        b.iter(|| {
            let base = simulate_processor(&w, &budget, Dataflow::WeightStationary);
            let fused = simulate_fusion(&w, &budget, Some(Dataflow::WeightStationary));
            black_box((base.energy.total_pj(), fused.energy.total_pj()))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
