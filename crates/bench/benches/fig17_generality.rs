//! Figure 17 kernel: remapping a model onto a foreign dedicated design.

use autoseg::{generality, AutoSeg};
use criterion::{criterion_group, criterion_main, Criterion};
use nnmodel::zoo;
use spa_arch::HwBudget;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ded = AutoSeg::new(HwBudget::nvdla_small())
        .max_pus(3)
        .max_segments(6)
        .run(&zoo::squeezenet1_0())
        .expect("feasible");
    let guest = zoo::mobilenet_v1();
    let mut g = c.benchmark_group("fig17");
    g.sample_size(10);
    g.bench_function("remap_mobilenet_onto_squeezenet_design", |b| {
        b.iter(|| black_box(generality::remap(&ded.design, &ded.workload, &guest).expect("mappable")))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
