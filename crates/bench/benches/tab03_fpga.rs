//! Table III kernel: a throughput-oriented FPGA design run (one row).

use autoseg::{AutoSeg, DesignGoal};
use criterion::{criterion_group, criterion_main, Criterion};
use nnmodel::zoo;
use spa_arch::HwBudget;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab03");
    g.sample_size(10);
    g.bench_function("mobilenet_v2_on_zu3eg", |b| {
        b.iter(|| {
            black_box(
                AutoSeg::new(HwBudget::zu3eg())
                    .design_goal(DesignGoal::Throughput)
                    .max_pus(4)
                    .max_segments(6)
                    .run(&zoo::mobilenet_v2())
                    .expect("feasible"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
