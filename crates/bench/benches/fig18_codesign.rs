//! Figure 18 kernel: one co-design method sweep at reduced iteration
//! budgets.

use autoseg::codesign::{mip_heuristic, mip_random, CodesignBudgets};
use criterion::{criterion_group, criterion_main, Criterion};
use nnmodel::zoo;
use spa_arch::HwBudget;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = zoo::alexnet_conv();
    let budget = HwBudget::nvdla_small();
    // Single-threaded so this kernel tracks the serial baseline cost; the
    // parallel executor is measured separately in `dse_parallel`.
    let iters = CodesignBudgets {
        hw_iters: 20,
        seg_iters: 20,
        seed: 3,
        threads: 1,
    };
    let mut g = c.benchmark_group("fig18");
    g.sample_size(10);
    g.bench_function("mip_heuristic", |b| {
        b.iter(|| black_box(mip_heuristic(&model, &budget).expect("runs")))
    });
    g.bench_function("mip_random_20iters", |b| {
        b.iter(|| black_box(mip_random(&model, &budget, &iters).expect("runs")))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
