//! Figure 15 kernel: the Optimus-style fusion baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use nnmodel::{zoo, Workload};
use pucost::Dataflow;
use spa_arch::HwBudget;
use spa_sim::{fusion_groups, simulate_fusion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let w = Workload::from_graph(&zoo::mobilenet_v1());
    let budget = HwBudget::nvdla_small();
    c.bench_function("fig15_fusion_grouping", |b| {
        b.iter(|| black_box(fusion_groups(&w, &budget)))
    });
    c.bench_function("fig15_fusion_simulation", |b| {
        b.iter(|| black_box(simulate_fusion(&w, &budget, Some(Dataflow::WeightStationary))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
