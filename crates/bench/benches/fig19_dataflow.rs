//! Figure 19 kernel: WS/OS/hybrid evaluation of one design.

use criterion::{criterion_group, criterion_main, Criterion};
use nnmodel::{zoo, Workload};
use pucost::{best_dataflow, evaluate, Dataflow, EnergyModel, LayerDesc, PuConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let w = Workload::from_graph(&zoo::mobilenet_v1());
    let descs: Vec<LayerDesc> = w.items().iter().map(LayerDesc::from_item).collect();
    let pu = PuConfig::new(16, 16).with_freq_mhz(800.0);
    let em = EnergyModel::tsmc28();
    c.bench_function("fig19_dual_dataflow_eval", |b| {
        b.iter(|| {
            for d in &descs {
                black_box(evaluate(d, &pu, Dataflow::WeightStationary, &em));
                black_box(evaluate(d, &pu, Dataflow::OutputStationary, &em));
                black_box(best_dataflow(d, &pu, &em));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
