//! Figure 2 kernel: roofline curve sampling for the Table II budgets.

use criterion::{criterion_group, criterion_main, Criterion};
use spa_arch::HwBudget;
use spa_sim::roofline_series;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let budgets = HwBudget::asic_suite();
    c.bench_function("fig02_roofline_series", |b| {
        b.iter(|| {
            for budget in &budgets {
                black_box(roofline_series(budget, 0.1, 100_000.0, 64));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
