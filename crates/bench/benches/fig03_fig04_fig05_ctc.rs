//! Figures 3-5 kernels: workload construction and CTC/ops-distribution
//! analytics over the motivation models.

use criterion::{criterion_group, criterion_main, Criterion};
use nnmodel::{analysis, zoo, Workload};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("fig03_ctc_four_models", |b| {
        b.iter(|| {
            for (g, per) in [
                (zoo::squeezenet1_0(), 6usize),
                (zoo::mobilenet_v2(), 3),
                (zoo::googlenet(), 6),
                (zoo::efficientnet_b0(), 5),
            ] {
                let w = Workload::from_graph(&g);
                let segs = analysis::even_segments(&w, per);
                black_box((
                    analysis::layerwise_ctc(&w),
                    analysis::segmented_ctc(&w, &segs),
                    analysis::full_pipeline_ctc(&w),
                ));
            }
        })
    });
    let w = Workload::from_graph(&zoo::squeezenet1_0());
    c.bench_function("fig04_per_layer_ctc_squeezenet", |b| {
        b.iter(|| black_box(analysis::per_item_ctc(&w)))
    });
    c.bench_function("fig05_ops_distribution_squeezenet", |b| {
        b.iter(|| {
            let segs = analysis::even_segments(&w, 6);
            let d: Vec<u64> = segs.iter().map(|s| analysis::segment_ops(&w, s)).collect();
            black_box(d)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
