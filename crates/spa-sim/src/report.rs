//! Simulation result records.

use pucost::util::{f64_of, f64_of_usize};
use pucost::EnergyBreakdown;
use serde::{Deserialize, Serialize};

/// Energy of a whole simulated execution, by source.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimEnergy {
    /// On-chip PU energy (MACs + buffers).
    pub onchip: EnergyBreakdown,
    /// DRAM access energy (pJ).
    pub dram_pj: f64,
    /// Inter-PU fabric plus dataflow-mux energy (pJ) — the "Others" slice
    /// of Figure 16.
    pub fabric_pj: f64,
}

impl SimEnergy {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.onchip.total_pj() + self.dram_pj + self.fabric_pj
    }
}

/// Per-segment execution statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentStats {
    /// Compute cycles of the bottleneck PU plus pipeline fill.
    pub compute_cycles: u64,
    /// Cycles the DRAM interface needs for this segment's traffic.
    pub memory_cycles: u64,
    /// DRAM bytes moved.
    pub dram_bytes: u64,
    /// The segment's CTC ratio (MACs per DRAM byte).
    pub ctc: f64,
    /// Per-PU compute cycles (`L_comp[n][s]` of Eq. 6).
    pub pu_cycles: Vec<u64>,
}

impl SegmentStats {
    /// The cycles this segment occupies end-to-end (max of compute and
    /// memory, both overlapped by double buffering).
    pub fn cycles(&self) -> u64 {
        self.compute_cycles.max(self.memory_cycles)
    }

    /// `true` if the segment is limited by DRAM bandwidth.
    pub fn memory_bound(&self) -> bool {
        self.memory_cycles > self.compute_cycles
    }
}

/// Result of simulating one frame (or batch) through a design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// End-to-end latency of one frame in seconds.
    pub seconds: f64,
    /// End-to-end latency in cycles at the design clock.
    pub cycles: u64,
    /// Total DRAM traffic in bytes (per frame).
    pub dram_bytes: u64,
    /// MACs executed (per frame).
    pub macs: u64,
    /// PE-array utilization: `macs / (cycles * total_pes)`.
    pub utilization: f64,
    /// Frames processed concurrently (the design's batch factor).
    pub batch: usize,
    /// Energy per frame.
    pub energy: SimEnergy,
    /// Per-segment statistics (one entry for layerwise/fusion groups too).
    pub per_segment: Vec<SegmentStats>,
}

impl SimReport {
    /// Throughput in GOP/s (2 OPs per MAC), accounting for batch-level
    /// parallelism.
    pub fn gops(&self) -> f64 {
        2.0 * f64_of(self.macs) * f64_of_usize(self.batch) / self.seconds / 1e9
    }

    /// Frames per second.
    pub fn fps(&self) -> f64 {
        f64_of_usize(self.batch) / self.seconds
    }

    /// Aggregate CTC ratio of the execution (MACs per DRAM byte).
    pub fn ctc(&self) -> f64 {
        f64_of(self.macs) / f64_of(self.dram_bytes.max(1))
    }

    /// Energy efficiency in GOP/s per watt.
    pub fn gops_per_watt(&self) -> f64 {
        let joules = self.energy.total_pj() * 1e-12;
        let watts = joules / self.seconds;
        self.gops() / watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_derived_metrics() {
        let r = SimReport {
            seconds: 0.01,
            cycles: 2_000_000,
            dram_bytes: 1_000_000,
            macs: 500_000_000,
            utilization: 0.8,
            batch: 2,
            energy: SimEnergy {
                onchip: Default::default(),
                dram_pj: 1e9,
                fabric_pj: 0.0,
            },
            per_segment: vec![],
        };
        assert!((r.gops() - 2.0 * 5e8 * 2.0 / 0.01 / 1e9).abs() < 1e-9);
        assert!((r.fps() - 200.0).abs() < 1e-9);
        assert!((r.ctc() - 500.0).abs() < 1e-9);
        assert!(r.gops_per_watt() > 0.0);
    }

    #[test]
    fn segment_stats_bound_classification() {
        let s = SegmentStats {
            compute_cycles: 100,
            memory_cycles: 200,
            dram_bytes: 1,
            ctc: 1.0,
            pu_cycles: vec![],
        };
        assert!(s.memory_bound());
        assert_eq!(s.cycles(), 200);
    }
}
