//! Layer-fusion baseline (Optimus-style, Section VI-D): cascaded layers
//! execute on a single unified PU with intermediate tiles kept on chip.
//!
//! Fusion removes intra-group feature-map DRAM traffic like pipelining
//! does, but (1) overlapping halo data of adjacent tiles sits inactive in
//! the buffer, shrinking the capacity available for active data, and (2)
//! the unified PU keeps its per-layer utilization profile. These are
//! exactly the two deficits the paper cites when comparing against fusion
//! (Figure 15/16).

use crate::geometry::factor_geometry;
use crate::report::{SegmentStats, SimEnergy, SimReport};
use nnmodel::Workload;
use pucost::util::{ceil_u64, f64_of, f64_of_usize, trunc_u64};
use pucost::{best_dataflow, EnergyModel, LayerDesc, PuConfig};
use spa_arch::HwBudget;

/// Fraction of the on-chip buffer that remains usable for active rows once
/// halo (overlap) data of a fused cascade is resident; decays with cascade
/// depth.
fn effective_buffer(budget_bytes: u64, depth: usize) -> u64 {
    // Each additional fused layer parks roughly one extra (K-S) halo row
    // set in the buffer; 15% per level is representative of the Optimus
    // accounting.
    let halo_levels = i32::try_from(depth.saturating_sub(1)).unwrap_or(i32::MAX);
    let frac = 0.85f64.powi(halo_levels);
    trunc_u64(f64_of(budget_bytes) * frac)
}

/// Greedily forms fusion groups: consecutive items join a cascade while the
/// sum of their active-row working sets fits in the (halo-degraded)
/// on-chip buffer.
pub fn fusion_groups(workload: &Workload, budget: &HwBudget) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut cur_bytes = 0u64;
    for item in workload.items() {
        let desc = LayerDesc::from_item(item);
        let need = desc.min_act_buf_bytes() + desc.min_wgt_buf_bytes(1) * 64;
        let depth = cur.len() + 1;
        if !cur.is_empty() && cur_bytes + need > effective_buffer(budget.on_chip_bytes, depth) {
            groups.push(std::mem::take(&mut cur));
            cur_bytes = 0;
        }
        cur_bytes += need;
        cur.push(item.index);
    }
    if !cur.is_empty() {
        groups.push(cur);
    }
    groups
}

/// Simulates Optimus-style fused execution of `workload` on a unified PU
/// occupying `budget`. Pass a fixed dataflow to model fusion applied to a
/// fixed-dataflow general processor (the paper's "baseline + fusion"
/// configuration), or `None` for an idealized per-layer choice.
pub fn simulate_fusion(
    workload: &Workload,
    budget: &HwBudget,
    fixed: Option<pucost::Dataflow>,
) -> SimReport {
    let (rows, cols) = factor_geometry(budget.pes);
    let pu = PuConfig::new(rows, cols)
        .with_freq_mhz(budget.freq_mhz)
        .with_buffers(budget.on_chip_bytes / 2, budget.on_chip_bytes / 2);
    let em = EnergyModel::tsmc28();
    let bytes_per_cycle = budget.bandwidth_gbps * 1e9 / (budget.freq_mhz * 1e6);

    let groups = fusion_groups(workload, budget);
    let mut total_cycles = 0u64;
    let mut dram_bytes = 0u64;
    let mut onchip = pucost::EnergyBreakdown::default();
    let mut per_segment = Vec::with_capacity(groups.len());
    for group in &groups {
        let mut compute = 0u64;
        let mut ops = 0u64;
        for &i in group {
            let item = &workload.items()[i];
            let desc = LayerDesc::from_item(item);
            let eval = match fixed {
                Some(df) => pucost::evaluate(&desc, &pu, df, &em),
                None => best_dataflow(&desc, &pu, &em).1,
            };
            compute += eval.cycles;
            ops += item.ops;
            onchip = onchip.add(&eval.energy);
        }
        let bytes = workload.pipelined_access(group);
        let mem = ceil_u64(f64_of(bytes) / bytes_per_cycle);
        total_cycles += compute.max(mem);
        dram_bytes += bytes;
        per_segment.push(SegmentStats {
            compute_cycles: compute,
            memory_cycles: mem,
            dram_bytes: bytes,
            ctc: f64_of(ops) / f64_of(bytes.max(1)),
            pu_cycles: vec![compute],
        });
    }

    let macs = workload.total_ops();
    SimReport {
        seconds: f64_of(total_cycles) / (budget.freq_mhz * 1e6),
        cycles: total_cycles,
        dram_bytes,
        macs,
        utilization: f64_of(macs) / (f64_of(total_cycles.max(1)) * f64_of_usize(budget.pes)),
        batch: 1,
        energy: SimEnergy {
            onchip,
            dram_pj: f64_of(dram_bytes) * em.dram_pj_per_byte,
            fabric_pj: 0.0,
        },
        per_segment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layerwise::simulate_layerwise;
    use nnmodel::zoo;

    #[test]
    fn groups_partition_the_workload() {
        let w = Workload::from_graph(&zoo::squeezenet1_0());
        let groups = fusion_groups(&w, &HwBudget::nvdla_small());
        let mut all: Vec<usize> = groups.concat();
        all.sort_unstable();
        assert_eq!(all, (0..w.len()).collect::<Vec<_>>());
        assert!(groups.len() > 1, "expected more than one fusion group");
    }

    #[test]
    fn bigger_buffers_fuse_deeper() {
        let w = Workload::from_graph(&zoo::vgg16());
        let small = fusion_groups(&w, &HwBudget::eyeriss()).len();
        let large = fusion_groups(&w, &HwBudget::edge_tpu()).len();
        assert!(large <= small);
    }

    #[test]
    fn fusion_reduces_dram_vs_layerwise_but_not_vs_full_pipeline() {
        let w = Workload::from_graph(&zoo::mobilenet_v1());
        let budget = HwBudget::nvdla_small();
        let lw = simulate_layerwise(&w, &budget);
        let fu = simulate_fusion(&w, &budget, None);
        assert!(fu.dram_bytes < lw.dram_bytes);
        // Not better than an ideal full pipeline (single group).
        let all: Vec<usize> = (0..w.len()).collect();
        assert!(fu.dram_bytes >= w.pipelined_access(&all));
    }

    #[test]
    fn fusion_latency_improves_on_memory_bound_budgets() {
        let w = Workload::from_graph(&zoo::mobilenet_v1());
        let budget = HwBudget::nvdla_small();
        let lw = simulate_layerwise(&w, &budget);
        let fu = simulate_fusion(&w, &budget, None);
        assert!(fu.seconds <= lw.seconds);
    }

    #[test]
    fn fusion_keeps_unified_pu_compute_profile() {
        // Fusion cannot beat layerwise on pure compute cycles: same PU.
        let w = Workload::from_graph(&zoo::alexnet());
        let budget = HwBudget::nvdla_large();
        let lw = simulate_layerwise(&w, &budget);
        let fu = simulate_fusion(&w, &budget, None);
        let lw_compute: u64 = lw.per_segment.iter().map(|s| s.compute_cycles).sum();
        let fu_compute: u64 = fu.per_segment.iter().map(|s| s.compute_cycles).sum();
        assert_eq!(lw_compute, fu_compute);
    }
}
