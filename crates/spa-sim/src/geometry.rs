//! PE-array geometry helpers.

/// Factors a PE budget into the most square `rows x cols` divisor pair
/// (`rows <= cols`, `rows * cols == pes`). Unlike
/// [`pucost::PuConfig::square_geometry`], the count need not be a power of
/// two — budgets like Eyeriss's 192 PEs factor as 12 x 16.
///
/// # Panics
///
/// Panics if `pes == 0`.
pub fn factor_geometry(pes: usize) -> (usize, usize) {
    assert!(pes > 0, "PE count must be positive");
    let mut best = (1, pes);
    let mut d = 1;
    while d * d <= pes {
        if pes % d == 0 {
            best = (d, pes / d);
        }
        d += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_factorizations() {
        assert_eq!(factor_geometry(192), (12, 16));
        assert_eq!(factor_geometry(256), (16, 16));
        assert_eq!(factor_geometry(2048), (32, 64));
        assert_eq!(factor_geometry(900), (30, 30));
        assert_eq!(factor_geometry(360), (18, 20));
        assert_eq!(factor_geometry(1), (1, 1));
    }

    #[test]
    fn primes_degrade_to_slabs() {
        assert_eq!(factor_geometry(13), (1, 13));
    }

    #[test]
    fn product_always_preserved() {
        for pes in 1..500 {
            let (r, c) = factor_geometry(pes);
            assert_eq!(r * c, pes);
            assert!(r <= c);
        }
    }
}
