//! The no-pipeline (layerwise) simulator: one unified PU, every
//! intermediate feature map round-trips DRAM (Figure 1a).

use crate::geometry::factor_geometry;
use crate::report::{SegmentStats, SimEnergy, SimReport};
use nnmodel::Workload;
use pucost::util::{ceil_u64, div_ceil_u64, f64_of, f64_of_usize};
use pucost::{best_dataflow, EnergyModel, LayerDesc, PuConfig};
use spa_arch::HwBudget;

/// Simulates layerwise execution of `workload` on a unified PU occupying
/// the whole `budget`, with the dataflow chosen per layer (an *idealized*
/// no-pipeline design; real general processors are modeled by
/// [`simulate_processor`]).
pub fn simulate_layerwise(workload: &Workload, budget: &HwBudget) -> SimReport {
    layerwise_impl(workload, budget, None)
}

/// Simulates a *general DNN processor* of the given budget: a unified PU
/// with a **fixed** dataflow for every layer — the Figure 12 comparison
/// targets (Eyeriss / NVDLA / EdgeTPU are all fixed-dataflow engines, which
/// is exactly why depthwise-heavy models underutilize them).
pub fn simulate_processor(
    workload: &Workload,
    budget: &HwBudget,
    dataflow: pucost::Dataflow,
) -> SimReport {
    layerwise_impl(workload, budget, Some(dataflow))
}

/// Like [`simulate_processor`], but with *buffer-aware* DRAM traffic: when
/// a layer's input feature map exceeds the activation buffer, either the
/// weights are re-fetched per spatial tile or the input per weight tile —
/// whichever costs less (the classic tiling-traffic trade-off real
/// accelerators face, which the paper's simple `access(l)` counting
/// ignores).
pub fn simulate_processor_buffered(
    workload: &Workload,
    budget: &HwBudget,
    dataflow: pucost::Dataflow,
) -> SimReport {
    layerwise_impl_opts(workload, budget, Some(dataflow), true)
}

fn layerwise_impl(
    workload: &Workload,
    budget: &HwBudget,
    fixed: Option<pucost::Dataflow>,
) -> SimReport {
    layerwise_impl_opts(workload, budget, fixed, false)
}

/// DRAM bytes of one layer under layerwise execution with finite buffers:
/// base `access(l)` plus the cheaper of weight-refetch (per spatial tile)
/// or input-refetch (per weight tile).
fn buffered_access(item: &nnmodel::WorkItem, ab_bytes: u64, wb_bytes: u64) -> u64 {
    let input = item.read_bytes() - item.w_bytes;
    let base = item.access();
    if input <= ab_bytes {
        return base;
    }
    let spatial_tiles = div_ceil_u64(input, ab_bytes);
    let weight_tiles = div_ceil_u64(item.w_bytes, wb_bytes);
    let refetch_weights = item.w_bytes.saturating_mul(spatial_tiles - 1);
    let refetch_inputs = input.saturating_mul(weight_tiles.saturating_sub(1));
    base + refetch_weights.min(refetch_inputs)
}

fn layerwise_impl_opts(
    workload: &Workload,
    budget: &HwBudget,
    fixed: Option<pucost::Dataflow>,
    buffer_aware: bool,
) -> SimReport {
    let (rows, cols) = factor_geometry(budget.pes);
    let pu = PuConfig::new(rows, cols)
        .with_freq_mhz(budget.freq_mhz)
        .with_buffers(budget.on_chip_bytes / 2, budget.on_chip_bytes / 2);
    let em = EnergyModel::tsmc28();
    let bytes_per_cycle = budget.bandwidth_gbps * 1e9 / (budget.freq_mhz * 1e6);

    let mut total_cycles = 0u64;
    let mut dram_bytes = 0u64;
    let mut onchip = pucost::EnergyBreakdown::default();
    let mut per_segment = Vec::with_capacity(workload.len());
    for item in workload.items() {
        let desc = LayerDesc::from_item(item);
        let eval = match fixed {
            Some(df) => pucost::evaluate(&desc, &pu, df, &em),
            None => best_dataflow(&desc, &pu, &em).1,
        };
        let access = if buffer_aware {
            buffered_access(item, pu.act_buf_bytes, pu.wgt_buf_bytes)
        } else {
            item.access()
        };
        let mem_cycles = ceil_u64(f64_of(access) / bytes_per_cycle);
        // Compute and memory overlap via double buffering; the layer takes
        // the longer of the two.
        let cycles = eval.cycles.max(mem_cycles);
        total_cycles += cycles;
        dram_bytes += access;
        onchip = onchip.add(&eval.energy);
        per_segment.push(SegmentStats {
            compute_cycles: eval.cycles,
            memory_cycles: mem_cycles,
            dram_bytes: access,
            ctc: item.ctc(),
            pu_cycles: vec![eval.cycles],
        });
    }

    let seconds = f64_of(total_cycles) / (budget.freq_mhz * 1e6);
    let macs = workload.total_ops();
    SimReport {
        seconds,
        cycles: total_cycles,
        dram_bytes,
        macs,
        utilization: f64_of(macs) / (f64_of(total_cycles) * f64_of_usize(budget.pes)),
        batch: 1,
        energy: SimEnergy {
            onchip,
            dram_pj: f64_of(dram_bytes) * em.dram_pj_per_byte,
            fabric_pj: 0.0,
        },
        per_segment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnmodel::zoo;

    #[test]
    fn alexnet_on_eyeriss_is_plausible() {
        let w = Workload::from_graph(&zoo::alexnet());
        let r = simulate_layerwise(&w, &HwBudget::eyeriss());
        // 192 PEs @ 200 MHz peak = 38.4 GMAC/s; AlexNet ~0.72 GMAC.
        // Ideal ~19 ms; with utilization losses expect 19-100 ms.
        assert!(
            (0.018..0.2).contains(&r.seconds),
            "latency {} s",
            r.seconds
        );
        assert!(r.utilization > 0.1 && r.utilization <= 1.0);
        assert_eq!(r.dram_bytes, w.total_layerwise_access());
    }

    #[test]
    fn edge_tpu_budget_is_memory_bound() {
        // 0.5 GB/s starves 8192 PEs: almost every layer memory-bound.
        let w = Workload::from_graph(&zoo::mobilenet_v1());
        let r = simulate_layerwise(&w, &HwBudget::edge_tpu());
        let bound = r
            .per_segment
            .iter()
            .filter(|s| s.memory_bound())
            .count();
        assert!(bound * 10 >= r.per_segment.len() * 9, "{bound} bound");
        assert!(r.utilization < 0.15);
    }

    #[test]
    fn more_bandwidth_never_hurts() {
        let w = Workload::from_graph(&zoo::squeezenet1_0());
        let mut slow = HwBudget::nvdla_small();
        let r_slow = simulate_layerwise(&w, &slow);
        slow.bandwidth_gbps *= 8.0;
        let r_fast = simulate_layerwise(&w, &slow);
        assert!(r_fast.seconds <= r_slow.seconds);
    }

    #[test]
    fn energy_has_dram_component() {
        let w = Workload::from_graph(&zoo::squeezenet1_0());
        let r = simulate_layerwise(&w, &HwBudget::eyeriss());
        assert!(r.energy.dram_pj > 0.0);
        assert!(r.energy.onchip.total_pj() > 0.0);
        assert_eq!(r.energy.fabric_pj, 0.0);
    }

    #[test]
    fn buffer_aware_traffic_never_below_simple() {
        let w = Workload::from_graph(&zoo::vgg16());
        let budget = HwBudget::eyeriss();
        let simple = simulate_processor(&w, &budget, pucost::Dataflow::WeightStationary);
        let buffered =
            simulate_processor_buffered(&w, &budget, pucost::Dataflow::WeightStationary);
        assert!(buffered.dram_bytes >= simple.dram_bytes);
        // VGG's big early fmaps overflow Eyeriss's 123 KB: real refetch.
        assert!(
            buffered.dram_bytes > simple.dram_bytes,
            "expected tiling refetch on VGG @ Eyeriss"
        );
        assert!(buffered.seconds >= simple.seconds);
    }

    #[test]
    fn buffer_aware_matches_simple_when_buffers_are_huge() {
        let w = Workload::from_graph(&zoo::squeezenet1_0());
        let mut budget = HwBudget::eyeriss();
        budget.on_chip_bytes = 1 << 30;
        let simple = simulate_processor(&w, &budget, pucost::Dataflow::WeightStationary);
        let buffered =
            simulate_processor_buffered(&w, &budget, pucost::Dataflow::WeightStationary);
        assert_eq!(buffered.dram_bytes, simple.dram_bytes);
    }

    #[test]
    fn per_segment_one_entry_per_item() {
        let w = Workload::from_graph(&zoo::resnet18());
        let r = simulate_layerwise(&w, &HwBudget::nvdla_large());
        assert_eq!(r.per_segment.len(), w.len());
    }
}
