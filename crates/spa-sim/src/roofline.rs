//! Roofline model sampling (Figure 2).

use serde::{Deserialize, Serialize};
use spa_arch::HwBudget;

/// One sample of a roofline curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// CTC ratio in MACs per byte (x-axis; the paper's OPs/Byte axis is
    /// `2x` this).
    pub macs_per_byte: f64,
    /// Attainable performance in OP/s (y-axis).
    pub ops_per_sec: f64,
}

/// Samples `points` log-spaced roofline samples of `budget` between
/// `lo` and `hi` MACs/byte.
///
/// # Panics
///
/// Panics if `points < 2` or the range is not positive and increasing.
pub fn roofline_series(budget: &HwBudget, lo: f64, hi: f64, points: usize) -> Vec<RooflinePoint> {
    assert!(points >= 2, "need at least two samples");
    assert!(lo > 0.0 && hi > lo, "range must be positive and increasing");
    let step = (hi / lo).ln() / pucost::util::f64_of_usize(points - 1);
    (0..points)
        .map(|i| {
            let x = lo * (step * pucost::util::f64_of_usize(i)).exp();
            RooflinePoint {
                macs_per_byte: x,
                ops_per_sec: budget.roofline_ops_per_sec(x),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_monotone_then_flat() {
        let b = HwBudget::nvdla_large();
        let s = roofline_series(&b, 0.1, 10_000.0, 64);
        assert_eq!(s.len(), 64);
        for w in s.windows(2) {
            assert!(w[1].ops_per_sec >= w[0].ops_per_sec - 1e-6);
        }
        assert_eq!(s.last().unwrap().ops_per_sec, b.peak_ops_per_sec());
    }

    #[test]
    fn ridge_point_splits_regimes() {
        let b = HwBudget::nvdla_large();
        let ridge_macs = b.ridge_ops_per_byte() / 2.0;
        assert!(b.roofline_ops_per_sec(ridge_macs * 0.5) < b.peak_ops_per_sec());
        assert_eq!(
            b.roofline_ops_per_sec(ridge_macs * 2.0),
            b.peak_ops_per_sec()
        );
    }

    #[test]
    #[should_panic(expected = "two samples")]
    fn rejects_degenerate_sampling() {
        roofline_series(&HwBudget::eyeriss(), 1.0, 10.0, 1);
    }
}
