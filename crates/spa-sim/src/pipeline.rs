//! The segment-grained pipeline simulator (Figure 8's piece-based
//! execution) and the full-pipeline special case.

use crate::report::{SegmentStats, SimEnergy, SimReport};
use benes::FabricCostModel;
use nnmodel::Workload;
use pucost::util::{ceil_u64, f64_of, f64_of_usize, trunc_u64, u64_of, usize_of};
use pucost::{
    best_dataflow, evaluate, Dataflow, EnergyModel, EvalCache, LayerDesc, PuConfig, PuEval,
};
use spa_arch::{Assignment, HwBudget, Segment, SegmentSchedule, SpaDesign};

/// Simulates one frame (times the design's batch factor) through a SPA
/// design.
///
/// Per segment, each PU's compute time is the sum of its assigned items'
/// evaluations under the chosen dataflow (items sharing a PU execute
/// alternately, Figure 8b). The segment occupies
/// `max_n(L_comp[n]) + fill` compute cycles — the bottleneck PU dominates
/// (Eq. 7) and the first piece pays one piece-time per pipeline hop — or
/// its DRAM time, whichever is larger (double-buffered overlap). Batch
/// replicas multiply DRAM traffic but run in parallel on their own PEs.
///
/// # Panics
///
/// Panics if the design's dataflow table shape mismatches its schedule
/// (call [`SpaDesign::check_shape`] on untrusted designs first).
pub fn simulate_spa(workload: &Workload, design: &SpaDesign) -> SimReport {
    let em = EnergyModel::tsmc28();
    simulate_spa_impl(workload, design, &em, |d, pu, df| evaluate(d, pu, df, &em))
}

/// [`simulate_spa`] with per-layer evaluations served through a shared
/// [`EvalCache`] — search loops that simulate many candidates over the
/// same workload pass one cache handle so repeated `(layer, PU, dataflow)`
/// probes are memoized across candidates. Results are bit-identical to
/// [`simulate_spa`] when the cache's energy model matches (the cached
/// evaluator is a pure function).
///
/// # Panics
///
/// See [`simulate_spa`].
pub fn simulate_spa_with(
    workload: &Workload,
    design: &SpaDesign,
    cache: &EvalCache,
) -> SimReport {
    let em = *cache.energy_model();
    simulate_spa_impl(workload, design, &em, |d, pu, df| cache.evaluate(d, pu, df))
}

fn simulate_spa_impl(
    workload: &Workload,
    design: &SpaDesign,
    em: &EnergyModel,
    eval: impl Fn(&LayerDesc, &PuConfig, Dataflow) -> PuEval,
) -> SimReport {
    design
        .check_shape()
        .expect("design dataflow table matches schedule");
    let freq_mhz = design.pus.first().map_or(800.0, |p| p.freq_mhz);
    let bytes_per_cycle = design.bandwidth_gbps * 1e9 / (freq_mhz * 1e6);
    let fabric = design.fabric();
    let fabric_hop_pj_per_byte =
        FabricCostModel::tsmc28().mux_energy_pj_per_bit * 8.0 * f64_of_usize(fabric.stages());

    let mut total_cycles = 0u64;
    let mut dram_bytes = 0u64;
    let mut fabric_bytes = 0u64;
    let mut onchip = pucost::EnergyBreakdown::default();
    let mut per_segment = Vec::with_capacity(design.schedule.len());

    for (s, seg) in design.schedule.segments.iter().enumerate() {
        let mut pu_cycles = vec![0u64; design.n_pus()];
        let mut pu_pieces = vec![1u64; design.n_pus()];
        for a in &seg.assignments {
            let item = &workload.items()[a.item];
            let desc = LayerDesc::from_item(item);
            let e = eval(&desc, &design.pus[a.pu], design.dataflows[a.pu][s]);
            pu_cycles[a.pu] += e.cycles;
            pu_pieces[a.pu] = pu_pieces[a.pu].max(u64_of(desc.out_h));
            onchip = onchip.add(&e.energy);
        }
        let bottleneck = pu_cycles.iter().copied().max().unwrap_or(0);
        // First-piece fill: one piece-time per PU in the pipeline.
        let fill: u64 = pu_cycles
            .iter()
            .zip(&pu_pieces)
            .map(|(&c, &p)| c / p.max(1))
            .sum();
        let compute = bottleneck + fill;

        let items = seg.items();
        let seg_bytes = workload.pipelined_access(&items);
        let mem = ceil_u64(f64_of(seg_bytes * u64_of(design.batch)) / bytes_per_cycle);

        // Intra-segment producer->consumer traffic crosses the fabric.
        let inset: Vec<bool> = {
            let mut v = vec![false; workload.len()];
            for &i in &items {
                v[i] = true;
            }
            v
        };
        let mut pu_of = std::collections::BTreeMap::new();
        for a in &seg.assignments {
            pu_of.insert(a.item, a.pu);
        }
        for &i in &items {
            for &(p, b) in &workload.items()[i].preds {
                if inset[p] && pu_of.get(&p) != pu_of.get(&i) {
                    fabric_bytes += b;
                }
            }
        }

        total_cycles += compute.max(mem);
        dram_bytes += seg_bytes;
        if obs::enabled() {
            // Stall accounting: the slower side sets the segment's pace,
            // the other side idles for the difference.
            obs::add("spa.pipeline.segments", 1);
            obs::add("spa.pipeline.stall_cycles", mem.saturating_sub(compute));
            obs::add("spa.pipeline.mem_idle_cycles", compute.saturating_sub(mem));
            if mem > compute {
                obs::add("spa.pipeline.mem_bound_segments", 1);
            }
            // Occupancy of the segment's PUs relative to its bottleneck.
            let busy: u64 = pu_cycles.iter().sum();
            let span = bottleneck * u64_of(pu_cycles.len().max(1));
            if span > 0 {
                obs::record("spa.pipeline.occupancy_pct", busy * 100 / span);
            }
        }
        per_segment.push(SegmentStats {
            compute_cycles: compute,
            memory_cycles: mem,
            dram_bytes: seg_bytes,
            ctc: workload.pipelined_ctc(&items),
            pu_cycles,
        });
    }

    let macs = workload.total_ops();
    let total_pes = design.total_pes() * design.batch;
    SimReport {
        seconds: f64_of(total_cycles) / (freq_mhz * 1e6),
        cycles: total_cycles,
        dram_bytes,
        macs,
        utilization: f64_of(macs) / (f64_of(total_cycles.max(1)) * f64_of_usize(total_pes)),
        batch: design.batch,
        energy: SimEnergy {
            onchip,
            dram_pj: f64_of(dram_bytes) * em.dram_pj_per_byte,
            fabric_pj: f64_of(fabric_bytes) * fabric_hop_pj_per_byte,
        },
        per_segment,
    }
}

/// Builds the full-pipeline architecture for `workload` under `budget`
/// (Figure 1b): one segment, one dedicated PU per work item, PEs allocated
/// proportionally to each item's MACs and rounded down to powers of two
/// (the alignment constraint the paper's case study highlights in Table V).
///
/// Returns `None` if the budget cannot give every item at least one PE —
/// the full pipeline's scalability failure mode on deep models
/// (Section I).
pub fn full_pipeline_design(workload: &Workload, budget: &HwBudget) -> Option<SpaDesign> {
    let n = workload.len();
    if n == 0 || budget.pes < n {
        return None;
    }
    let total_ops: u64 = workload.total_ops().max(1);
    let em = EnergyModel::tsmc28();

    // Proportional power-of-two allocation.
    let mut pes: Vec<usize> = workload
        .items()
        .iter()
        .map(|it| {
            let share = f64_of(it.ops) / f64_of(total_ops) * f64_of_usize(budget.pes);
            let p = usize_of(trunc_u64(share.max(1.0)));
            if p.is_power_of_two() {
                p
            } else {
                p.next_power_of_two() / 2
            }
        })
        .collect();
    // Greedy upscale while budget allows: double the PU with the highest
    // cycles-per-PE pressure.
    loop {
        let used: usize = pes.iter().sum();
        let headroom = budget.pes.saturating_sub(used);
        let candidate = workload
            .items()
            .iter()
            .enumerate()
            .filter(|(i, _)| pes[*i] <= headroom)
            .max_by(|(i, a), (j, b)| {
                let ra = f64_of(a.ops) / f64_of_usize(pes[*i]);
                let rb = f64_of(b.ops) / f64_of_usize(pes[*j]);
                ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i);
        match candidate {
            Some(i) => pes[i] *= 2,
            None => break,
        }
    }

    let mut pus = Vec::with_capacity(n);
    let mut dataflows = Vec::with_capacity(n);
    for (item, &p) in workload.items().iter().zip(&pes) {
        let desc = LayerDesc::from_item(item);
        let (r, c) = PuConfig::square_geometry(p);
        let pu = PuConfig::new(r, c)
            .with_freq_mhz(budget.freq_mhz)
            .with_buffers(desc.min_act_buf_bytes(), desc.min_wgt_buf_bytes(p));
        let (df, _) = best_dataflow(&desc, &pu, &em);
        pus.push(pu);
        dataflows.push(vec![df]);
    }

    let segment = Segment {
        assignments: (0..n).map(|i| Assignment { item: i, pu: i }).collect(),
    };
    let schedule = SegmentSchedule::new(vec![segment], n, workload).ok()?;
    Some(SpaDesign {
        name: format!("{}-fullpipe", workload.name()),
        pus,
        schedule,
        dataflows,
        batch: 1,
        bandwidth_gbps: budget.bandwidth_gbps,
        platform: budget.platform,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layerwise::simulate_layerwise;
    use nnmodel::zoo;

    #[test]
    fn full_pipeline_fits_small_models() {
        let w = Workload::from_graph(&zoo::alexnet_conv());
        let d = full_pipeline_design(&w, &HwBudget::nvdla_large()).unwrap();
        assert_eq!(d.n_pus(), w.len());
        assert!(d.total_pes() <= 2048);
        assert!(d.pus.iter().all(|p| p.num_pe().is_power_of_two()));
    }

    #[test]
    fn full_pipeline_infeasible_on_deep_models_with_small_budgets() {
        // ResNet152 has 156 items; Eyeriss has 192 PEs -> technically one
        // each, but SqueezeNet on a 25-PE toy budget must fail.
        let w = Workload::from_graph(&zoo::squeezenet1_0());
        let mut tiny = HwBudget::eyeriss();
        tiny.pes = 10;
        assert!(full_pipeline_design(&w, &tiny).is_none());
    }

    #[test]
    fn pipeline_beats_layerwise_dram_traffic() {
        let w = Workload::from_graph(&zoo::squeezenet1_0());
        let budget = HwBudget::nvdla_small();
        let lw = simulate_layerwise(&w, &budget);
        let d = full_pipeline_design(&w, &budget).unwrap();
        let fp = simulate_spa(&w, &d);
        assert!(
            fp.dram_bytes < lw.dram_bytes / 2,
            "pipeline {} vs layerwise {}",
            fp.dram_bytes,
            lw.dram_bytes
        );
        assert!(fp.ctc() > 2.0 * lw.ctc());
    }

    #[test]
    fn pipelining_helps_memory_bound_budgets() {
        // On the severely bandwidth-starved EdgeTPU budget (0.5 GB/s for
        // 8192 PEs) the pipeline's CTC boost translates into real speedup.
        // (On PE-scarce budgets like NVDLA-Small the full pipeline can
        // *lose* — that is the paper's resource-scalability argument and
        // exactly why SPA exists.)
        let w = Workload::from_graph(&zoo::mobilenet_v1());
        let budget = HwBudget::edge_tpu();
        let lw = simulate_layerwise(&w, &budget);
        let d = full_pipeline_design(&w, &budget).unwrap();
        let fp = simulate_spa(&w, &d);
        assert!(
            fp.seconds < lw.seconds,
            "pipeline {} vs layerwise {}",
            fp.seconds,
            lw.seconds
        );
    }

    #[test]
    fn full_pipeline_can_lose_on_pe_scarce_budgets() {
        // The motivation for segment-grained pipelining: dedicating a PU
        // per layer starves the bottleneck layer when PEs are scarce.
        let w = Workload::from_graph(&zoo::mobilenet_v1());
        let budget = HwBudget::nvdla_small(); // 256 PEs for 28 items
        let d = full_pipeline_design(&w, &budget).unwrap();
        let fp = simulate_spa(&w, &d);
        let lw = simulate_layerwise(&w, &budget);
        // The scarce-PE pipeline is compute-bottlenecked on its weakest PU.
        assert!(fp.per_segment[0].compute_cycles > lw.cycles / 2);
    }

    #[test]
    fn fabric_energy_is_small() {
        // Section VI-E: interconnect + muxes < 3% of energy.
        let w = Workload::from_graph(&zoo::squeezenet1_0());
        let d = full_pipeline_design(&w, &HwBudget::nvdla_large()).unwrap();
        let r = simulate_spa(&w, &d);
        assert!(r.energy.fabric_pj < 0.03 * r.energy.total_pj());
        assert!(r.energy.fabric_pj > 0.0);
    }

    #[test]
    fn cached_simulation_is_bit_identical() {
        let w = Workload::from_graph(&zoo::squeezenet1_0());
        let d = full_pipeline_design(&w, &HwBudget::nvdla_large()).unwrap();
        let direct = simulate_spa(&w, &d);
        let cache = EvalCache::new(EnergyModel::tsmc28());
        let cached = simulate_spa_with(&w, &d, &cache);
        assert_eq!(direct.cycles, cached.cycles);
        assert_eq!(direct.seconds, cached.seconds);
        assert_eq!(direct.dram_bytes, cached.dram_bytes);
        assert_eq!(direct.energy.total_pj(), cached.energy.total_pj());
        // A second simulation of the same design is served from the cache.
        let misses = cache.misses();
        let again = simulate_spa_with(&w, &d, &cache);
        assert_eq!(again.cycles, direct.cycles);
        assert_eq!(cache.misses(), misses, "second run must be all hits");
        assert!(cache.hits() > 0);
    }

    #[test]
    fn batch_scales_throughput_not_latency_much() {
        let w = Workload::from_graph(&zoo::squeezenet1_0());
        let mut d = full_pipeline_design(&w, &HwBudget::nvdla_large()).unwrap();
        let r1 = simulate_spa(&w, &d);
        d.batch = 4;
        let r4 = simulate_spa(&w, &d);
        assert!(r4.gops() > r1.gops());
    }
}
