//! Event-driven piece-level simulation of a segment pipeline.
//!
//! The default [`crate::simulate_spa`] uses the closed-form approximation
//! `max_n(L_comp[n]) + fill` for a segment's compute time. This module
//! simulates the piece-based execution of Figure 8 *exactly*: every work
//! item is split into row pieces, a consumer piece becomes ready once the
//! producer rows its sliding window touches are complete (Figure 8c), and
//! each PU executes its ready pieces one at a time, interleaving co-located
//! items (like L6/L7 in Figure 8b).
//!
//! The event simulator is used two ways:
//!
//! * as a cross-check that the analytical model brackets reality (the
//!   `analytical_model_brackets_event_sim` tests), and
//! * through [`simulate_spa_event`], a drop-in alternative to
//!   [`crate::simulate_spa`] with event-accurate compute times.

use crate::report::{SegmentStats, SimEnergy, SimReport};
use nnmodel::Workload;
use pucost::util::{div_ceil_u64, f64_of, f64_of_usize, u64_of, usize_of};
use pucost::{evaluate, EnergyModel, LayerDesc};
use spa_arch::SpaDesign;

/// One piece: `rows`-granular slice of an item's output.
#[derive(Debug, Clone)]
struct PieceState {
    /// Cycles one piece of this item takes.
    piece_cycles: u64,
    /// Number of pieces (output rows of the anchor).
    pieces: u64,
    /// Finish time of each completed piece.
    finish: Vec<Option<u64>>,
    /// Owning PU.
    pu: usize,
    /// Producer item indices within the segment (positions in `states`),
    /// paired with the producer's piece count (for window mapping).
    producers: Vec<usize>,
    /// Sliding-window geometry of this consumer.
    kernel: usize,
    stride: usize,
    /// Next piece to start (pieces start in row order per item).
    next: u64,
}

/// Computes the exact piece-level compute cycles of segment `seg_idx`.
///
/// Returns the makespan in cycles (all memory effects excluded — combine
/// with the bandwidth model as [`simulate_spa_event`] does).
///
/// # Panics
///
/// Panics if `seg_idx` is out of range or the design's dataflow table is
/// malformed.
pub fn segment_piece_cycles(workload: &Workload, design: &SpaDesign, seg_idx: usize) -> u64 {
    let em = EnergyModel::tsmc28();
    let seg = &design.schedule.segments[seg_idx];

    // Items of the segment in topological order, with in-segment producer
    // links.
    let mut order: Vec<usize> = seg.assignments.iter().map(|a| a.item).collect();
    order.sort_unstable();
    let pos_of = |item: usize| order.binary_search(&item).ok();
    let mut pu_of = std::collections::BTreeMap::new();
    for a in &seg.assignments {
        pu_of.insert(a.item, a.pu);
    }

    let mut states: Vec<PieceState> = Vec::with_capacity(order.len());
    for &item_idx in &order {
        let item = &workload.items()[item_idx];
        let desc = LayerDesc::from_item(item);
        let pu = pu_of[&item_idx];
        let eval = evaluate(&desc, &design.pus[pu], design.dataflows[pu][seg_idx], &em);
        let pieces = u64_of(desc.out_h).max(1);
        let producers: Vec<usize> = item
            .preds
            .iter()
            .filter_map(|&(p, _)| pos_of(p))
            .collect();
        states.push(PieceState {
            piece_cycles: div_ceil_u64(eval.cycles, pieces).max(1),
            pieces,
            finish: vec![None; usize_of(pieces)],
            pu,
            producers,
            kernel: desc.kernel.max(1),
            stride: desc.stride.max(1),
            next: 0,
        });
    }

    let n_pus = design.n_pus();
    let mut pu_free = vec![0u64; n_pus];
    // Event loop: repeatedly start the piece with the earliest feasible
    // start time (deterministic tie-break by (pu, item position)).
    let total_pieces: u64 = states.iter().map(|s| s.pieces).sum();
    let mut done = 0u64;
    let mut makespan = 0u64;
    // A simple O(P * I) list scheduler is plenty at these sizes (a few
    // thousand pieces per segment).
    while done < total_pieces {
        // Find the startable piece minimizing start time; ties resolve
        // row-major so co-located items alternate (Figure 8b) and
        // downstream PUs are fed as early as possible.
        let mut best: Option<(u64, u64, usize)> = None;
        for (si, st) in states.iter().enumerate() {
            if st.next >= st.pieces {
                continue;
            }
            let row = st.next;
            // Dependency: producer rows covered by this row's window.
            let mut dep_ready = Some(0u64);
            for &p in &st.producers {
                let prod = &states[p];
                // Consumer row `row` needs producer rows up to
                // row*stride + kernel - 1, clamped. Single-piece consumers
                // (FC / globally-pooled outputs) reduce over the whole
                // input and must wait for the entire producer.
                let need = if st.pieces == 1 {
                    prod.pieces - 1
                } else {
                    ((row * u64_of(st.stride)) + u64_of(st.kernel))
                        .min(prod.pieces)
                        .max(1)
                        - 1
                };
                match prod.finish[usize_of(need)] {
                    Some(t) => {
                        dep_ready = dep_ready.map(|d| d.max(t));
                    }
                    None => {
                        dep_ready = None;
                        break;
                    }
                }
            }
            let Some(dep) = dep_ready else { continue };
            let start = dep.max(pu_free[st.pu]);
            if best.is_none_or(|(bs, brow, bi)| {
                start < bs || (start == bs && (row, si) < (brow, bi))
            }) {
                best = Some((start, row, si));
            }
        }
        let (start, _row, si) = best.expect("pipeline cannot deadlock: deps are topological");
        let st = &mut states[si];
        let end = start + st.piece_cycles;
        // A piece starting after its PU went free means the PU sat idle
        // waiting for producer rows — the piece-level stall of Figure 8c.
        obs::add(
            "spa.event.pu_idle_cycles",
            start.saturating_sub(pu_free[st.pu]),
        );
        st.finish[usize_of(st.next)] = Some(end);
        st.next += 1;
        pu_free[st.pu] = end;
        makespan = makespan.max(end);
        done += 1;
    }
    obs::add("spa.event.pieces", total_pieces);
    makespan
}

/// Simulates a design with event-accurate per-segment compute times
/// (piece-level pipelining) combined with the same bandwidth/energy model
/// as [`crate::simulate_spa`].
pub fn simulate_spa_event(workload: &Workload, design: &SpaDesign) -> SimReport {
    design
        .check_shape()
        .expect("design dataflow table matches schedule");
    // Start from the analytical report (energy, traffic and per-PU data
    // are identical), then replace each segment's compute cycles.
    let analytical = crate::pipeline::simulate_spa(workload, design);
    let freq_mhz = design.pus.first().map_or(800.0, |p| p.freq_mhz);

    let mut per_segment: Vec<SegmentStats> = Vec::with_capacity(analytical.per_segment.len());
    let mut total_cycles = 0u64;
    for (s, stats) in analytical.per_segment.iter().enumerate() {
        let compute = segment_piece_cycles(workload, design, s);
        let seg = SegmentStats {
            compute_cycles: compute,
            memory_cycles: stats.memory_cycles,
            dram_bytes: stats.dram_bytes,
            ctc: stats.ctc,
            pu_cycles: stats.pu_cycles.clone(),
        };
        total_cycles += seg.cycles();
        per_segment.push(seg);
    }

    let macs = workload.total_ops();
    let total_pes = design.total_pes() * design.batch;
    SimReport {
        seconds: f64_of(total_cycles) / (freq_mhz * 1e6),
        cycles: total_cycles,
        dram_bytes: analytical.dram_bytes,
        macs,
        utilization: f64_of(macs) / (f64_of(total_cycles.max(1)) * f64_of_usize(total_pes)),
        batch: design.batch,
        energy: SimEnergy { ..analytical.energy },
        per_segment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{full_pipeline_design, simulate_spa};
    use nnmodel::zoo;
    use spa_arch::HwBudget;

    fn designs() -> Vec<(Workload, SpaDesign)> {
        let mut out = Vec::new();
        for (model, budget) in [
            (zoo::alexnet_conv(), HwBudget::nvdla_large()),
            (zoo::squeezenet1_0(), HwBudget::nvdla_small()),
        ] {
            let w = Workload::from_graph(&model);
            if let Some(d) = full_pipeline_design(&w, &budget) {
                out.push((w, d));
            }
        }
        out
    }

    #[test]
    fn analytical_model_brackets_event_sim() {
        // The event makespan must lie between the bottleneck PU's time
        // (perfect overlap) and the analytical bottleneck + fill
        // (conservative first-piece accounting), with small tolerance for
        // integer piece rounding.
        for (w, d) in designs() {
            let analytical = simulate_spa(&w, &d);
            for s in 0..d.schedule.len() {
                let event = segment_piece_cycles(&w, &d, s);
                let bottleneck = *analytical.per_segment[s]
                    .pu_cycles
                    .iter()
                    .max()
                    .expect("has PUs");
                let upper = analytical.per_segment[s].compute_cycles;
                assert!(
                    event >= bottleneck,
                    "{}: event {event} below bottleneck {bottleneck}",
                    d.name
                );
                assert!(
                    event <= upper + upper / 5,
                    "{}: event {event} above analytical {upper}",
                    d.name
                );
            }
        }
    }

    #[test]
    fn event_report_is_consistent() {
        for (w, d) in designs() {
            let r = simulate_spa_event(&w, &d);
            assert!(r.seconds > 0.0);
            assert!(r.utilization > 0.0 && r.utilization <= 1.0);
            assert_eq!(r.macs, w.total_ops());
            // Traffic/energy identical to the analytical model.
            let a = simulate_spa(&w, &d);
            assert_eq!(r.dram_bytes, a.dram_bytes);
        }
    }

    #[test]
    fn single_pu_segment_has_no_pipeline_overlap() {
        // With one PU, the event makespan is exactly the sum of piece
        // times (>= the eval total due to per-piece rounding).
        let model = zoo::alexnet_conv();
        let w = Workload::from_graph(&model);
        let out = autoseg_like_single_pu(&w);
        let event = segment_piece_cycles(&w, &out, 0);
        let analytical = simulate_spa(&w, &out);
        let serial: u64 = analytical.per_segment[0].pu_cycles.iter().sum();
        assert!(event >= serial, "event {event} vs serial {serial}");
        assert!(event <= serial + serial / 10);
    }

    /// A trivial 1-PU, 1-segment design used by the serialization test.
    fn autoseg_like_single_pu(w: &Workload) -> SpaDesign {
        use pucost::{Dataflow, PuConfig};
        use spa_arch::{Assignment, Platform, Segment, SegmentSchedule};
        let segment = Segment {
            assignments: (0..w.len()).map(|i| Assignment { item: i, pu: 0 }).collect(),
        };
        let schedule = SegmentSchedule::new(vec![segment], 1, w).expect("valid");
        SpaDesign {
            name: "single".into(),
            pus: vec![PuConfig::new(16, 16)
                .with_freq_mhz(200.0)
                .with_buffers(1 << 20, 1 << 20)],
            schedule,
            dataflows: vec![vec![Dataflow::WeightStationary]],
            batch: 1,
            bandwidth_gbps: 10.0,
            platform: Platform::Asic,
        }
    }

    #[test]
    fn deeper_pipelines_overlap_more() {
        // Event sim should show a full pipeline finishing well before the
        // serial sum of its PU times.
        let model = zoo::alexnet_conv();
        let w = Workload::from_graph(&model);
        let d = full_pipeline_design(&w, &HwBudget::nvdla_large()).expect("fits");
        let event = segment_piece_cycles(&w, &d, 0);
        let analytical = simulate_spa(&w, &d);
        let serial: u64 = analytical.per_segment[0].pu_cycles.iter().sum();
        assert!(
            (event as f64) < 0.7 * serial as f64,
            "no overlap: event {event} vs serial {serial}"
        );
    }
}
