//! Execution simulators for the three accelerator paradigms the paper
//! compares (Figure 1), plus the Optimus-style layer-fusion baseline
//! (Section VI-D) and the roofline model (Figure 2).
//!
//! All simulators are analytical at the same fidelity the paper's own
//! evaluation uses (Timeloop per-PU models + roofline memory bounds):
//!
//! * [`simulate_layerwise`] — a unified PU executes items one by one;
//!   every intermediate feature map round-trips DRAM.
//! * [`simulate_spa`] — the segment-grained pipeline: per-segment
//!   piece-based pipelining (Figure 8), intra-segment fmaps forwarded
//!   through the Benes fabric, per-(PU, segment) dataflows.
//! * [`full_pipeline_design`] + [`simulate_spa`] — the full-pipeline
//!   architecture is the single-segment special case with one PU per item.
//! * [`simulate_fusion`] — layer fusion on a unified PU: fused groups keep
//!   fmaps on chip but pay buffer capacity for overlapping tiles and keep
//!   the unified PU's utilization profile.
//!
//! # Example
//!
//! ```
//! use nnmodel::{zoo, Workload};
//! use spa_arch::HwBudget;
//! use spa_sim::simulate_layerwise;
//!
//! let w = Workload::from_graph(&zoo::squeezenet1_0());
//! let report = simulate_layerwise(&w, &HwBudget::eyeriss());
//! assert!(report.seconds > 0.0);
//! assert!(report.utilization <= 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod fusion;
mod geometry;
mod layerwise;
mod pipeline;
mod report;
mod roofline;

pub use event::{segment_piece_cycles, simulate_spa_event};
pub use fusion::{fusion_groups, simulate_fusion};
pub use geometry::factor_geometry;
pub use layerwise::{simulate_layerwise, simulate_processor, simulate_processor_buffered};
pub use pipeline::{full_pipeline_design, simulate_spa, simulate_spa_with};
pub use report::{SegmentStats, SimEnergy, SimReport};
pub use roofline::{roofline_series, RooflinePoint};
