//! Cross-validation of the analytical pipeline model against the
//! event-driven piece-level simulator on *random segmentations* — not
//! just the full-pipeline special case the unit tests cover.
//!
//! Two documented brackets, asserted per segment and never averaged
//! away:
//!
//! * **Random segmentations** (seeded (schedule, PE-allocation) pairs
//!   over three zoo models) pin the *universal work-conservation
//!   bracket*:
//!
//!   ```text
//!     bottleneck  <=  event  <=  serial + pieces
//!   ```
//!
//!   `bottleneck = max_pu(pu_cycles)` is the perfect-overlap lower
//!   bound; `serial = sum_pu(pu_cycles)` is full serialization and
//!   `pieces` (one extra cycle per piece) absorbs the integer rounding
//!   of per-piece cycle counts. Both sides are exact — the event
//!   scheduler never leaves every PU idle while work remains, so its
//!   makespan cannot exceed the rounded serial sum.
//!
//! * **Full-pipeline designs on linear-chain models** (deep
//!   piece-parallelism, one PU per item) additionally satisfy the
//!   tighter analytical tolerance
//!   `event <= (bottleneck + fill) * (1 + TOL)` with `TOL = 20%`
//!   (`TOL_NUM/TOL_DEN`). The closed-form `fill` term models only the
//!   first-piece ramp, so this band is *documented as conditional*:
//!   random segmentations serialize chained items on one PU beyond it
//!   (observed 1.36x on resnet18), and residual models break it even
//!   fully pipelined (resnet18's single-piece global-pool/FC tail,
//!   2.3x). Those cases are exactly why the universal bracket above
//!   exists.
//!
//! Whole-report identities are pinned too: total cycles are exactly the
//! sum of per-segment `max(compute, memory)`, pipeline stalls
//! (`event - bottleneck`) are non-negative everywhere, and the event
//! report reuses the analytical traffic/energy model bit-for-bit.

use nnmodel::{zoo, Workload};
use spa_arch::{Assignment, HwBudget, Segment, SegmentSchedule};
use spa_sim::{segment_piece_cycles, simulate_spa, simulate_spa_event};

/// Per-segment upper-bound tolerance over the analytical estimate on
/// full-pipeline designs (see module docs):
/// `event <= analytical + analytical/5`.
const TOL_NUM: u64 = 1;
const TOL_DEN: u64 = 5;

/// Total output rows (= pieces) of a segment — the exact rounding slack
/// of the serial upper bound, one cycle per `ceil`-rounded piece.
fn segment_pieces(w: &Workload, d: &spa_arch::SpaDesign, s: usize) -> u64 {
    d.schedule.segments[s]
        .assignments
        .iter()
        .map(|a| {
            let desc = pucost::LayerDesc::from_item(&w.items()[a.item]);
            u64::try_from(desc.out_h.max(1)).expect("fits")
        })
        .sum()
}

/// SplitMix64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        usize::try_from(self.next() % u64::try_from(bound.max(1)).expect("fits")).expect("bounded")
    }
}

/// Splits `len` into `parts` contiguous non-empty chunk sizes, randomly.
fn random_chunks(rng: &mut Rng, len: usize, parts: usize) -> Vec<usize> {
    let mut sizes = vec![1usize; parts];
    for _ in 0..(len - parts) {
        sizes[rng.below(parts)] += 1;
    }
    sizes
}

/// Builds a random valid segmentation: contiguous item ranges per
/// segment (topological order ⇒ no backward dependencies), contiguous
/// per-PU chunks within each segment (⇒ intra-segment data only flows
/// from lower to higher PU, so no bidirectional-flow violations), and
/// every PU busy in every segment.
fn random_schedule(rng: &mut Rng, w: &Workload) -> SegmentSchedule {
    let n = w.len();
    let n_pus = 2 + rng.below(3); // 2..=4
    let max_segs = (n / n_pus).max(1);
    let n_segs = 1 + rng.below(max_segs.min(4));
    let seg_sizes = {
        let mut s = vec![n_pus; n_segs];
        for _ in 0..(n - n_segs * n_pus) {
            s[rng.below(n_segs)] += 1;
        }
        s
    };
    let mut segments = Vec::with_capacity(n_segs);
    let mut item = 0usize;
    for &len in &seg_sizes {
        let chunks = random_chunks(rng, len, n_pus);
        let mut assignments = Vec::with_capacity(len);
        for (pu, &c) in chunks.iter().enumerate() {
            for _ in 0..c {
                assignments.push(Assignment { item, pu });
                item += 1;
            }
        }
        segments.push(Segment { assignments });
    }
    SegmentSchedule::new(segments, n_pus, w)
        .expect("contiguous topological chunking always yields a valid schedule")
}

fn random_design(
    rng: &mut Rng,
    w: &Workload,
    budget: &HwBudget,
) -> spa_arch::SpaDesign {
    let schedule = random_schedule(rng, w);
    let pes: Vec<usize> = (0..schedule.n_pus)
        .map(|_| 32usize << rng.below(4)) // 32, 64, 128 or 256 PEs
        .collect();
    let buf_mult = 1 + u64::try_from(rng.below(2)).expect("small");
    autoseg::allocate::manual_design(w, &schedule, budget, &pes, buf_mult)
}

fn models() -> Vec<Workload> {
    vec![
        Workload::from_graph(&zoo::alexnet_conv()),
        Workload::from_graph(&zoo::squeezenet1_0()),
        Workload::from_graph(&zoo::resnet18()),
    ]
}

#[test]
fn event_sim_is_bracketed_on_random_segmentations() {
    let mut rng = Rng(0xc0a5_0001);
    let budget = HwBudget::nvdla_large();
    for w in models() {
        for trial in 0..4 {
            let d = random_design(&mut rng, &w, &budget);
            let analytical = simulate_spa(&w, &d);
            for s in 0..d.schedule.len() {
                let event = segment_piece_cycles(&w, &d, s);
                let bottleneck = *analytical.per_segment[s]
                    .pu_cycles
                    .iter()
                    .max()
                    .expect("segment has PUs");
                let serial: u64 = analytical.per_segment[s].pu_cycles.iter().sum();
                let slack = segment_pieces(&w, &d, s);
                assert!(
                    event >= bottleneck,
                    "{} trial {trial} seg {s}: event {event} below the \
                     perfect-overlap bound {bottleneck}",
                    w.name()
                );
                assert!(
                    event <= serial + slack,
                    "{} trial {trial} seg {s}: event {event} exceeds the \
                     serial bound {serial} + rounding slack {slack} — the \
                     scheduler left every PU idle with work remaining",
                    w.name()
                );
            }
        }
    }
}

#[test]
fn full_pipeline_designs_meet_the_analytical_tolerance() {
    // The tighter 20% band over `bottleneck + fill` is documented as
    // conditional on deep piece-parallelism: it holds for the
    // full-pipeline design (one PU per item, chains pipelined
    // piece-by-piece) on linear-chain models. Residual topologies break
    // it even there — resnet18's single-piece tail (global pool + FC
    // reduce over their whole input) serializes 2.3x past the fill
    // estimate — so resnet18 is covered only by the universal bracket
    // above, and this band is pinned on the two chain models.
    let budget = HwBudget::nvdla_large();
    for w in [
        Workload::from_graph(&zoo::alexnet_conv()),
        Workload::from_graph(&zoo::squeezenet1_0()),
    ] {
        let Some(d) = spa_sim::full_pipeline_design(&w, &budget) else {
            continue; // model too deep for one PU per item on this budget
        };
        let analytical = simulate_spa(&w, &d);
        for s in 0..d.schedule.len() {
            let event = segment_piece_cycles(&w, &d, s);
            let bottleneck = *analytical.per_segment[s]
                .pu_cycles
                .iter()
                .max()
                .expect("segment has PUs");
            let upper = analytical.per_segment[s].compute_cycles;
            assert!(event >= bottleneck, "{}: below bottleneck", w.name());
            assert!(
                event <= upper + upper * TOL_NUM / TOL_DEN,
                "{} seg {s}: event {event} exceeds analytical {upper} by \
                 more than {TOL_NUM}/{TOL_DEN}",
                w.name()
            );
        }
    }
}

#[test]
fn report_cycle_sums_and_stalls_are_consistent() {
    let mut rng = Rng(0xc0a5_0002);
    let budget = HwBudget::nvdla_large();
    for w in models() {
        let d = random_design(&mut rng, &w, &budget);
        let analytical = simulate_spa(&w, &d);
        let event = simulate_spa_event(&w, &d);

        // Identity: total cycles are exactly the sum of per-segment
        // max(compute, memory) — no hidden slack in either model.
        let a_sum: u64 = analytical.per_segment.iter().map(|s| s.cycles()).sum();
        assert_eq!(a_sum, analytical.cycles, "analytical per-segment sum");
        let e_sum: u64 = event.per_segment.iter().map(|s| s.cycles()).sum();
        assert_eq!(e_sum, event.cycles, "event per-segment sum");

        // Stall accounting: each segment's pipeline stall is the event
        // makespan minus the bottleneck PU's busy time; it must be
        // non-negative, and summing stalls + bottlenecks reproduces the
        // event compute total exactly.
        let mut stall_sum = 0u64;
        let mut bottleneck_sum = 0u64;
        for (s, seg) in event.per_segment.iter().enumerate() {
            let bottleneck = *analytical.per_segment[s]
                .pu_cycles
                .iter()
                .max()
                .expect("segment has PUs");
            let stall = seg.compute_cycles.checked_sub(bottleneck).unwrap_or_else(|| {
                panic!("{} seg {s}: negative stall", w.name())
            });
            stall_sum += stall;
            bottleneck_sum += bottleneck;
        }
        let event_compute: u64 = event.per_segment.iter().map(|s| s.compute_cycles).sum();
        assert_eq!(
            bottleneck_sum + stall_sum,
            event_compute,
            "{}: stall decomposition must be exact",
            w.name()
        );

        // The event report reuses the analytical traffic/energy model.
        assert_eq!(event.dram_bytes, analytical.dram_bytes);
        assert_eq!(event.macs, analytical.macs);
        for (e, a) in event.per_segment.iter().zip(&analytical.per_segment) {
            assert_eq!(e.memory_cycles, a.memory_cycles);
            assert_eq!(e.dram_bytes, a.dram_bytes);
            assert_eq!(e.pu_cycles, a.pu_cycles);
        }
    }
}

#[test]
fn random_schedules_are_deterministic_per_seed() {
    // The generator itself must be reproducible, or failures are not
    // actionable; render() gives a stable textual form to compare.
    let w = Workload::from_graph(&zoo::squeezenet1_0());
    let a = random_schedule(&mut Rng(42), &w);
    let b = random_schedule(&mut Rng(42), &w);
    assert_eq!(a.render(&w), b.render(&w));
    assert_eq!(a.n_pus, b.n_pus);
    assert_eq!(a.len(), b.len());
}
