//! `spa-fleet` — the sharded serving front end.
//!
//! Spawns `FLEET_SHARDS` `spa-serve` worker processes (one unix socket
//! and one warm-cache directory each), consistent-hashes work requests
//! across them, and fronts the whole fleet on one unix socket speaking
//! the same JSONL v1 protocol as a single `spa-serve`. Shard crashes
//! are absorbed: the supervisor respawns dead shards, the router
//! re-sends their in-flight work, and interrupted codesigns resume from
//! their server-side checkpoints bit-identically.
//!
//! ```text
//! spa-fleet --socket PATH --dir DIR [--shards N]
//! ```
//!
//! Environment: `FLEET_SOCKET`, `FLEET_DIR`, `FLEET_SHARDS`,
//! `FLEET_MAX_INFLIGHT` (soft shed watermark; hard is 2×),
//! `FLEET_VNODES`, `FLEET_PROBE_MS`, `FLEET_SNAPSHOT_MS` (0 disables
//! snapshot exchange), `SPA_SERVE_BIN` (shard binary override). Shards
//! inherit the process env plus their own `SERVE_CACHE_DIR` /
//! `SERVE_MAX_INFLIGHT`.

use serve::{run_fleet_socket, Fleet, FleetConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

/// Raised by the SIGTERM/SIGINT handler; polled by the accept loop.
static TERMINATE: AtomicBool = AtomicBool::new(false);

/// Same minimal async-signal-safe handler as `spa-serve`.
fn install_signal_handlers() {
    extern "C" fn on_term(_sig: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as usize);
        signal(SIGINT, on_term as usize);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: spa-fleet --socket PATH --dir DIR [--shards N]\n\
         (FLEET_SOCKET / FLEET_DIR / FLEET_SHARDS are equivalent)\n\
         env: FLEET_MAX_INFLIGHT, FLEET_VNODES, FLEET_PROBE_MS,\n\
         FLEET_SNAPSHOT_MS, SPA_SERVE_BIN"
    );
    std::process::exit(2);
}

fn main() {
    faultsim::arm_from_env();
    let mut socket: Option<PathBuf> = std::env::var("FLEET_SOCKET")
        .ok()
        .filter(|s| !s.is_empty())
        .map(PathBuf::from);
    let mut dir: Option<PathBuf> = std::env::var("FLEET_DIR")
        .ok()
        .filter(|s| !s.is_empty())
        .map(PathBuf::from);
    let mut shards: Option<usize> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match (args[i].as_str(), args.get(i + 1)) {
            ("--socket", Some(v)) => {
                socket = Some(PathBuf::from(v));
                i += 2;
            }
            ("--dir", Some(v)) => {
                dir = Some(PathBuf::from(v));
                i += 2;
            }
            ("--shards", Some(v)) => {
                shards = v.parse().ok();
                i += 2;
            }
            _ => usage(),
        }
    }
    let (Some(socket), Some(dir)) = (socket, dir) else {
        usage()
    };
    let mut cfg = FleetConfig::from_env(&dir);
    if let Some(n) = shards {
        cfg.shards = n.max(1);
    }
    install_signal_handlers();
    let fleet = match Fleet::start(cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("spa-fleet: start failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "spa-fleet: {} shards under {}, listening on {}",
        fleet.router().shards(),
        dir.display(),
        socket.display()
    );
    if let Err(e) = run_fleet_socket(Path::new(&socket), &fleet, &TERMINATE) {
        eprintln!("spa-fleet: socket front failed: {e}");
        std::process::exit(1);
    }
    eprintln!("spa-fleet: stopped");
    obs::finish();
}
