//! The versioned JSONL request/response protocol.
//!
//! One JSON object per line in each direction. Every request carries the
//! protocol version (`"v": 1`), a client-chosen numeric `id` (echoed on
//! every response to that request) and a `req` discriminator; work
//! requests may add `priority` (higher runs first, default 0) and
//! `deadline_ms` (a per-request wall-clock budget — the server answers
//! with a typed `partial` instead of blowing through it).
//!
//! Grammar (responses mirror `id`):
//!
//! ```text
//! request  = { "v":1, "id":N, "req":KIND, ...kind fields...,
//!              "priority":P?, "deadline_ms":D? }
//! KIND     = "eval_pu" | "segment" | "codesign" | "status"
//!          | "metrics" | "cancel" | "flush" | "shutdown"
//! response = { "id":N, "kind":"done",     "result":{...}, "trace":T? }
//!          | { "id":N, "kind":"partial",  "reason":R, "completed_gens":G,
//!              "planned_gens":T, "result":{...}?, "trace":T? }
//!          | { "id":N, "kind":"progress", "state":"running", "trace":T? }
//!          | { "id":N, "kind":"error",    "code":C, "message":M, "trace":T? }
//! R        = "deadline" | "generation budget" | "cancelled"
//! ```
//!
//! `eval_pu` carries `layer` (the ten `LayerDesc` fields), `pu`
//! (`rows`, `cols`, optional `act_buf`, `wgt_buf`, `freq_mhz`) and
//! `dataflow` (`"WS"`, `"OS"` or `"best"`). `segment`/`codesign` name a
//! zoo `model` and a `budget` preset; `codesign` adds `method` plus
//! optional `hw_iters`, `seg_iters`, `seed`. `cancel` names the `target`
//! request id to interrupt.
//!
//! `metrics` reports the request-grained telemetry the server keeps
//! always-on (independent of `OBS_LEVEL`): uptime, per-stage latency
//! quantiles (parse / queue wait / batch formation / eval / search /
//! respond, in microseconds, p50/p90/p99/p999 within ~3.1%) and per-verb
//! end-to-end quantiles. With `"flight":true` the response also embeds a
//! live flight-recorder dump (the last N events per thread, globally
//! ordered). Like `status` it is answered inline, never queued.
//!
//! Every response carries `trace` — the server-minted trace id of the
//! request it answers (omitted only for lines rejected before an id was
//! assigned). The same id tags flight-recorder events and Chrome trace
//! spans emitted while that request executed, linking wire responses to
//! in-process telemetry.

use crate::json::{obj, parse, Json};
use pucost::{Dataflow, LayerDesc, PuConfig};

/// Protocol version this server speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// Dataflow selector for `eval_pu`: a fixed dataflow or the
/// latency-first best-of-both probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataflowSel {
    /// Evaluate exactly this dataflow.
    Fixed(Dataflow),
    /// Probe both and return the winner ([`pucost::EvalCache::best_dataflow`]).
    Best,
}

/// One parsed, validated client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate one `(layer, PU, dataflow)` triple through the shared cache.
    EvalPu {
        /// The layer to cost.
        layer: LayerDesc,
        /// The PU configuration to cost it on.
        pu: PuConfig,
        /// Which dataflow(s) to probe.
        dataflow: DataflowSel,
    },
    /// Run the AutoSeg engine sweep for a zoo model under a named budget.
    Segment {
        /// Zoo model name (`nnmodel::zoo::by_name`).
        model: String,
        /// Budget preset name (`eyeriss`, `zu3eg`, ...).
        budget: String,
    },
    /// Run one co-design method (anytime, checkpointed server-side).
    Codesign {
        /// Zoo model name.
        model: String,
        /// Budget preset name.
        budget: String,
        /// Method label (`mip-heuristic`, `baye-baye`, ...).
        method: String,
        /// Hardware-search iterations (default: smoke budget).
        hw_iters: usize,
        /// Segmentation-search iterations (default: smoke budget).
        seg_iters: usize,
        /// Search seed.
        seed: u64,
    },
    /// Report live service metrics.
    Status,
    /// Report request-grained telemetry: uptime, per-stage and per-verb
    /// latency quantiles; optionally a flight-recorder dump.
    Metrics {
        /// Embed a live flight-recorder dump in the response.
        flight: bool,
    },
    /// Cancel an earlier request on the same connection by its id.
    Cancel {
        /// The id of the request to cancel.
        target: u64,
    },
    /// Persist the warm cache to disk now (answered inline). The fleet
    /// router uses this to trigger snapshot exchange deterministically;
    /// standalone servers answer with the save/entry counts.
    Flush,
    /// Graceful shutdown: checkpoint in-flight searches, flush the
    /// persistent cache, stop accepting work.
    Shutdown,
}

/// A request line together with its envelope fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Client-chosen request id, echoed on every response.
    pub id: u64,
    /// Scheduling priority; higher runs first (default 0).
    pub priority: i64,
    /// Per-request wall-clock budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// The request payload.
    pub request: Request,
}

/// A typed request-line rejection (answered as a `kind:"error"` line).
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoError {
    /// Stable machine-readable code.
    pub code: &'static str,
    /// Human-oriented detail.
    pub message: String,
    /// The request id, when the line got far enough to carry one.
    pub id: Option<u64>,
}

impl ProtoError {
    fn new(code: &'static str, message: impl Into<String>, id: Option<u64>) -> Self {
        Self {
            code,
            message: message.into(),
            id,
        }
    }
}

fn req_u64(o: &Json, key: &str, id: Option<u64>) -> Result<u64, ProtoError> {
    o.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtoError::new("bad-request", format!("missing/invalid `{key}`"), id))
}

fn req_usize(o: &Json, key: &str, id: Option<u64>) -> Result<usize, ProtoError> {
    Ok(pucost::util::usize_of(req_u64(o, key, id)?))
}

fn req_bool(o: &Json, key: &str, id: Option<u64>) -> Result<bool, ProtoError> {
    o.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| ProtoError::new("bad-request", format!("missing/invalid `{key}`"), id))
}

fn req_str<'a>(o: &'a Json, key: &str, id: Option<u64>) -> Result<&'a str, ProtoError> {
    o.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::new("bad-request", format!("missing/invalid `{key}`"), id))
}

/// Parses one request line into its envelope.
///
/// # Errors
///
/// A typed [`ProtoError`] for malformed JSON, version mismatch, missing
/// or ill-typed fields, or an unknown `req` kind.
pub fn parse_request(line: &str) -> Result<Envelope, ProtoError> {
    let v = parse(line)
        .map_err(|e| ProtoError::new("bad-json", e.to_string(), None))?;
    if v.as_obj().is_none() {
        return Err(ProtoError::new("bad-request", "request is not an object", None));
    }
    let id = v.get("id").and_then(Json::as_u64);
    let version = req_u64(&v, "v", id)?;
    if version != PROTOCOL_VERSION {
        return Err(ProtoError::new(
            "bad-version",
            format!("protocol version {version} unsupported (this server speaks {PROTOCOL_VERSION})"),
            id,
        ));
    }
    let id = req_u64(&v, "id", id)?;
    let priority = match v.get("priority") {
        None => 0,
        Some(p) => {
            let n = p.as_f64().ok_or_else(|| {
                ProtoError::new("bad-request", "`priority` must be a number", Some(id))
            })?;
            // Integral within i64 range, negative allowed. Exact-zero
            // fract is the integrality test. lint: allow(float-eq)
            if !n.is_finite() || n.fract() != 0.0 || n.abs() > 9.0e15 {
                return Err(ProtoError::new(
                    "bad-request",
                    "`priority` must be an integer",
                    Some(id),
                ));
            }
            let mag = pucost::util::trunc_u64(n.abs());
            let mag = i64::try_from(mag).unwrap_or(i64::MAX);
            if n < 0.0 {
                -mag
            } else {
                mag
            }
        }
    };
    let deadline_ms = match v.get("deadline_ms") {
        None => None,
        Some(d) => Some(d.as_u64().ok_or_else(|| {
            ProtoError::new("bad-request", "`deadline_ms` must be a non-negative integer", Some(id))
        })?),
    };
    let kind = req_str(&v, "req", Some(id))?;
    let request = match kind {
        "eval_pu" => parse_eval_pu(&v, id)?,
        "segment" => Request::Segment {
            model: req_str(&v, "model", Some(id))?.to_string(),
            budget: req_str(&v, "budget", Some(id))?.to_string(),
        },
        "codesign" => Request::Codesign {
            model: req_str(&v, "model", Some(id))?.to_string(),
            budget: req_str(&v, "budget", Some(id))?.to_string(),
            method: req_str(&v, "method", Some(id))?.to_string(),
            hw_iters: match v.get("hw_iters") {
                None => 24,
                Some(_) => req_usize(&v, "hw_iters", Some(id))?,
            },
            seg_iters: match v.get("seg_iters") {
                None => 32,
                Some(_) => req_usize(&v, "seg_iters", Some(id))?,
            },
            seed: match v.get("seed") {
                None => 3,
                Some(_) => req_u64(&v, "seed", Some(id))?,
            },
        },
        "status" => Request::Status,
        "metrics" => Request::Metrics {
            flight: match v.get("flight") {
                None => false,
                Some(_) => req_bool(&v, "flight", Some(id))?,
            },
        },
        "cancel" => Request::Cancel {
            target: req_u64(&v, "target", Some(id))?,
        },
        "flush" => Request::Flush,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(ProtoError::new(
                "unknown-request",
                format!("unknown req kind {other:?}"),
                Some(id),
            ))
        }
    };
    Ok(Envelope {
        id,
        priority,
        deadline_ms,
        request,
    })
}

fn parse_eval_pu(v: &Json, id: u64) -> Result<Request, ProtoError> {
    let layer = v
        .get("layer")
        .ok_or_else(|| ProtoError::new("bad-request", "missing `layer`", Some(id)))?;
    let layer = LayerDesc {
        in_c: req_usize(layer, "in_c", Some(id))?,
        in_h: req_usize(layer, "in_h", Some(id))?,
        in_w: req_usize(layer, "in_w", Some(id))?,
        out_c: req_usize(layer, "out_c", Some(id))?,
        out_h: req_usize(layer, "out_h", Some(id))?,
        out_w: req_usize(layer, "out_w", Some(id))?,
        kernel: req_usize(layer, "kernel", Some(id))?,
        stride: req_usize(layer, "stride", Some(id))?,
        groups: req_usize(layer, "groups", Some(id))?,
        is_fc: req_bool(layer, "is_fc", Some(id))?,
    };
    let pu = v
        .get("pu")
        .ok_or_else(|| ProtoError::new("bad-request", "missing `pu`", Some(id)))?;
    let mut cfg = PuConfig::new(req_usize(pu, "rows", Some(id))?, req_usize(pu, "cols", Some(id))?);
    if pu.get("act_buf").is_some() || pu.get("wgt_buf").is_some() {
        cfg = cfg.with_buffers(
            req_u64(pu, "act_buf", Some(id))?,
            req_u64(pu, "wgt_buf", Some(id))?,
        );
    }
    if let Some(f) = pu.get("freq_mhz") {
        let mhz = f.as_f64().ok_or_else(|| {
            ProtoError::new("bad-request", "`freq_mhz` must be a number", Some(id))
        })?;
        cfg = cfg.with_freq_mhz(mhz);
    }
    let dataflow = match req_str(v, "dataflow", Some(id))? {
        "WS" => DataflowSel::Fixed(Dataflow::WeightStationary),
        "OS" => DataflowSel::Fixed(Dataflow::OutputStationary),
        "best" => DataflowSel::Best,
        other => {
            return Err(ProtoError::new(
                "bad-request",
                format!("dataflow must be WS|OS|best, got {other:?}"),
                Some(id),
            ))
        }
    };
    Ok(Request::EvalPu {
        layer,
        pu: cfg,
        dataflow,
    })
}

/// Appends the server-minted trace id to a response's fields (0 = the
/// line never got a trace; the key is omitted).
fn push_trace(fields: &mut Vec<(&str, Json)>, trace: u64) {
    if trace != 0 {
        fields.push(("trace", Json::from(trace)));
    }
}

/// Renders a `kind:"done"` response line.
pub fn done_line(id: u64, result: Json, trace: u64) -> String {
    let mut fields = vec![
        ("id", Json::from(id)),
        ("kind", Json::from("done")),
        ("result", result),
    ];
    push_trace(&mut fields, trace);
    obj(fields).render()
}

/// Renders a `kind:"partial"` response line (typed early stop).
pub fn partial_line(
    id: u64,
    reason: &str,
    completed_gens: u64,
    planned_gens: u64,
    result: Option<Json>,
    trace: u64,
) -> String {
    let mut fields = vec![
        ("id", Json::from(id)),
        ("kind", Json::from("partial")),
        ("reason", Json::from(reason)),
        ("completed_gens", Json::from(completed_gens)),
        ("planned_gens", Json::from(planned_gens)),
    ];
    if let Some(r) = result {
        fields.push(("result", r));
    }
    push_trace(&mut fields, trace);
    obj(fields).render()
}

/// Renders a `kind:"progress"` event line.
pub fn progress_line(id: u64, state: &str, trace: u64) -> String {
    let mut fields = vec![
        ("id", Json::from(id)),
        ("kind", Json::from("progress")),
        ("state", Json::from(state)),
    ];
    push_trace(&mut fields, trace);
    obj(fields).render()
}

/// Renders a `kind:"error"` response line.
pub fn error_line(id: Option<u64>, code: &str, message: &str, trace: u64) -> String {
    let mut fields = vec![
        ("id", id.map_or(Json::Null, Json::from)),
        ("kind", Json::from("error")),
        ("code", Json::from(code)),
        ("message", Json::from(message)),
    ];
    push_trace(&mut fields, trace);
    obj(fields).render()
}

impl From<&ProtoError> for String {
    fn from(e: &ProtoError) -> String {
        error_line(e.id, e.code, &e.message, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_eval_pu_with_defaults_and_options() {
        let line = r#"{"v":1,"id":7,"req":"eval_pu","dataflow":"best",
            "layer":{"in_c":64,"in_h":28,"in_w":28,"out_c":128,"out_h":28,"out_w":28,
                     "kernel":3,"stride":1,"groups":1,"is_fc":false},
            "pu":{"rows":16,"cols":16,"act_buf":4096,"wgt_buf":4096,"freq_mhz":400.0},
            "priority":5,"deadline_ms":250}"#
            .replace('\n', " ");
        let env = parse_request(&line).expect("parses");
        assert_eq!(env.id, 7);
        assert_eq!(env.priority, 5);
        assert_eq!(env.deadline_ms, Some(250));
        match env.request {
            Request::EvalPu { layer, pu, dataflow } => {
                assert_eq!(layer.in_c, 64);
                assert!(!layer.is_fc);
                assert_eq!((pu.rows, pu.cols), (16, 16));
                assert_eq!((pu.act_buf_bytes, pu.wgt_buf_bytes), (4096, 4096));
                assert_eq!(dataflow, DataflowSel::Best);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parses_control_requests() {
        let st = parse_request(r#"{"v":1,"id":1,"req":"status"}"#).expect("status");
        assert_eq!(st.request, Request::Status);
        let ca = parse_request(r#"{"v":1,"id":2,"req":"cancel","target":9}"#).expect("cancel");
        assert_eq!(ca.request, Request::Cancel { target: 9 });
        let sh = parse_request(r#"{"v":1,"id":3,"req":"shutdown"}"#).expect("shutdown");
        assert_eq!(sh.request, Request::Shutdown);
        let cd = parse_request(
            r#"{"v":1,"id":4,"req":"codesign","model":"alexnet","budget":"eyeriss","method":"mip-heuristic"}"#,
        )
        .expect("codesign");
        match cd.request {
            Request::Codesign { hw_iters, seg_iters, seed, .. } => {
                assert_eq!((hw_iters, seg_iters, seed), (24, 32, 3));
            }
            other => panic!("wrong request: {other:?}"),
        }
        let fl = parse_request(r#"{"v":1,"id":11,"req":"flush"}"#).expect("flush");
        assert_eq!(fl.request, Request::Flush);
        let neg = parse_request(r#"{"v":1,"id":5,"req":"status","priority":-3}"#).expect("neg prio");
        assert_eq!(neg.priority, -3);
        let me = parse_request(r#"{"v":1,"id":6,"req":"metrics"}"#).expect("metrics");
        assert_eq!(me.request, Request::Metrics { flight: false });
        let mf = parse_request(r#"{"v":1,"id":7,"req":"metrics","flight":true}"#).expect("metrics+flight");
        assert_eq!(mf.request, Request::Metrics { flight: true });
        let bad = parse_request(r#"{"v":1,"id":8,"req":"metrics","flight":1}"#).expect_err("flight must be bool");
        assert_eq!(bad.code, "bad-request");
    }

    #[test]
    fn rejects_bad_envelopes_typed() {
        let cases = [
            ("not json", "bad-json"),
            ("[1,2]", "bad-request"),
            (r#"{"id":1,"req":"status"}"#, "bad-request"),
            (r#"{"v":2,"id":1,"req":"status"}"#, "bad-version"),
            (r#"{"v":1,"req":"status"}"#, "bad-request"),
            (r#"{"v":1,"id":1,"req":"frobnicate"}"#, "unknown-request"),
            (r#"{"v":1,"id":1,"req":"cancel"}"#, "bad-request"),
            (r#"{"v":1,"id":1,"req":"status","priority":1.5}"#, "bad-request"),
            (r#"{"v":1,"id":1,"req":"status","deadline_ms":-1}"#, "bad-request"),
        ];
        for (line, code) in cases {
            let e = parse_request(line).expect_err(line);
            assert_eq!(e.code, code, "{line}");
        }
        // Errors echo the id when the envelope got that far.
        let e = parse_request(r#"{"v":1,"id":6,"req":"cancel"}"#).expect_err("no target");
        assert_eq!(e.id, Some(6));
    }

    #[test]
    fn response_lines_are_valid_json() {
        for line in [
            done_line(1, obj(vec![("x", Json::from(1u64))]), 0),
            partial_line(2, "deadline", 3, 9, None, 0),
            partial_line(2, "cancelled", 3, 9, Some(Json::Null), 11),
            progress_line(4, "running", 12),
            error_line(None, "bad-json", "oops", 0),
            error_line(Some(5), "overloaded", "queue full", 13),
        ] {
            let v = crate::json::parse(&line).expect(&line);
            assert!(v.get("kind").is_some(), "{line}");
        }
    }

    #[test]
    fn trace_id_echoes_when_minted_and_is_absent_otherwise() {
        let with = done_line(1, Json::Null, 42);
        let v = crate::json::parse(&with).expect("json");
        assert_eq!(v.get("trace").and_then(Json::as_u64), Some(42));
        let without = done_line(1, Json::Null, 0);
        let v = crate::json::parse(&without).expect("json");
        assert!(v.get("trace").is_none(), "{without}");
        // Trace echo never perturbs key order: the line re-renders to
        // itself (BTreeMap-backed objects are canonically sorted).
        assert_eq!(crate::json::parse(&with).expect("json").render(), with);
    }
}
