//! The persistent warm tier of the PU-cost cache.
//!
//! A [`DiskCache`] snapshots an in-memory [`pucost::EvalCache`] to disk
//! in the PR4 checkpoint format (kind `evalcache`) and restores it on
//! the next server start, so repeated and cross-run requests warm-start
//! instead of recomputing. Three invariants:
//!
//! * **Versioned**: the snapshot records the bound energy model's
//!   fingerprint ([`pucost::EvalCache::model_fingerprint`]); a snapshot
//!   taken under a different model is rejected typed, never mixed in.
//! * **Atomic**: writes go through [`autoseg::Checkpoint::save`]
//!   (tmp + rename, checksummed), so a crash mid-save leaves the
//!   previous snapshot intact — and the `ckpt.torn` fault point lets
//!   tests rehearse exactly that.
//! * **Bounded**: at most `cap` entries are kept. Recency is tracked at
//!   *save granularity* (the cache itself has no per-lookup clock):
//!   entries newly computed since the previous snapshot are considered
//!   most recent and go to the front of the stored order; when the cap
//!   is exceeded, the back — the entries persisted longest ago — is
//!   dropped. This is LRU at snapshot resolution, documented rather
//!   than silent.

use autoseg::{Checkpoint, CheckpointError};
use pucost::EvalCache;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Checkpoint kind tag for cache snapshots.
const KIND: &str = "evalcache";

/// Default entry cap (a full codesign smoke run stays well under this).
pub const DEFAULT_CAP: usize = 65_536;

/// A disk-backed snapshot manager for one [`EvalCache`].
#[derive(Debug)]
pub struct DiskCache {
    path: PathBuf,
    cap: usize,
    /// Stored entry lines, most-recently-persisted first. Mirrors what is
    /// on disk; rewritten by [`DiskCache::save`].
    order: Vec<String>,
    /// Set view of `order` for O(log n) membership checks.
    known: BTreeSet<String>,
    saves: u64,
    loaded: usize,
}

impl DiskCache {
    /// A manager persisting to `path` with an entry cap (clamped ≥ 1).
    pub fn new(path: impl Into<PathBuf>, cap: usize) -> Self {
        Self {
            path: path.into(),
            cap: cap.max(1),
            order: Vec::new(),
            known: BTreeSet::new(),
            saves: 0,
            loaded: 0,
        }
    }

    /// The snapshot path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Entries imported by the last [`DiskCache::load`].
    pub fn loaded_entries(&self) -> usize {
        self.loaded
    }

    /// Snapshots written by this manager.
    pub fn saves(&self) -> u64 {
        self.saves
    }

    /// Loads the snapshot (if any) into `cache` as warm-tier entries.
    /// Returns the number imported: 0 when no snapshot exists yet.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] for a torn/corrupt snapshot or a fingerprint
    /// mismatch (snapshot taken under a different energy model). Callers
    /// treat both as "start cold" but surface the reason.
    pub fn load(&mut self, cache: &EvalCache) -> Result<usize, CheckpointError> {
        if !self.path.exists() {
            return Ok(0);
        }
        let ck = Checkpoint::load(&self.path)?;
        ck.require(
            KIND,
            &[("em", &format!("{:016x}", cache.model_fingerprint()))],
        )?;
        let mut imported = 0usize;
        self.order.clear();
        self.known.clear();
        for line in ck.section("cache") {
            cache.import_line(line).map_err(|e| CheckpointError::Corrupt {
                path: self.path.display().to_string(),
                reason: e.to_string(),
            })?;
            self.order.push(line.clone());
            self.known.insert(line.clone());
            imported += 1;
        }
        self.loaded = imported;
        obs::add("serve.diskcache.loaded", pucost::util::u64_of(imported));
        Ok(imported)
    }

    /// Snapshots `cache` to disk: new entries (not in the previous
    /// snapshot) are prepended in sorted order, the previous order is
    /// kept behind them, and everything past `cap` entries is dropped.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the atomic write fails.
    pub fn save(&mut self, cache: &EvalCache) -> Result<(), CheckpointError> {
        let current = cache.export_lines();
        let fresh: Vec<String> = current
            .iter()
            .filter(|l| !self.known.contains(*l))
            .cloned()
            .collect(); // already sorted: export_lines sorts
        let mut next: Vec<String> = Vec::with_capacity(fresh.len() + self.order.len());
        next.extend(fresh);
        next.extend(self.order.iter().cloned());
        next.truncate(self.cap);
        let mut ck = Checkpoint::new(KIND);
        ck.set_meta("em", &format!("{:016x}", cache.model_fingerprint()));
        ck.set_meta("cap", &self.cap.to_string());
        ck.push_section("cache", next.clone());
        ck.save(&self.path)?;
        self.known = next.iter().cloned().collect();
        self.order = next;
        self.saves += 1;
        obs::add("serve.diskcache.saves", 1);
        obs::record("serve.diskcache.entries", pucost::util::u64_of(self.order.len()));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pucost::{Dataflow, EnergyModel, LayerDesc, PuConfig};

    fn layer(k: usize) -> LayerDesc {
        LayerDesc {
            in_c: 8 * k,
            in_h: 14,
            in_w: 14,
            out_c: 16 * k,
            out_h: 14,
            out_w: 14,
            kernel: 3,
            stride: 1,
            groups: 1,
            is_fc: false,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("serve-diskcache-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn snapshot_round_trip_warms_a_fresh_cache() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let em = EnergyModel::tsmc28();
        let cache = EvalCache::new(em);
        for k in 1..=3 {
            cache.evaluate(&layer(k), &PuConfig::new(16, 16), Dataflow::WeightStationary);
        }
        let mut disk = DiskCache::new(&path, 1024);
        assert_eq!(disk.load(&cache).expect("no snapshot yet"), 0);
        disk.save(&cache).expect("save");
        assert_eq!(disk.saves(), 1);

        let fresh = EvalCache::new(em);
        let mut disk2 = DiskCache::new(&path, 1024);
        assert_eq!(disk2.load(&fresh).expect("load"), 3);
        assert_eq!(disk2.loaded_entries(), 3);
        // Warm tier: every repeat is a warm hit, zero misses.
        for k in 1..=3 {
            fresh.evaluate(&layer(k), &PuConfig::new(16, 16), Dataflow::WeightStationary);
        }
        assert_eq!((fresh.warm_hits(), fresh.misses()), (3, 0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_is_typed_not_mixed() {
        let path = tmp("fingerprint");
        let _ = std::fs::remove_file(&path);
        let cache = EvalCache::new(EnergyModel::tsmc28());
        cache.evaluate(&layer(1), &PuConfig::new(8, 8), Dataflow::OutputStationary);
        let mut disk = DiskCache::new(&path, 16);
        disk.save(&cache).expect("save");

        let mut other_model = EnergyModel::tsmc28();
        other_model.mac_pj *= 2.0;
        let other = EvalCache::new(other_model);
        let mut disk2 = DiskCache::new(&path, 16);
        let err = disk2.load(&other).expect_err("must reject");
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err:?}");
        assert!(other.is_empty(), "nothing imported on mismatch");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cap_drops_oldest_generation_first() {
        let path = tmp("cap");
        let _ = std::fs::remove_file(&path);
        let em = EnergyModel::tsmc28();
        let cache = EvalCache::new(em);
        cache.evaluate(&layer(1), &PuConfig::new(16, 16), Dataflow::WeightStationary);
        cache.evaluate(&layer(2), &PuConfig::new(16, 16), Dataflow::WeightStationary);
        let mut disk = DiskCache::new(&path, 3);
        disk.save(&cache).expect("save 1");
        // Two newer entries arrive; cap 3 keeps both plus one survivor
        // of the first generation (fresh entries rank newest).
        cache.evaluate(&layer(3), &PuConfig::new(16, 16), Dataflow::WeightStationary);
        cache.evaluate(&layer(4), &PuConfig::new(16, 16), Dataflow::WeightStationary);
        disk.save(&cache).expect("save 2");

        let fresh = EvalCache::new(em);
        let mut disk2 = DiskCache::new(&path, 3);
        assert_eq!(disk2.load(&fresh).expect("load"), 3, "cap enforced");
        // The two fresh entries of generation 2 must have survived.
        fresh.evaluate(&layer(3), &PuConfig::new(16, 16), Dataflow::WeightStationary);
        fresh.evaluate(&layer(4), &PuConfig::new(16, 16), Dataflow::WeightStationary);
        assert_eq!(fresh.misses(), 0, "newest generation retained");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_write_leaves_previous_snapshot_intact() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let _guard = faultsim::exclusive();
        let em = EnergyModel::tsmc28();
        let cache = EvalCache::new(em);
        cache.evaluate(&layer(1), &PuConfig::new(16, 16), Dataflow::WeightStationary);
        let mut disk = DiskCache::new(&path, 16);
        disk.save(&cache).expect("clean save");

        cache.evaluate(&layer(2), &PuConfig::new(16, 16), Dataflow::WeightStationary);
        faultsim::arm("ckpt.torn@1").expect("plan parses");
        // The torn write produces a half-written file at `path` (the
        // fault point bypasses the tmp+rename dance on purpose).
        let _ = disk.save(&cache);
        faultsim::disarm();
        let fresh = EvalCache::new(em);
        let mut disk2 = DiskCache::new(&path, 16);
        match disk2.load(&fresh) {
            // Torn file detected: typed corruption, nothing imported.
            Err(CheckpointError::Corrupt { .. }) => assert!(fresh.is_empty()),
            Err(e) => panic!("unexpected error: {e:?}"),
            // Or the tear landed after the footer: full snapshot loads.
            Ok(n) => assert!(n >= 1),
        }
        let _ = std::fs::remove_file(&path);
    }
}
