//! The `spa-fleet` router: consistent-hash request fan-out over N
//! `spa-serve` shards speaking the JSONL v1 protocol.
//!
//! One [`ShardLink`] per shard is shared by every client session. A
//! link owns the upstream unix-socket connection, a reader thread, and
//! a pending table keyed by router-minted upstream ids; sessions rewrite
//! the client's `id` to an upstream id before forwarding and the reader
//! rewrites it back (adding a `"shard":N` field) when responses arrive.
//!
//! Failure handling is built on the idempotence of the work verbs:
//! every routable request is a deterministic function of its fields, so
//! re-sending after a shard crash recomputes (or resumes — codesigns
//! checkpoint server-side under a key derived from the same fields) the
//! identical result. The rules:
//!
//! * A dropped connection marks every pending request unsent; the
//!   reader re-sends the full pending table on reconnect.
//! * A `partial` with reason `cancelled` that the *client* did not
//!   cancel is a shard-shutdown artifact, not a terminal: the request
//!   stays pending and is re-sent to the restarted shard.
//! * Shard-origin `overloaded` / `shutting-down` errors are treated the
//!   same way — the router retries instead of surfacing them.
//! * Everything else is forwarded verbatim (id rewritten) exactly once.
//!
//! Admission is a fleet-global [`ShedPolicy`]: beyond the soft cap only
//! priority > 0 work is forwarded, beyond the hard cap nothing is, and
//! shed requests get a typed `overloaded` error — backpressure, never a
//! hang. Router-local verbs (`status`, `metrics`, `flush`, `shutdown`)
//! are answered inline; `cancel` is forwarded to the shard that owns
//! the target.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, ErrorKind, Write as _};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::json::{obj, parse, Json};
use crate::proto::{self, done_line, error_line, partial_line, Request, PROTOCOL_VERSION};
use crate::queue::{ShedDecision, ShedPolicy};
use crate::ring::{route_key, Ring};

/// How long a reader sleeps between reconnect attempts to a down shard.
const RECONNECT_BACKOFF: Duration = Duration::from_millis(20);

/// Reader-side read timeout: bounds how long a stop request waits.
const READ_TICK: Duration = Duration::from_millis(100);

/// Poisoned-lock recovery, same policy as `server.rs`: the guarded
/// state is counters and tables that stay coherent under panic.
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Router construction parameters.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Shard socket paths, index = shard id on the ring.
    pub sockets: Vec<PathBuf>,
    /// Virtual nodes per shard on the ring.
    pub vnodes: usize,
    /// Soft shed watermark (`FLEET_MAX_INFLIGHT`); hard cap is 2×.
    pub soft_cap: usize,
}

/// Liveness and restart info for one shard process, maintained by the
/// fleet supervisor and reported in the router's `status` response.
#[derive(Debug, Clone, Default)]
pub struct ProcInfo {
    /// Current child pid (0 while down).
    pub pid: u64,
    /// How many times the supervisor respawned this shard.
    pub restarts: u64,
}

#[derive(Default)]
struct Counters {
    received: AtomicU64,
    forwarded: AtomicU64,
    retried: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    shed_soft: AtomicU64,
    shed_hard: AtomicU64,
    reconnects: AtomicU64,
}

/// Per-session state shared between the session handle and the shard
/// readers that resolve its requests.
struct SessionShared {
    tx: Sender<String>,
    outstanding: AtomicUsize,
    /// Live client id → (shard, upstream id) for cancel routing.
    routes: Mutex<BTreeMap<u64, (usize, u64)>>,
}

/// One forwarded-and-unresolved request.
struct Pending {
    /// The rewritten wire line (upstream id), ready to (re-)send.
    line: String,
    /// Whether the line is on the wire for the current connection.
    sent: bool,
    /// The client asked to cancel this — `partial:"cancelled"` is then a
    /// real terminal, not a restart artifact.
    client_cancelled: bool,
    /// The client-chosen id to restore on responses.
    orig_id: u64,
    session: Arc<SessionShared>,
}

struct LinkState {
    /// Writer half of the upstream connection (None while down).
    stream: Option<UnixStream>,
    pending: BTreeMap<u64, Pending>,
}

struct ShardLink {
    idx: usize,
    sock: PathBuf,
    state: Mutex<LinkState>,
    up: AtomicBool,
}

/// The fleet router. Create with [`Router::start`], mint per-client
/// [`FleetSession`]s with [`Router::session`].
pub struct Router {
    ring: Ring,
    links: Vec<Arc<ShardLink>>,
    shed: ShedPolicy,
    inflight: AtomicUsize,
    shutting_down: AtomicBool,
    stop: Arc<AtomicBool>,
    upstream_seq: AtomicU64,
    trace_seq: AtomicU64,
    c: Counters,
    started: Instant,
    procs: Mutex<Vec<ProcInfo>>,
    readers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Router {
    /// Starts the router: one reader thread per shard, connecting (and
    /// reconnecting, forever, with backoff) to the shard sockets.
    pub fn start(cfg: RouterConfig) -> Arc<Router> {
        let shards = cfg.sockets.len().max(1);
        let links: Vec<Arc<ShardLink>> = cfg
            .sockets
            .iter()
            .enumerate()
            .map(|(idx, sock)| {
                Arc::new(ShardLink {
                    idx,
                    sock: sock.clone(),
                    state: Mutex::new(LinkState {
                        stream: None,
                        pending: BTreeMap::new(),
                    }),
                    up: AtomicBool::new(false),
                })
            })
            .collect();
        let router = Arc::new(Router {
            ring: Ring::new(shards, cfg.vnodes),
            links,
            shed: ShedPolicy::new(cfg.soft_cap),
            inflight: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            stop: Arc::new(AtomicBool::new(false)),
            upstream_seq: AtomicU64::new(0),
            trace_seq: AtomicU64::new(0),
            c: Counters::default(),
            started: Instant::now(),
            procs: Mutex::new(vec![ProcInfo::default(); shards]),
            readers: Mutex::new(Vec::new()),
        });
        let mut readers = Vec::new();
        for link in &router.links {
            let link = Arc::clone(link);
            let r = Arc::clone(&router);
            // Supervisory thread, not request-scoped: responses from
            // every request interleave on one upstream connection, so
            // there is no single trace to adopt; forwarded lines carry
            // the shard-minted trace instead.
            // lint: allow(untraced-spawn)
            let h = std::thread::Builder::new()
                .name(format!("fleet-link-{}", link.idx))
                .spawn(move || reader_loop(&r, &link))
                .ok();
            if let Some(h) = h {
                readers.push(h);
            }
        }
        *lock(&router.readers) = readers;
        router
    }

    /// True once [`Router::shutdown`] ran.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.links.len()
    }

    /// Whether the link to shard `i` currently holds a live connection.
    pub fn shard_up(&self, i: usize) -> bool {
        self.links.get(i).is_some_and(|l| l.up.load(Ordering::SeqCst))
    }

    /// Requests accepted and not yet resolved, fleet-wide.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Updates the supervisor-owned process info reported by `status`.
    pub fn set_proc_info(&self, i: usize, info: ProcInfo) {
        let mut procs = lock(&self.procs);
        if let Some(slot) = procs.get_mut(i) {
            *slot = info;
        }
    }

    /// Mints a session: the handle a client connection submits through.
    pub fn session(self: &Arc<Router>) -> FleetSession {
        let (tx, rx) = channel();
        FleetSession {
            router: Arc::clone(self),
            shared: Arc::new(SessionShared {
                tx,
                outstanding: AtomicUsize::new(0),
                routes: Mutex::new(BTreeMap::new()),
            }),
            rx,
        }
    }

    /// Re-sends any pending line that is not on the wire (after a write
    /// error, an injected forward fault, or a retryable shard answer).
    /// Called periodically by the fleet supervisor's probe loop.
    pub fn housekeep(&self) {
        for link in &self.links {
            if link.up.load(Ordering::SeqCst) {
                let mut st = lock(&link.state);
                send_unsent(&mut st, &self.c);
            }
        }
    }

    /// Graceful fleet shutdown: drain every pending request as a typed
    /// `partial` (reason `cancelled`), then ask each shard to shut down
    /// (which checkpoints in-flight searches and flushes caches).
    pub fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        for link in &self.links {
            let drained: Vec<Pending> = {
                let mut st = lock(&link.state);
                let table = std::mem::take(&mut st.pending);
                table.into_values().collect()
            };
            for p in drained {
                p.session.outstanding.fetch_sub(1, Ordering::SeqCst);
                self.inflight.fetch_sub(1, Ordering::SeqCst);
                lock(&p.session.routes).remove(&p.orig_id);
                let _ = p
                    .session
                    .tx
                    .send(partial_line(p.orig_id, "cancelled", 0, 0, None, 0));
            }
            let uid = self.upstream_seq.fetch_add(1, Ordering::Relaxed) + 1;
            let line = format!("{{\"v\":1,\"id\":{uid},\"req\":\"shutdown\"}}");
            let mut st = lock(&link.state);
            write_line(&mut st, &line);
        }
    }

    /// Stops the reader threads and waits for them. Call after
    /// [`Router::shutdown`] once the shard processes have exited.
    pub fn join(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let handles = {
            let mut held = lock(&self.readers);
            std::mem::take(&mut *held)
        };
        for h in handles {
            let _ = h.join();
        }
    }

    /// Fire-and-forget broadcast of a `flush` line to every shard (no
    /// pending entry: the shard's answer is dropped by the reader).
    pub fn broadcast_flush(&self) -> usize {
        let mut sent = 0;
        for link in &self.links {
            let uid = self.upstream_seq.fetch_add(1, Ordering::Relaxed) + 1;
            let line = format!("{{\"v\":1,\"id\":{uid},\"req\":\"flush\"}}");
            let mut st = lock(&link.state);
            if write_line(&mut st, &line) {
                sent += 1;
            }
        }
        sent
    }

    /// The fleet `status` payload.
    fn status_json(&self) -> Json {
        let procs = lock(&self.procs).clone();
        let shards: Vec<Json> = self
            .links
            .iter()
            .map(|link| {
                let st = lock(&link.state);
                let info = procs.get(link.idx).cloned().unwrap_or_default();
                obj(vec![
                    ("idx", Json::from(link.idx)),
                    ("up", Json::from(link.up.load(Ordering::SeqCst))),
                    ("pending", Json::from(st.pending.len())),
                    ("pid", Json::from(info.pid)),
                    ("restarts", Json::from(info.restarts)),
                ])
            })
            .collect();
        obj(vec![
            ("protocol", Json::from(PROTOCOL_VERSION)),
            ("fleet", Json::from(true)),
            (
                "uptime_ms",
                Json::from(pucost::util::trunc_u64(
                    self.started.elapsed().as_secs_f64() * 1e3,
                )),
            ),
            ("inflight", Json::from(self.inflight())),
            (
                "ring",
                obj(vec![
                    ("shards", Json::from(self.ring.shards())),
                    ("vnodes", Json::from(self.ring.vnodes())),
                ]),
            ),
            (
                "shed",
                obj(vec![
                    ("soft", Json::from(self.shed.soft)),
                    ("hard", Json::from(self.shed.hard)),
                    ("soft_shed", Json::from(self.c.shed_soft.load(Ordering::Relaxed))),
                    ("hard_shed", Json::from(self.c.shed_hard.load(Ordering::Relaxed))),
                ]),
            ),
            (
                "counters",
                obj(vec![
                    ("received", Json::from(self.c.received.load(Ordering::Relaxed))),
                    ("forwarded", Json::from(self.c.forwarded.load(Ordering::Relaxed))),
                    ("retried", Json::from(self.c.retried.load(Ordering::Relaxed))),
                    ("completed", Json::from(self.c.completed.load(Ordering::Relaxed))),
                    ("errors", Json::from(self.c.errors.load(Ordering::Relaxed))),
                    (
                        "reconnects",
                        Json::from(self.c.reconnects.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            ("shards", Json::Arr(shards)),
        ])
    }
}

/// Writes one line to the link's current stream; on failure the stream
/// is dropped (the reader will reconnect and re-send pending lines).
/// Uses `writeln!` — a short formatted write on an OS-buffered unix
/// socket — so no flagged blocking call runs while the lock is held.
fn write_line(st: &mut LinkState, line: &str) -> bool {
    let Some(stream) = st.stream.as_mut() else {
        return false;
    };
    if writeln!(stream, "{line}").is_err() {
        st.stream = None;
        for p in st.pending.values_mut() {
            p.sent = false;
        }
        return false;
    }
    true
}

/// Sends every pending line not currently on the wire.
fn send_unsent(st: &mut LinkState, c: &Counters) {
    let unsent: Vec<u64> = st
        .pending
        .iter()
        .filter(|(_, p)| !p.sent)
        .map(|(uid, _)| *uid)
        .collect();
    for uid in unsent {
        let Some(p) = st.pending.get(&uid) else { continue };
        let line = p.line.clone();
        if write_line(st, &line) {
            if let Some(p) = st.pending.get_mut(&uid) {
                p.sent = true;
            }
            c.forwarded.fetch_add(1, Ordering::Relaxed);
            obs::add("fleet.forwarded", 1);
        } else {
            break;
        }
    }
}

/// Per-shard reader: connect, replay the pending table, pump response
/// lines, and on any disconnect mark everything unsent and retry.
fn reader_loop(router: &Router, link: &ShardLink) {
    while !router.stop.load(Ordering::SeqCst) {
        let stream = match UnixStream::connect(&link.sock) {
            Ok(s) => s,
            Err(_) => {
                std::thread::sleep(RECONNECT_BACKOFF);
                continue;
            }
        };
        let _ = stream.set_read_timeout(Some(READ_TICK));
        let writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => continue,
        };
        {
            let mut st = lock(&link.state);
            st.stream = Some(writer);
            for p in st.pending.values_mut() {
                p.sent = false;
            }
            send_unsent(&mut st, &router.c);
        }
        link.up.store(true, Ordering::SeqCst);
        router.c.reconnects.fetch_add(1, Ordering::Relaxed);
        obs::add("fleet.reconnect", 1);
        let mut reader = BufReader::new(stream);
        let mut buf = String::new();
        loop {
            if router.stop.load(Ordering::SeqCst) {
                break;
            }
            buf.clear();
            match reader.read_line(&mut buf) {
                Ok(0) => break,
                Ok(_) => handle_shard_line(router, link, buf.trim()),
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(_) => break,
            }
        }
        link.up.store(false, Ordering::SeqCst);
        let mut st = lock(&link.state);
        st.stream = None;
        for p in st.pending.values_mut() {
            p.sent = false;
        }
    }
}

/// Routes one response line from a shard back to the owning session.
fn handle_shard_line(router: &Router, link: &ShardLink, line: &str) {
    if line.is_empty() {
        return;
    }
    let Ok(v) = parse(line) else {
        // A shard never emits malformed JSON; drop rather than guess.
        return;
    };
    let Some(uid) = v.get("id").and_then(Json::as_u64) else {
        return;
    };
    let kind = v.get("kind").and_then(Json::as_str).unwrap_or("");
    let terminal = matches!(kind, "done" | "partial" | "error");
    enum Action {
        Drop,
        Forward { out: String, session: Arc<SessionShared>, orig_id: u64, terminal: bool },
    }
    let action = {
        let mut st = lock(&link.state);
        let Some(p) = st.pending.get_mut(&uid) else {
            // No pending entry: a fire-and-forget broadcast answer.
            return;
        };
        let reason = v.get("reason").and_then(Json::as_str).unwrap_or("");
        let code = v.get("code").and_then(Json::as_str).unwrap_or("");
        let restart_artifact =
            kind == "partial" && reason == "cancelled" && !p.client_cancelled;
        let retryable_error = kind == "error" && matches!(code, "shutting-down" | "overloaded");
        if terminal && (restart_artifact || retryable_error) {
            // Not a real answer: the shard is going away (graceful
            // drain) or pushing back. Keep the request pending; the
            // restarted shard recomputes or resumes it.
            p.sent = false;
            router.c.retried.fetch_add(1, Ordering::Relaxed);
            obs::add("fleet.retried", 1);
            Action::Drop
        } else {
            let out = rewrite_response(&v, p.orig_id, link.idx);
            let session = Arc::clone(&p.session);
            let orig_id = p.orig_id;
            if terminal {
                st.pending.remove(&uid);
            }
            Action::Forward {
                out,
                session,
                orig_id,
                terminal,
            }
        }
    };
    if let Action::Forward {
        out,
        session,
        orig_id,
        terminal,
    } = action
    {
        if terminal {
            lock(&session.routes).remove(&orig_id);
            session.outstanding.fetch_sub(1, Ordering::SeqCst);
            router.inflight.fetch_sub(1, Ordering::SeqCst);
            if kind == "error" {
                router.c.errors.fetch_add(1, Ordering::Relaxed);
            } else {
                router.c.completed.fetch_add(1, Ordering::Relaxed);
            }
        }
        let _ = session.tx.send(out);
    }
}

/// Rewrites a shard response for the client: restores the original id
/// and tags the answering shard.
fn rewrite_response(v: &Json, orig_id: u64, shard: usize) -> String {
    let mut m = v.as_obj().cloned().unwrap_or_default();
    m.insert("id".to_string(), Json::from(orig_id));
    m.insert("shard".to_string(), Json::from(shard));
    Json::Obj(m).render()
}

/// One client connection's handle onto the router, mirroring
/// [`crate::Client`]: submit raw lines, receive raw response lines.
pub struct FleetSession {
    router: Arc<Router>,
    shared: Arc<SessionShared>,
    rx: Receiver<String>,
}

impl FleetSession {
    /// Submits one raw request line; every outcome comes back as a
    /// response line (typed errors included).
    pub fn submit(&self, line: &str) {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        self.router.c.received.fetch_add(1, Ordering::Relaxed);
        obs::add("fleet.requests", 1);
        let trace = self.router.trace_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let env = match proto::parse_request(line) {
            Ok(env) => env,
            Err(e) => {
                self.router.c.errors.fetch_add(1, Ordering::Relaxed);
                let _ = self
                    .shared
                    .tx
                    .send(error_line(e.id, e.code, &e.message, trace));
                return;
            }
        };
        if self.router.is_shutting_down() {
            self.router.c.errors.fetch_add(1, Ordering::Relaxed);
            let _ = self.shared.tx.send(error_line(
                Some(env.id),
                "shutting-down",
                "fleet is shutting down",
                trace,
            ));
            return;
        }
        match env.request {
            Request::Status => {
                let _ = self
                    .shared
                    .tx
                    .send(done_line(env.id, self.router.status_json(), trace));
                self.router.c.completed.fetch_add(1, Ordering::Relaxed);
            }
            Request::Metrics { .. } => {
                // Router-level metrics; shard telemetry is one `metrics`
                // rpc away on the shard's own socket.
                let _ = self
                    .shared
                    .tx
                    .send(done_line(env.id, self.router.status_json(), trace));
                self.router.c.completed.fetch_add(1, Ordering::Relaxed);
            }
            Request::Flush => {
                let sent = self.router.broadcast_flush();
                let _ = self.shared.tx.send(done_line(
                    env.id,
                    obj(vec![("requested", Json::from(sent))]),
                    trace,
                ));
                self.router.c.completed.fetch_add(1, Ordering::Relaxed);
            }
            Request::Shutdown => {
                self.router.shutdown();
                let _ = self.shared.tx.send(done_line(
                    env.id,
                    obj(vec![("stopping", Json::from(true))]),
                    trace,
                ));
                self.router.c.completed.fetch_add(1, Ordering::Relaxed);
            }
            Request::Cancel { target } => self.forward_cancel(env.id, target, trace),
            ref work => {
                let Some(key) = route_key(work) else {
                    // Unreachable: all remaining verbs are routable.
                    let _ = self.shared.tx.send(error_line(
                        Some(env.id),
                        "bad-request",
                        "verb is not routable",
                        trace,
                    ));
                    return;
                };
                match self
                    .router
                    .shed
                    .decide(env.priority, self.router.inflight())
                {
                    ShedDecision::Admit => {}
                    verdict => {
                        let (counter, name): (&AtomicU64, &str) = match verdict {
                            ShedDecision::ShedSoft => (&self.router.c.shed_soft, "soft"),
                            _ => (&self.router.c.shed_hard, "hard"),
                        };
                        counter.fetch_add(1, Ordering::Relaxed);
                        self.router.c.errors.fetch_add(1, Ordering::Relaxed);
                        obs::add("fleet.shed", 1);
                        let _ = self.shared.tx.send(error_line(
                            Some(env.id),
                            "overloaded",
                            &format!("fleet over {name} capacity; retry later"),
                            trace,
                        ));
                        return;
                    }
                }
                let shard = self.router.ring.assign(&key);
                self.forward(env.id, shard, line);
            }
        }
    }

    /// Forwards `cancel` to the shard running the target request.
    fn forward_cancel(&self, id: u64, target: u64, trace: u64) {
        let route = {
            let held = lock(&self.shared.routes);
            held.get(&target).copied()
        };
        let Some((shard, target_uid)) = route else {
            // Unknown or already resolved: answer like the shards do.
            let _ = self.shared.tx.send(done_line(
                id,
                obj(vec![("cancelled", Json::from(false))]),
                trace,
            ));
            self.router.c.completed.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if let Some(link) = self.router.links.get(shard) {
            let mut st = lock(&link.state);
            if let Some(p) = st.pending.get_mut(&target_uid) {
                p.client_cancelled = true;
            }
        }
        let line =
            format!("{{\"v\":1,\"id\":{id},\"req\":\"cancel\",\"target\":{target_uid}}}");
        self.forward(id, shard, &line);
    }

    /// Rewrites the id and hands the line to the shard link. When the
    /// link is down (or a `fleet.forward` fault is armed) the line
    /// stays pending unsent; reconnect or housekeeping delivers it.
    fn forward(&self, orig_id: u64, shard: usize, line: &str) {
        let Some(link) = self.router.links.get(shard) else {
            return;
        };
        let uid = self.router.upstream_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let out = rewrite_id(line, uid);
        lock(&self.shared.routes).insert(orig_id, (shard, uid));
        self.shared.outstanding.fetch_add(1, Ordering::SeqCst);
        self.router.inflight.fetch_add(1, Ordering::SeqCst);
        let drop_send = faultsim::armed() && faultsim::hit("fleet.forward");
        let mut st = lock(&link.state);
        st.pending.insert(
            uid,
            Pending {
                line: out.clone(),
                sent: false,
                client_cancelled: false,
                orig_id,
                session: Arc::clone(&self.shared),
            },
        );
        if !drop_send && write_line(&mut st, &out) {
            if let Some(p) = st.pending.get_mut(&uid) {
                p.sent = true;
            }
            self.router.c.forwarded.fetch_add(1, Ordering::Relaxed);
            obs::add("fleet.forwarded", 1);
        }
    }

    /// Requests submitted on this session and not yet resolved.
    pub fn outstanding(&self) -> usize {
        self.shared.outstanding.load(Ordering::SeqCst)
    }

    /// True once the fleet router started shutting down.
    pub fn is_shutting_down(&self) -> bool {
        self.router.is_shutting_down()
    }

    /// Blocks up to `timeout` for the next response line.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<String> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Drains every response line ready right now.
    pub fn drain_ready(&self) -> Vec<String> {
        let mut out = Vec::new();
        while let Ok(line) = self.rx.try_recv() {
            out.push(line);
        }
        out
    }
}

/// Replaces the `id` field of a request line (already validated JSON).
fn rewrite_id(line: &str, new_id: u64) -> String {
    match parse(line) {
        Ok(Json::Obj(mut m)) => {
            m.insert("id".to_string(), Json::from(new_id));
            Json::Obj(m).render()
        }
        // Unreachable: callers only pass parsed-valid object lines.
        _ => line.to_string(),
    }
}
