//! Admission-controlled priority queue for the serving layer.
//!
//! Jobs are ordered by `(priority desc, arrival seq asc)`: a higher
//! priority always runs first, and within one priority the queue is
//! FIFO — arrival order is a total tiebreak, so scheduling order is a
//! deterministic function of the submitted sequence. Admission is
//! bounded (`SERVE_MAX_INFLIGHT`): once `queued + running` reaches the
//! limit, submissions are rejected typed (`overloaded`) instead of
//! growing without bound.
//!
//! The queue itself is single-lock and tiny; batching policy lives in
//! the scheduler (`server.rs`), which drains *runs of compatible
//! `eval_pu` jobs* from the front so they share one `DsePool::par_map`.

use std::collections::BinaryHeap;

/// One queued unit of work, as the scheduler sees it.
#[derive(Debug)]
pub struct Queued<J> {
    /// Scheduling priority (higher first).
    pub priority: i64,
    /// Admission sequence number (FIFO tiebreak, unique).
    pub seq: u64,
    /// The job payload.
    pub job: J,
}

impl<J> PartialEq for Queued<J> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl<J> Eq for Queued<J> {}

impl<J> Ord for Queued<J> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority wins; earlier seq wins inside one
        // priority (seq compared reversed).
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<J> PartialOrd for Queued<J> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Why [`Admission::push`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// `queued + running` reached the inflight cap.
    Overloaded,
    /// The server is shutting down; no new work is admitted.
    ShuttingDown,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Overloaded => write!(f, "inflight limit reached"),
            AdmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

/// The admission-controlled queue. Callers hold it behind one mutex.
#[derive(Debug)]
pub struct Admission<J> {
    heap: BinaryHeap<Queued<J>>,
    seq: u64,
    running: usize,
    max_inflight: usize,
    closed: bool,
    high_water: usize,
}

impl<J> Admission<J> {
    /// An empty queue admitting at most `max_inflight` jobs (clamped ≥ 1)
    /// across the queued and running states combined.
    pub fn new(max_inflight: usize) -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            running: 0,
            max_inflight: max_inflight.max(1),
            closed: false,
            high_water: 0,
        }
    }

    /// Queued (not yet running) jobs.
    pub fn depth(&self) -> usize {
        self.heap.len()
    }

    /// Largest queue depth ever observed (after a push) — how close the
    /// service has come to its admission cap over its lifetime.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Jobs currently executing.
    pub fn running(&self) -> usize {
        self.running
    }

    /// The admission cap.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// `true` once [`Admission::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Stops admitting new jobs (graceful shutdown). Already-queued jobs
    /// can still be drained by the scheduler.
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// Admits `job`, returning its sequence number.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Overloaded`] at the inflight cap,
    /// [`AdmitError::ShuttingDown`] after [`Admission::close`].
    pub fn push(&mut self, priority: i64, job: J) -> Result<u64, AdmitError> {
        if self.closed {
            return Err(AdmitError::ShuttingDown);
        }
        if self.heap.len() + self.running >= self.max_inflight {
            return Err(AdmitError::Overloaded);
        }
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Queued { priority, seq, job });
        self.high_water = self.high_water.max(self.heap.len());
        obs::record("serve.queue.depth", pucost::util::u64_of(self.heap.len()));
        Ok(seq)
    }

    /// Removes and returns the highest-priority job, marking it running.
    /// The scheduler must pair every `pop` with [`Admission::finish`].
    pub fn pop(&mut self) -> Option<Queued<J>> {
        let q = self.heap.pop()?;
        self.running += 1;
        Some(q)
    }

    /// Peeks at the next job without dequeuing it.
    pub fn peek(&self) -> Option<&Queued<J>> {
        self.heap.peek()
    }

    /// Pops the next job only if `pred` accepts it — how the scheduler
    /// drains a run of batch-compatible jobs from the front.
    pub fn pop_if(&mut self, pred: impl Fn(&Queued<J>) -> bool) -> Option<Queued<J>> {
        if self.heap.peek().is_some_and(|q| pred(q)) {
            self.pop()
        } else {
            None
        }
    }

    /// Marks one previously popped job finished.
    pub fn finish(&mut self) {
        self.running = self.running.saturating_sub(1);
    }

    /// Drains every queued job (shutdown: they are answered `partial`
    /// with reason `cancelled` without running).
    pub fn drain(&mut self) -> Vec<Queued<J>> {
        let mut out: Vec<Queued<J>> = std::mem::take(&mut self.heap).into_vec();
        // BinaryHeap::into_vec is heap order, not sorted; restore the
        // scheduling order so drained responses are deterministic.
        out.sort_by(|a, b| b.cmp(a));
        out
    }
}

/// Priority-aware load-shedding policy for the fleet router.
///
/// Two watermarks over the router's global in-flight count: between the
/// soft and hard caps only background work (priority ≤ 0) is shed, so
/// interactive requests keep flowing through a congested fleet; at the
/// hard cap (2× soft) everything is shed. Shedding is typed
/// (`overloaded`) — the client sees backpressure, never a hang.
#[derive(Debug, Clone, Copy)]
pub struct ShedPolicy {
    /// In-flight count at which priority ≤ 0 work is shed.
    pub soft: usize,
    /// In-flight count at which all work is shed.
    pub hard: usize,
}

/// The policy's verdict for one admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedDecision {
    /// Forward to a shard.
    Admit,
    /// Shed: between the watermarks and the request is background work.
    ShedSoft,
    /// Shed: the fleet is at the hard cap.
    ShedHard,
}

impl ShedPolicy {
    /// A policy with the given soft cap; the hard cap is 2× (min 1/2).
    pub fn new(soft: usize) -> ShedPolicy {
        let soft = soft.max(1);
        ShedPolicy {
            soft,
            hard: soft.saturating_mul(2),
        }
    }

    /// Decides admission for a request of `priority` with `inflight`
    /// requests already accepted and unresolved.
    pub fn decide(&self, priority: i64, inflight: usize) -> ShedDecision {
        if inflight >= self.hard {
            ShedDecision::ShedHard
        } else if inflight >= self.soft && priority <= 0 {
            ShedDecision::ShedSoft
        } else {
            ShedDecision::Admit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_then_fifo_order() {
        let mut q: Admission<&str> = Admission::new(16);
        q.push(0, "a").expect("admit");
        q.push(5, "b").expect("admit");
        q.push(0, "c").expect("admit");
        q.push(5, "d").expect("admit");
        q.push(-1, "e").expect("admit");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|j| j.job)).collect();
        assert_eq!(order, ["b", "d", "a", "c", "e"]);
    }

    #[test]
    fn admission_counts_running_jobs() {
        let mut q: Admission<u32> = Admission::new(2);
        q.push(0, 1).expect("admit");
        q.push(0, 2).expect("admit");
        assert_eq!(q.push(0, 3), Err(AdmitError::Overloaded));
        let _job = q.pop().expect("pop");
        assert_eq!((q.depth(), q.running()), (1, 1));
        // Still at the cap: 1 queued + 1 running.
        assert_eq!(q.push(0, 3), Err(AdmitError::Overloaded));
        q.finish();
        q.push(0, 3).expect("slot freed");
    }

    #[test]
    fn close_rejects_but_drains() {
        let mut q: Admission<u32> = Admission::new(8);
        q.push(1, 10).expect("admit");
        q.push(9, 11).expect("admit");
        q.close();
        assert_eq!(q.push(0, 12), Err(AdmitError::ShuttingDown));
        assert!(q.is_closed());
        let drained: Vec<u32> = q.drain().into_iter().map(|j| j.job).collect();
        assert_eq!(drained, [11, 10], "drain preserves scheduling order");
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn high_water_tracks_peak_depth() {
        let mut q: Admission<u32> = Admission::new(8);
        assert_eq!(q.high_water(), 0);
        q.push(0, 1).expect("admit");
        q.push(0, 2).expect("admit");
        q.push(0, 3).expect("admit");
        assert_eq!(q.high_water(), 3);
        let _ = q.pop();
        let _ = q.pop();
        q.finish();
        q.finish();
        assert_eq!(q.depth(), 1);
        assert_eq!(q.high_water(), 3, "high water never recedes");
        q.push(0, 4).expect("admit");
        assert_eq!(q.high_water(), 3, "still below the peak");
    }

    #[test]
    fn shed_policy_watermarks() {
        let p = ShedPolicy::new(4);
        assert_eq!(p.hard, 8);
        // Below soft: everything admits.
        assert_eq!(p.decide(0, 3), ShedDecision::Admit);
        assert_eq!(p.decide(-5, 0), ShedDecision::Admit);
        // Between soft and hard: only positive priority admits.
        assert_eq!(p.decide(0, 4), ShedDecision::ShedSoft);
        assert_eq!(p.decide(-1, 7), ShedDecision::ShedSoft);
        assert_eq!(p.decide(1, 4), ShedDecision::Admit);
        assert_eq!(p.decide(3, 7), ShedDecision::Admit);
        // At or past hard: nothing admits.
        assert_eq!(p.decide(9, 8), ShedDecision::ShedHard);
        assert_eq!(p.decide(0, 100), ShedDecision::ShedHard);
        // Degenerate soft cap clamps to 1.
        let tiny = ShedPolicy::new(0);
        assert_eq!((tiny.soft, tiny.hard), (1, 2));
        assert_eq!(tiny.decide(0, 0), ShedDecision::Admit);
        assert_eq!(tiny.decide(0, 1), ShedDecision::ShedSoft);
        assert_eq!(tiny.decide(5, 2), ShedDecision::ShedHard);
    }

    #[test]
    fn pop_if_gates_on_head() {
        let mut q: Admission<u32> = Admission::new(8);
        q.push(0, 2).expect("admit");
        q.push(1, 1).expect("admit");
        assert!(q.pop_if(|j| j.job == 2).is_none(), "head is 1");
        assert_eq!(q.pop_if(|j| j.job == 1).map(|j| j.job), Some(1));
        assert_eq!(q.pop_if(|j| j.job == 2).map(|j| j.job), Some(2));
        assert!(q.pop_if(|_| true).is_none(), "empty");
        q.finish();
        q.finish();
    }
}
