//! Deterministic consistent-hash ring for the `spa-fleet` router.
//!
//! Shard assignment must agree across processes and across runs — a
//! codesign resubmitted after a shard crash has to land on the shard
//! that owns its checkpoint file — so the ring hashes with FNV-1a
//! rather than anything seeded per-process. Each shard contributes
//! `vnodes` virtual points; a key is owned by the first point at or
//! after its hash (wrapping). Adding or removing one shard therefore
//! only moves the keys whose successor point changed: ~1/N of the
//! keyspace, verified by `serve/tests/ring_prop.rs`.

use crate::proto::{DataflowSel, Request};

/// Default virtual nodes per shard (`FLEET_VNODES`). More points mean
/// tighter balance at the cost of a larger (still tiny) sorted table.
pub const DEFAULT_VNODES: usize = 64;

/// 64-bit FNV-1a. Stable across processes, platforms, and runs — the
/// property `SipHash`-based hashers deliberately do not give.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer applied on top of FNV-1a. Raw FNV clusters the
/// near-identical strings the ring hashes (`shard-0/vnode-1` vs
/// `shard-0/vnode-2`, `key-41-x` vs `key-42-x`), skewing shard loads
/// up to ~2.8x ideal; the avalanche step brings the spread under ~1.2x
/// (measured over 10k keys, 2-8 shards).
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The position of an arbitrary byte string on the ring.
pub fn ring_hash(bytes: &[u8]) -> u64 {
    mix(fnv1a(bytes))
}

/// A consistent-hash ring over `shards` shards.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Sorted `(point_hash, shard)` table.
    points: Vec<(u64, usize)>,
    shards: usize,
    vnodes: usize,
}

impl Ring {
    /// Builds a ring; `shards` and `vnodes` are clamped to at least 1.
    pub fn new(shards: usize, vnodes: usize) -> Ring {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for s in 0..shards {
            for v in 0..vnodes {
                points.push((ring_hash(format!("shard-{s}/vnode-{v}").as_bytes()), s));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            shards,
            vnodes,
        }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The shard that owns `key`: the first ring point at or after the
    /// key's hash, wrapping past the top of the hash space.
    pub fn assign(&self, key: &str) -> usize {
        let h = ring_hash(key.as_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[idx % self.points.len()];
        shard
    }
}

/// The routing key for a request, or `None` for verbs the router
/// answers itself (status/metrics/flush/shutdown) or routes by target
/// (cancel). The key is a canonical function of every field that feeds
/// the result, so identical work — including a codesign resubmitted
/// after a shard crash — always lands on the same shard and finds its
/// warm cache entries and checkpoint file there.
pub fn route_key(request: &Request) -> Option<String> {
    match request {
        Request::EvalPu {
            layer,
            pu,
            dataflow,
        } => {
            let df = match dataflow {
                DataflowSel::Fixed(d) => format!("{d:?}"),
                DataflowSel::Best => "best".to_string(),
            };
            Some(format!(
                "eval:{}.{}.{}.{}.{}.{}.k{}.s{}.g{}.fc{}:{}x{}.a{}.w{}.f{}:{df}",
                layer.in_c,
                layer.in_h,
                layer.in_w,
                layer.out_c,
                layer.out_h,
                layer.out_w,
                layer.kernel,
                layer.stride,
                layer.groups,
                u8::from(layer.is_fc),
                pu.rows,
                pu.cols,
                pu.act_buf_bytes,
                pu.wgt_buf_bytes,
                pu.freq_mhz.to_bits(),
            ))
        }
        Request::Segment { model, budget } => Some(format!("segment:{model}:{budget}")),
        Request::Codesign {
            model,
            budget,
            method,
            hw_iters,
            seg_iters,
            seed,
        } => Some(format!(
            "codesign:{model}:{budget}:{method}:{hw_iters}:{seg_iters}:{seed}"
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn assignment_is_deterministic_and_in_range() {
        let ring = Ring::new(3, DEFAULT_VNODES);
        for i in 0..1000 {
            let key = format!("key-{i}");
            let s = ring.assign(&key);
            assert!(s < 3);
            assert_eq!(s, ring.assign(&key), "stable per key");
            assert_eq!(
                s,
                Ring::new(3, DEFAULT_VNODES).assign(&key),
                "stable across ring rebuilds"
            );
        }
    }

    #[test]
    fn single_shard_ring_owns_everything() {
        let ring = Ring::new(1, 8);
        for i in 0..100 {
            assert_eq!(ring.assign(&format!("k{i}")), 0);
        }
    }

    #[test]
    fn route_keys_separate_verbs_and_fields() {
        use crate::proto::parse_request;
        let eval = |freq: &str| {
            format!(
                "{{\"v\":1,\"id\":1,\"req\":\"eval_pu\",\"layer\":{{\"in_c\":3,\"in_h\":8,\"in_w\":8,\"out_c\":8,\"out_h\":8,\"out_w\":8,\"kernel\":3,\"stride\":1,\"groups\":1,\"is_fc\":false}},\"pu\":{{\"rows\":8,\"cols\":8,\"freq_mhz\":{freq}}},\"dataflow\":\"WS\"}}"
            )
        };
        let k1 = route_key(&parse_request(&eval("800")).expect("parses").request)
            .expect("routable");
        let k2 = route_key(&parse_request(&eval("900")).expect("parses").request)
            .expect("routable");
        assert_ne!(k1, k2, "freq feeds the key");
        let status = parse_request("{\"v\":1,\"id\":9,\"req\":\"status\"}").expect("parses");
        assert_eq!(route_key(&status.request), None, "status is router-local");
    }
}
