//! Condition-polling helpers for the integration suites.
//!
//! The socket tests used to wait on fixed sleeps and hardcoded receive
//! deadlines — the classic flake recipe on loaded CI hosts. These
//! helpers poll a condition with a short tick under one env-tunable
//! budget, `SERVE_TEST_TIMEOUT_MS` (default 30 000): slow machines turn
//! it up, fast suites never wait longer than the condition takes.

use std::time::{Duration, Instant};

/// Default overall budget when `SERVE_TEST_TIMEOUT_MS` is unset.
pub const DEFAULT_TIMEOUT_MS: u64 = 30_000;

/// Poll tick between condition checks.
const TICK: Duration = Duration::from_millis(5);

/// The test-suite wait budget: `SERVE_TEST_TIMEOUT_MS` or the default.
pub fn test_timeout() -> Duration {
    let ms = std::env::var("SERVE_TEST_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TIMEOUT_MS);
    Duration::from_millis(ms.max(1))
}

/// Polls `cond` every few ms until it returns true or the
/// [`test_timeout`] budget elapses. Returns whether it became true.
pub fn wait_until(mut cond: impl FnMut() -> bool) -> bool {
    wait_until_for(test_timeout(), &mut cond)
}

/// [`wait_until`] with an explicit budget.
pub fn wait_until_for(budget: Duration, cond: &mut dyn FnMut() -> bool) -> bool {
    let deadline = Instant::now() + budget;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::yield_now();
        std::thread::sleep(TICK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_until_observes_flips_and_timeouts() {
        let mut n = 0;
        assert!(wait_until_for(Duration::from_secs(5), &mut || {
            n += 1;
            n >= 3
        }));
        assert!(!wait_until_for(Duration::from_millis(20), &mut || false));
        assert!(wait_until(|| true), "immediate condition");
    }

    #[test]
    fn timeout_env_parses_with_default() {
        // Do not mutate the env (tests run threaded); just check the
        // default path yields a sane budget.
        assert!(test_timeout() >= Duration::from_millis(1));
    }
}
