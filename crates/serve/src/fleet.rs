//! The `spa-fleet` supervisor: shard processes, health probes, hot
//! restart, and warm-cache snapshot exchange.
//!
//! A [`Fleet`] owns N `spa-serve` child processes (one unix socket and
//! one cache directory each), a [`Router`] fanning requests across
//! them, and two maintenance threads:
//!
//! * the **probe** loop (`FLEET_PROBE_MS`): reaps dead shard children
//!   and respawns them in place (hot restart — the router's pending
//!   table re-sends in-flight work to the new process, which resumes
//!   codesigns from their server-side checkpoints), and runs router
//!   housekeeping (re-sending lines an injected fault or write error
//!   left off the wire);
//! * the **snapshot** loop (`FLEET_SNAPSHOT_MS`): asks every live shard
//!   to `flush` its warm cache, then merges the per-shard `evalcache`
//!   checkpoints into a fleet-wide union written back to every shard
//!   directory — so a restarted shard warms up with what the *whole
//!   fleet* has learned, not just its own last snapshot.
//!
//! Shard processes are found via `SPA_SERVE_BIN`, the cargo test env,
//! or as a sibling of the current executable (`spa-serve` or the
//! offline harness's `bin_spa_serve`).

use std::io::{BufRead, BufReader, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use crate::diskcache;
use crate::router::{FleetSession, ProcInfo, Router, RouterConfig};
use autoseg::dse::checkpoint::Checkpoint;

/// Signal numbers used for shard kills (Linux).
const SIGTERM: i32 = 15;
const SIGKILL: i32 = 9;

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

/// Same poisoned-lock recovery policy as the rest of the crate.
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Fleet construction parameters (env-derived in the binary).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of `spa-serve` shard processes (`FLEET_SHARDS`).
    pub shards: usize,
    /// Root directory for shard sockets and cache dirs (`FLEET_DIR`).
    pub dir: PathBuf,
    /// Router soft shed watermark (`FLEET_MAX_INFLIGHT`); hard is 2×.
    pub soft_cap: usize,
    /// Virtual nodes per shard on the ring (`FLEET_VNODES`).
    pub vnodes: usize,
    /// Probe/housekeeping period in ms (`FLEET_PROBE_MS`).
    pub probe_ms: u64,
    /// Snapshot-exchange period in ms; 0 disables (`FLEET_SNAPSHOT_MS`).
    pub snapshot_ms: u64,
    /// Explicit shard binary path (`SPA_SERVE_BIN` / resolution chain).
    pub server_bin: Option<PathBuf>,
    /// Extra env vars for shard processes (fault plans in chaos tests).
    pub extra_env: Vec<(String, String)>,
    /// `SERVE_MAX_INFLIGHT` handed to each shard. Generous by default:
    /// the router owns admission; shards should rarely push back.
    pub shard_max_inflight: usize,
}

impl FleetConfig {
    /// Defaults for a fleet rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> FleetConfig {
        FleetConfig {
            shards: 3,
            dir: dir.into(),
            soft_cap: 64,
            vnodes: crate::ring::DEFAULT_VNODES,
            probe_ms: 100,
            snapshot_ms: 1000,
            server_bin: None,
            extra_env: Vec::new(),
            shard_max_inflight: 1024,
        }
    }

    /// Reads the `FLEET_*` env knobs over the defaults.
    pub fn from_env(dir: impl Into<PathBuf>) -> FleetConfig {
        let mut cfg = FleetConfig::new(dir);
        let parse = |name: &str, default: u64| -> u64 {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        cfg.shards = pucost::util::usize_of(parse("FLEET_SHARDS", 3)).max(1);
        cfg.soft_cap = pucost::util::usize_of(parse("FLEET_MAX_INFLIGHT", 64)).max(1);
        cfg.vnodes = pucost::util::usize_of(parse(
            "FLEET_VNODES",
            crate::ring::DEFAULT_VNODES as u64,
        ))
        .max(1);
        cfg.probe_ms = parse("FLEET_PROBE_MS", 100).max(10);
        cfg.snapshot_ms = parse("FLEET_SNAPSHOT_MS", 1000);
        cfg
    }
}

/// Finds the `spa-serve` binary: explicit env, the cargo-test-provided
/// path, then a sibling of the current executable (covering both cargo
/// (`spa-serve`) and the offline harness (`bin_spa_serve`)).
pub fn resolve_server_bin() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("SPA_SERVE_BIN") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Some(p);
        }
    }
    if let Some(p) = option_env!("CARGO_BIN_EXE_spa-serve") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Some(p);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    for name in ["spa-serve", "bin_spa_serve"] {
        let p = dir.join(name);
        if p.is_file() {
            return Some(p);
        }
    }
    None
}

struct ShardProc {
    child: Mutex<Option<Child>>,
    restarts: std::sync::atomic::AtomicU64,
}

/// A running fleet: shard children + router + maintenance threads.
pub struct Fleet {
    cfg: FleetConfig,
    bin: PathBuf,
    router: Arc<Router>,
    procs: Vec<Arc<ShardProc>>,
    stop: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Fleet {
    /// Spawns the shard processes and starts the router and maintenance
    /// threads. Shards may still be binding their sockets on return;
    /// the router reconnects until they are up.
    ///
    /// # Errors
    ///
    /// Directory creation failures, or no `spa-serve` binary found.
    pub fn start(cfg: FleetConfig) -> std::io::Result<Arc<Fleet>> {
        let bin = match cfg.server_bin.clone().or_else(resolve_server_bin) {
            Some(b) => b,
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    "no spa-serve binary (set SPA_SERVE_BIN)",
                ))
            }
        };
        std::fs::create_dir_all(&cfg.dir)?;
        let sockets: Vec<PathBuf> = (0..cfg.shards).map(|i| shard_socket(&cfg.dir, i)).collect();
        for i in 0..cfg.shards {
            std::fs::create_dir_all(shard_cache_dir(&cfg.dir, i))?;
        }
        let router = Router::start(RouterConfig {
            sockets,
            vnodes: cfg.vnodes,
            soft_cap: cfg.soft_cap,
        });
        let procs: Vec<Arc<ShardProc>> = (0..cfg.shards)
            .map(|_| {
                Arc::new(ShardProc {
                    child: Mutex::new(None),
                    restarts: std::sync::atomic::AtomicU64::new(0),
                })
            })
            .collect();
        let fleet = Arc::new(Fleet {
            cfg,
            bin,
            router,
            procs,
            stop: Arc::new(AtomicBool::new(false)),
            threads: Mutex::new(Vec::new()),
        });
        for i in 0..fleet.cfg.shards {
            fleet.spawn_shard(i)?;
        }
        let mut threads = Vec::new();
        {
            let f = Arc::clone(&fleet);
            // Supervisory maintenance thread; no single request trace to
            // adopt. lint: allow(untraced-spawn)
            if let Ok(h) = std::thread::Builder::new()
                .name("fleet-probe".into())
                .spawn(move || f.probe_loop())
            {
                threads.push(h);
            }
        }
        if fleet.cfg.snapshot_ms > 0 {
            let f = Arc::clone(&fleet);
            // Supervisory maintenance thread; no single request trace to
            // adopt. lint: allow(untraced-spawn)
            if let Ok(h) = std::thread::Builder::new()
                .name("fleet-snapshot".into())
                .spawn(move || f.snapshot_loop())
            {
                threads.push(h);
            }
        }
        *lock(&fleet.threads) = threads;
        Ok(fleet)
    }

    /// The router handle (mint sessions from it).
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// The socket path shard `i` listens on.
    pub fn shard_socket(&self, i: usize) -> PathBuf {
        shard_socket(&self.cfg.dir, i)
    }

    /// The cache directory shard `i` persists into.
    pub fn shard_cache_dir(&self, i: usize) -> PathBuf {
        shard_cache_dir(&self.cfg.dir, i)
    }

    /// Current pid of shard `i`, if it is running.
    pub fn shard_pid(&self, i: usize) -> Option<u32> {
        let p = self.procs.get(i)?;
        lock(&p.child).as_ref().map(Child::id)
    }

    /// Sends SIGTERM (graceful) or SIGKILL to shard `i`. The probe loop
    /// respawns it; returns false if the shard is not running.
    pub fn kill_shard(&self, i: usize, graceful: bool) -> bool {
        let Some(pid) = self.shard_pid(i) else {
            return false;
        };
        let sig = if graceful { SIGTERM } else { SIGKILL };
        // Signalling our own supervised child by its live pid.
        unsafe { kill(pid as i32, sig) == 0 }
    }

    fn spawn_shard(&self, i: usize) -> std::io::Result<()> {
        let mut cmd = Command::new(&self.bin);
        cmd.arg("--socket")
            .arg(self.shard_socket(i))
            .env("SERVE_CACHE_DIR", self.shard_cache_dir(i))
            .env("SERVE_MAX_INFLIGHT", self.cfg.shard_max_inflight.to_string());
        for (k, v) in &self.cfg.extra_env {
            cmd.env(k, v);
        }
        let child = cmd.spawn()?;
        let pid = u64::from(child.id());
        let sp = &self.procs[i];
        *lock(&sp.child) = Some(child);
        self.router.set_proc_info(
            i,
            ProcInfo {
                pid,
                restarts: sp.restarts.load(Ordering::SeqCst),
            },
        );
        Ok(())
    }

    /// Reaps and respawns dead shards; re-sends unsent pending lines.
    fn probe_loop(&self) {
        while !self.stop.load(Ordering::SeqCst) {
            for i in 0..self.procs.len() {
                let dead = {
                    let mut child = lock(&self.procs[i].child);
                    match child.as_mut() {
                        None => false,
                        Some(c) => match c.try_wait() {
                            Ok(Some(_status)) => {
                                *child = None;
                                true
                            }
                            Ok(None) => false,
                            Err(_) => false,
                        },
                    }
                };
                if dead && !self.stop.load(Ordering::SeqCst) {
                    self.procs[i].restarts.fetch_add(1, Ordering::SeqCst);
                    obs::add("fleet.restart", 1);
                    if self.spawn_shard(i).is_err() {
                        eprintln!("spa-fleet: failed to respawn shard {i}");
                    }
                }
            }
            self.router.housekeep();
            std::thread::sleep(Duration::from_millis(self.cfg.probe_ms));
        }
    }

    fn snapshot_loop(&self) {
        let period = Duration::from_millis(self.cfg.snapshot_ms.max(10));
        while !self.stop.load(Ordering::SeqCst) {
            std::thread::sleep(period);
            if self.stop.load(Ordering::SeqCst) || self.router.is_shutting_down() {
                break;
            }
            let _ = self.exchange_now();
        }
    }

    /// One synchronous snapshot exchange: flush every live shard (a
    /// direct `flush` rpc on its socket, answered inline), then merge
    /// all per-shard `evalcache` checkpoints into a union written back
    /// to every shard directory. Returns the number of entries in the
    /// merged snapshot.
    pub fn exchange_now(&self) -> usize {
        for i in 0..self.cfg.shards {
            let _ = shard_rpc(
                &self.shard_socket(i),
                "{\"v\":1,\"id\":999999901,\"req\":\"flush\"}",
                Duration::from_secs(5),
            );
        }
        merge_snapshots(
            &(0..self.cfg.shards)
                .map(|i| self.shard_cache_dir(i))
                .collect::<Vec<_>>(),
        )
    }

    /// Graceful fleet shutdown: drain the router (typed partials for
    /// anything still pending), ask shards to shut down, wait for the
    /// children (killing stragglers), and stop the maintenance threads.
    pub fn shutdown(&self) {
        // Stop the maintenance threads first so nothing respawns or
        // re-sends while the fleet tears down.
        self.stop.store(true, Ordering::SeqCst);
        let handles = {
            let mut held = lock(&self.threads);
            std::mem::take(&mut *held)
        };
        for h in handles {
            let _ = h.join();
        }
        self.router.shutdown();
        // Give every shard a graceful window, then escalate.
        for i in 0..self.procs.len() {
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            loop {
                let gone = {
                    let mut child = lock(&self.procs[i].child);
                    match child.as_mut() {
                        None => true,
                        Some(c) => match c.try_wait() {
                            Ok(Some(_)) => {
                                *child = None;
                                true
                            }
                            _ => false,
                        },
                    }
                };
                if gone {
                    break;
                }
                if std::time::Instant::now() >= deadline {
                    let mut child = lock(&self.procs[i].child);
                    if let Some(c) = child.as_mut() {
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    *child = None;
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        self.router.join();
    }
}

fn shard_socket(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("shard-{i}.sock"))
}

fn shard_cache_dir(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("shard-{i}"))
}

/// One short-lived request/response rpc against a shard socket.
fn shard_rpc(sock: &Path, line: &str, timeout: Duration) -> Option<String> {
    let mut stream = UnixStream::connect(sock).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    writeln!(stream, "{line}").ok()?;
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    match reader.read_line(&mut buf) {
        Ok(n) if n > 0 => Some(buf.trim().to_string()),
        _ => None,
    }
}

/// Merges every readable per-shard `evalcache` checkpoint into one
/// union snapshot written back to each shard directory (atomic
/// tmp+rename via [`Checkpoint::save`]). Returns the union entry count;
/// unreadable/torn snapshots are skipped (the shard cold-starts, typed,
/// exactly as the single-process diskcache does).
pub fn merge_snapshots(dirs: &[PathBuf]) -> usize {
    let mut em: Option<String> = None;
    let mut union: Vec<String> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for dir in dirs {
        let path = dir.join("evalcache.ckpt");
        let Ok(ck) = Checkpoint::load(&path) else {
            continue;
        };
        let Some(file_em) = ck.meta("em").map(str::to_string) else {
            continue;
        };
        match &em {
            None => em = Some(file_em),
            Some(e) if *e == file_em => {}
            // Fingerprint mismatch: a shard ran different model code;
            // skip rather than poison the union.
            Some(_) => continue,
        }
        for line in ck.section("cache") {
            if seen.insert(line.clone()) {
                union.push(line.clone());
            }
        }
    }
    let Some(em) = em else {
        return 0;
    };
    union.truncate(diskcache::DEFAULT_CAP);
    let mut merged = Checkpoint::new("evalcache");
    merged.set_meta("em", &em);
    merged.set_meta("cap", &diskcache::DEFAULT_CAP.to_string());
    merged.push_section("cache", union.clone());
    for dir in dirs {
        let _ = merged.save(&dir.join("evalcache.ckpt"));
    }
    union.len()
}

/// Hosts a fleet on a unix socket: each accepted connection gets a
/// [`FleetSession`] pumped like `run_socket` pumps a [`crate::Client`].
/// Returns when `stop` is raised or a `shutdown` request lands; the
/// fleet is shut down gracefully (drain, shard shutdown, reap) before
/// returning.
///
/// # Errors
///
/// Bind/configure failures of the listener.
pub fn run_fleet_socket(
    path: &Path,
    fleet: &Arc<Fleet>,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let mut pumps = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) || fleet.router().is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let session = fleet.router().session();
                // Connection pumps shuttle bytes; responses carry
                // shard-minted traces. lint: allow(untraced-spawn)
                pumps.push(std::thread::spawn(move || {
                    pump_fleet_connection(session, stream)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                eprintln!("spa-fleet: accept failed: {e}");
                break;
            }
        }
    }
    fleet.shutdown();
    let _ = std::fs::remove_file(path);
    for p in pumps {
        let _ = p.join();
    }
    Ok(())
}

/// One fleet connection, one thread: interleave reads (short timeout)
/// with draining response lines, ending at EOF once every submitted
/// request has resolved — the same discipline as `pump_connection`.
fn pump_fleet_connection(session: FleetSession, stream: UnixStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let mut reader = match stream.try_clone() {
        Ok(r) => BufReader::new(r),
        Err(e) => {
            eprintln!("spa-fleet: cannot clone stream: {e}");
            return;
        }
    };
    let mut out = stream;
    let mut acc = String::new();
    let mut eof = false;
    loop {
        if !eof {
            match reader.read_line(&mut acc) {
                Ok(0) => eof = true,
                Ok(_) => {
                    session.submit(acc.trim_end());
                    acc.clear();
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => eof = true,
            }
        } else if session.outstanding() > 0 {
            match session.recv_timeout(Duration::from_millis(25)) {
                Some(resp) => {
                    if writeln!(out, "{resp}").is_err() {
                        break;
                    }
                    continue;
                }
                None => {}
            }
        }
        let mut io_ok = true;
        for resp in session.drain_ready() {
            io_ok &= writeln!(out, "{resp}").is_ok();
        }
        if !io_ok {
            break;
        }
        if (eof || session.is_shutting_down()) && session.outstanding() == 0 {
            for resp in session.drain_ready() {
                let _ = writeln!(out, "{resp}");
            }
            break;
        }
    }
}
