//! `spa-serve`: a long-running, multi-client evaluation/DSE service.
//!
//! The crates below this one answer *one* question per process run:
//! evaluate a PU, segment a model, run a co-design sweep. This crate
//! turns them into a **service**: a persistent process that many clients
//! query concurrently over a versioned JSONL protocol, sharing one warm
//! [`pucost::EvalCache`] (optionally persisted to disk across restarts),
//! one [`autoseg::dse::DsePool`], and one admission-controlled priority
//! queue.
//!
//! Layering:
//!
//! * [`json`] — a tiny deterministic JSON value (std-only; sorted keys).
//! * [`proto`] — the versioned request/response line protocol.
//! * [`queue`] — admission control + priority scheduling.
//! * [`diskcache`] — the persistent warm tier of the eval cache.
//! * [`server`] — the serving core: workers, batching, deadlines,
//!   cancellation, graceful shutdown with checkpointed searches.
//!
//! The `spa-serve` binary (`main.rs`) fronts a [`server::Server`] with a
//! unix-domain socket (`SERVE_SOCKET`) or, with `--stdio`, a single
//! stdin/stdout session — the mode the offline harness and `verify.sh`
//! drive.
//!
//! Environment knobs: `SERVE_SOCKET` (socket path), `SERVE_CACHE_DIR`
//! (persistent cache + server-side checkpoints), `SERVE_MAX_INFLIGHT`
//! (admission cap). `DSE_THREADS`, `OBS_LEVEL` and `FAULT_PLAN` apply as
//! everywhere else.
//!
//! Known limitation, documented rather than hidden: `segment` requests
//! run through [`autoseg::AutoSeg`], which builds its own internal eval
//! cache per run — they do not share the server's warm cache (and so
//! never contribute warm hits). `eval_pu` and `codesign` do.

pub mod diskcache;
pub mod json;
pub mod proto;
pub mod queue;
pub mod server;

pub use diskcache::DiskCache;
pub use json::Json;
pub use proto::{Envelope, ProtoError, Request, PROTOCOL_VERSION};
pub use queue::{Admission, AdmitError};
pub use server::{Client, ServeConfig, Server};

use std::io::{BufRead, Write};
use std::sync::mpsc::RecvTimeoutError;
use std::time::Duration;

/// Runs one blocking stdio session against a fresh server: each input
/// line is a request, each output line a response. Returns when the
/// input reaches EOF or a `shutdown` request lands; either way the
/// server drains, checkpoints in-flight searches and flushes the
/// persistent cache before this returns.
///
/// Input is consumed on a dedicated reader thread so responses are
/// forwarded (and flushed) while waiting for the next request line — an
/// interactive client may write one request and wait for its response
/// before writing more. If the session ends by `shutdown` request while
/// the input is still open, the reader thread stays parked on its
/// blocking read until the input closes (for the binary: process exit).
///
/// This is the `--stdio` mode of the binary, factored here so tests can
/// drive it with in-memory readers/writers.
///
/// # Errors
///
/// `std::io::Error` only for output-write failures; input errors end the
/// session like EOF.
pub fn run_stdio(
    input: impl BufRead + Send + 'static,
    mut output: impl Write,
    cfg: ServeConfig,
) -> std::io::Result<()> {
    let server = Server::start(cfg);
    let client = server.client();
    let (line_tx, line_rx) = std::sync::mpsc::channel::<String>();
    std::thread::spawn(move || {
        for line in input.lines() {
            let Ok(line) = line else { break };
            if line_tx.send(line).is_err() {
                break;
            }
        }
    });
    let mut eof = false;
    while !eof && !server.is_shutting_down() {
        match line_rx.recv_timeout(Duration::from_millis(25)) {
            Ok(line) => client.submit(&line),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => eof = true,
        }
        let mut wrote = false;
        for resp in client.drain_ready() {
            writeln!(output, "{resp}")?;
            wrote = true;
        }
        if wrote {
            output.flush()?;
        }
    }
    if !server.is_shutting_down() {
        server.shutdown();
    }
    for resp in client.drain_ready() {
        writeln!(output, "{resp}")?;
    }
    // Wait for in-flight jobs to answer (done or typed partial — they
    // observe their raised cancel flags at the next generation
    // boundary), then drain the tail.
    server.join();
    for resp in client.drain_ready() {
        writeln!(output, "{resp}")?;
    }
    output.flush()?;
    Ok(())
}
