//! `spa-serve`: a long-running, multi-client evaluation/DSE service.
//!
//! The crates below this one answer *one* question per process run:
//! evaluate a PU, segment a model, run a co-design sweep. This crate
//! turns them into a **service**: a persistent process that many clients
//! query concurrently over a versioned JSONL protocol, sharing one warm
//! [`pucost::EvalCache`] (optionally persisted to disk across restarts),
//! one [`autoseg::dse::DsePool`], and one admission-controlled priority
//! queue.
//!
//! Layering:
//!
//! * [`json`] — a tiny deterministic JSON value (std-only; sorted keys).
//! * [`proto`] — the versioned request/response line protocol.
//! * [`queue`] — admission control + priority scheduling (+ the fleet
//!   [`queue::ShedPolicy`]).
//! * [`diskcache`] — the persistent warm tier of the eval cache.
//! * [`server`] — the serving core: workers, batching, deadlines,
//!   cancellation, graceful shutdown with checkpointed searches.
//! * [`ring`] — the deterministic consistent-hash ring for the fleet.
//! * [`router`] — fan-out of client sessions across shard sockets with
//!   retry/failover of idempotent work and typed load shedding.
//! * [`fleet`] — shard process supervision: spawn, health probes, hot
//!   restart, warm-cache snapshot exchange; the `spa-fleet` binary.
//! * [`testkit`] — condition-polling helpers for the socket suites.
//!
//! The `spa-serve` binary (`main.rs`) fronts a [`server::Server`] with a
//! unix-domain socket (`SERVE_SOCKET`) or, with `--stdio`, a single
//! stdin/stdout session — the mode the offline harness and `verify.sh`
//! drive.
//!
//! Environment knobs: `SERVE_SOCKET` (socket path), `SERVE_CACHE_DIR`
//! (persistent cache + server-side checkpoints), `SERVE_MAX_INFLIGHT`
//! (admission cap). `DSE_THREADS`, `OBS_LEVEL` and `FAULT_PLAN` apply as
//! everywhere else.
//!
//! Known limitation, documented rather than hidden: `segment` requests
//! run through [`autoseg::AutoSeg`], which builds its own internal eval
//! cache per run — they do not share the server's warm cache (and so
//! never contribute warm hits). `eval_pu` and `codesign` do.

pub mod diskcache;
pub mod fleet;
pub mod json;
pub mod proto;
pub mod queue;
pub mod ring;
pub mod router;
pub mod server;
pub mod testkit;

pub use diskcache::DiskCache;
pub use fleet::{run_fleet_socket, Fleet, FleetConfig};
pub use json::Json;
pub use proto::{Envelope, ProtoError, Request, PROTOCOL_VERSION};
pub use queue::{Admission, AdmitError, ShedDecision, ShedPolicy};
pub use ring::Ring;
pub use router::{FleetSession, Router, RouterConfig};
pub use server::{Client, ServeConfig, Server};

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::Duration;

/// Runs one blocking stdio session against a fresh server: each input
/// line is a request, each output line a response. Returns when the
/// input reaches EOF or a `shutdown` request lands; either way the
/// server drains, checkpoints in-flight searches and flushes the
/// persistent cache before this returns.
///
/// Input is consumed on a dedicated reader thread so responses are
/// forwarded (and flushed) while waiting for the next request line — an
/// interactive client may write one request and wait for its response
/// before writing more. If the session ends by `shutdown` request while
/// the input is still open, the reader thread stays parked on its
/// blocking read until the input closes (for the binary: process exit).
///
/// This is the `--stdio` mode of the binary, factored here so tests can
/// drive it with in-memory readers/writers.
///
/// # Errors
///
/// `std::io::Error` only for output-write failures; input errors end the
/// session like EOF.
pub fn run_stdio(
    input: impl BufRead + Send + 'static,
    mut output: impl Write,
    cfg: ServeConfig,
) -> std::io::Result<()> {
    let server = Server::start(cfg);
    let client = server.client();
    let (line_tx, line_rx) = std::sync::mpsc::channel::<String>();
    // Reader thread forwards raw lines only; each request gets its own
    // TraceGuard inside the worker's execute path.
    // lint: allow(untraced-spawn)
    std::thread::spawn(move || {
        for line in input.lines() {
            let Ok(line) = line else { break };
            if line_tx.send(line).is_err() {
                break;
            }
        }
    });
    let mut eof = false;
    while !eof && !server.is_shutting_down() {
        match line_rx.recv_timeout(Duration::from_millis(25)) {
            Ok(line) => client.submit(&line),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => eof = true,
        }
        let mut wrote = false;
        for resp in client.drain_ready() {
            writeln!(output, "{resp}")?;
            wrote = true;
        }
        if wrote {
            output.flush()?;
        }
    }
    if !server.is_shutting_down() {
        server.shutdown();
    }
    for resp in client.drain_ready() {
        writeln!(output, "{resp}")?;
    }
    // Wait for in-flight jobs to answer (done or typed partial — they
    // observe their raised cancel flags at the next generation
    // boundary), then drain the tail.
    server.join();
    for resp in client.drain_ready() {
        writeln!(output, "{resp}")?;
    }
    output.flush()?;
    Ok(())
}

/// Hosts a fresh server on a unix-domain socket at `path`, accepting
/// many concurrent clients (one JSONL session each) until `stop` is
/// raised or a `shutdown` request lands. The accept loop is nonblocking
/// so both are observed within ~25 ms. On exit the server drains
/// gracefully, checkpoints in-flight searches and flushes the persistent
/// cache.
///
/// This is the `--socket` mode of the binary (which passes its
/// SIGTERM/SIGINT flag as `stop`), factored here so the `bench_serve`
/// harness can host a real socket in-process and stop it between bench
/// phases.
///
/// # Errors
///
/// Bind/configure failures of the listener; accept errors other than
/// `WouldBlock` end the loop but still shut down cleanly.
pub fn run_socket(path: &Path, cfg: ServeConfig, stop: &AtomicBool) -> std::io::Result<()> {
    let _ = std::fs::remove_file(path); // stale socket from a previous run
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let server = Arc::new(Server::start(cfg));
    let mut pumps = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) || server.is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let server = Arc::clone(&server);
                // Connection pumps shuttle bytes; traces are per request
                // (TraceGuard in the worker). lint: allow(untraced-spawn)
                pumps.push(std::thread::spawn(move || pump_connection(&server, stream)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                eprintln!("spa-serve: accept failed: {e}");
                break;
            }
        }
    }
    server.shutdown();
    let _ = std::fs::remove_file(path);
    for p in pumps {
        let _ = p.join();
    }
    match Arc::try_unwrap(server) {
        Ok(s) => s.join(),
        Err(_) => eprintln!("spa-serve: connection pump leaked a server handle"),
    }
    Ok(())
}

/// One connection, one thread: interleave reading request lines (with a
/// short read timeout so responses keep flowing while the peer is idle)
/// with pumping response lines back. The session ends once the peer
/// stops sending (EOF) and every admitted job has resolved — responses
/// are enqueued before a job resolves, so the final drain sees them all.
fn pump_connection(server: &Server, stream: UnixStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let client = server.client();
    let mut reader = match stream.try_clone() {
        Ok(r) => BufReader::new(r),
        Err(e) => {
            eprintln!("spa-serve: cannot clone stream: {e}");
            return;
        }
    };
    let mut out = stream;
    let mut acc = String::new();
    let mut eof = false;
    loop {
        if !eof {
            // A timeout mid-line leaves the partial line in `acc`; the
            // next round appends the rest.
            match reader.read_line(&mut acc) {
                Ok(0) => eof = true,
                Ok(_) => {
                    client.submit(acc.trim_end());
                    acc.clear();
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => eof = true,
            }
        } else if client.outstanding() > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut io_ok = true;
        for resp in client.drain_ready() {
            io_ok &= writeln!(out, "{resp}").is_ok();
        }
        if !io_ok {
            break; // peer hung up; jobs resolve server-side regardless
        }
        let drained = client.outstanding() == 0;
        if (eof || server.is_shutting_down()) && drained {
            for resp in client.drain_ready() {
                let _ = writeln!(out, "{resp}");
            }
            break;
        }
    }
}
