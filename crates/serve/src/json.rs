//! Minimal JSON value model for the JSONL wire protocol.
//!
//! The workspace builds registry-free, so the serving layer cannot lean
//! on `serde`; this module is a small, std-only parser + serializer for
//! exactly the JSON subset the protocol uses (objects, arrays, strings
//! with the standard escapes, `f64` numbers, booleans, null). Object
//! keys live in a `BTreeMap` so serialization order — and therefore the
//! wire bytes — are a deterministic function of the value.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact,
    /// which covers every id/counter the protocol carries).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, key-sorted (deterministic serialization).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this value is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The string payload, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        // Exact-zero fract is the integrality test, not an approximate
        // comparison. lint: allow(float-eq)
        if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 {
            Some(pucost::util::trunc_u64(n))
        } else {
            None
        }
    }

    /// The boolean, if this value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience: object field lookup (`None` on non-objects too).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?.get(key)
    }

    /// Serializes the value on one line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 is shortest-round-trip; integral values
                    // get an explicit `.0`-free integer form (exact-zero
                    // fract = integrality test). lint: allow(float-eq)
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{n:.0}");
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    // JSON has no Inf/NaN; the protocol never produces
                    // them, but degrade to null rather than emit garbage.
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(pucost::util::f64_of(n))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(pucost::util::f64_of_usize(n))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

/// Builder shorthand for object literals.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A malformed JSON document handed to [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting depth accepted by [`parse`].
///
/// `value`/`object`/`array` are mutually recursive, so a hostile line of
/// a few hundred thousand `[` characters would otherwise exhaust the
/// parser thread's stack (an abort, not a typed error) — surfaced by the
/// `proto_fuzz` suite. 128 is far beyond anything the protocol nests
/// (requests are two levels deep) while keeping worst-case stack use in
/// the tens of kilobytes.
pub const MAX_DEPTH: usize = 128;

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser {
        bytes,
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &'static str) -> ParseError {
        ParseError {
            at: self.pos,
            reason,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Reads the 4 hex digits of a `\u` escape starting at byte `at`.
    fn hex4(&self, at: usize) -> Result<u32, ParseError> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| self.err("short \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))
    }

    fn eat(&mut self, b: u8, reason: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("too deeply nested"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.enter()?;
        let r = self.object_inner();
        self.depth -= 1;
        r
    }

    fn object_inner(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{', "expected {")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected : after key")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.enter()?;
        let r = self.array_inner();
        self.depth -= 1;
        r
    }

    fn array_inner(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            let c = match cp {
                                // High surrogate: must be followed by a
                                // \u-escaped low surrogate; the pair
                                // encodes one astral code point (how
                                // ASCII-only serializers like Python's
                                // json.dumps emit e.g. emoji).
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos + 1..self.pos + 3)
                                        != Some(br"\u")
                                    {
                                        return Err(self.err("unpaired surrogate \\u escape"));
                                    }
                                    let lo = self.hex4(self.pos + 3)?;
                                    if !(0xDC00..=0xDFFF).contains(&lo) {
                                        return Err(self.err("unpaired surrogate \\u escape"));
                                    }
                                    self.pos += 6;
                                    let astral =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(astral)
                                        .ok_or_else(|| self.err("bad \\u code point"))?
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(self.err("unpaired surrogate \\u escape"))
                                }
                                _ => char::from_u32(cp)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are guaranteed valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("bad utf8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        let n = text.parse::<f64>().map_err(|_| ParseError {
            at: start,
            reason: "bad number",
        })?;
        // `"1e999".parse::<f64>()` succeeds as +Inf; JSON has no Inf/NaN
        // and letting one in would silently degrade to `null` on render
        // (surfaced by the `proto_fuzz` suite).
        if !n.is_finite() {
            return Err(ParseError {
                at: start,
                reason: "number out of range",
            });
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        for src in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.5",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = parse(src).expect(src);
            assert_eq!(parse(&v.render()).expect(src), v, "{src}");
        }
    }

    #[test]
    fn object_keys_serialize_sorted() {
        let v = parse("{\"z\":1,\"a\":2}").expect("parses");
        assert_eq!(v.render(), "{\"a\":2,\"z\":1}");
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}f".to_string());
        let rendered = v.render();
        assert_eq!(parse(&rendered).expect("parses"), v);
        assert!(rendered.contains("\\u0001"));
        let esc = parse("\"\\u0041\\/\\b\\f\"").expect("parses");
        assert_eq!(esc, Json::Str("A/\u{8}\u{c}".to_string()));
    }

    #[test]
    fn surrogate_pairs_decode_unpaired_reject() {
        // What an ASCII-escaping serializer (Python json.dumps) emits
        // for astral-plane characters.
        let v = parse("\"\\ud83d\\ude00\"").expect("surrogate pair parses");
        assert_eq!(v, Json::Str("\u{1f600}".to_string()));
        let v = parse("\"a\\uD83D\\uDE00b\"").expect("uppercase hex, embedded");
        assert_eq!(v, Json::Str("a\u{1f600}b".to_string()));
        for bad in [
            "\"\\ud83d\"",        // high surrogate at end of string
            "\"\\ud83dx\"",       // high surrogate followed by a raw char
            "\"\\ud83d\\n\"",     // high surrogate followed by a non-\u escape
            "\"\\ud83d\\u0041\"", // high surrogate paired with a non-surrogate
            "\"\\ude00\"",        // lone low surrogate
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_and_integer_bounds() {
        let v = parse("{\"id\":42,\"x\":1.5,\"ok\":true,\"s\":\"y\"}").expect("parses");
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("x").and_then(Json::as_u64), None, "non-integer");
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("y"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(parse("-1").expect("ok").as_u64(), None, "negative");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}x",
            "\"\\q\"",
            "\"\\u12\"",
            "--1",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_a_typed_error_not_a_stack_overflow() {
        // One level under the cap parses; one over errors; pathological
        // depth (the proto_fuzz regression) must not abort the process.
        let ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok(), "depth == MAX_DEPTH parses");
        for deep in [MAX_DEPTH + 1, 100_000] {
            let src = "[".repeat(deep);
            let err = parse(&src).expect_err("too deep");
            assert_eq!(err.reason, "too deeply nested");
        }
        let objs = "{\"k\":".repeat(MAX_DEPTH + 1);
        assert_eq!(
            parse(&objs).expect_err("too deep").reason,
            "too deeply nested"
        );
        // Sibling containers do not accumulate depth.
        let wide = format!("[{}]", vec!["[0]"; 64].join(","));
        assert!(parse(&wide).is_ok(), "siblings stay shallow");
    }

    #[test]
    fn overflow_numbers_are_a_typed_error() {
        // f64 parsing accepts "1e999" as +Inf; the wire format must not
        // (proto_fuzz regression — Inf rendered back as null).
        for bad in ["1e999", "-1e999", "1e309", "123456789e400"] {
            let err = parse(bad).expect_err(bad);
            assert_eq!(err.reason, "number out of range", "{bad}");
        }
        assert!(parse("1e308").is_ok(), "large finite still parses");
        assert!(parse("1e-999").is_ok(), "underflow to 0.0 is fine");
    }

    #[test]
    fn large_exact_integers_render_without_exponent() {
        let v = Json::from(1_234_567_890_123u64);
        assert_eq!(v.render(), "1234567890123");
        assert_eq!(parse("1234567890123").expect("ok").as_u64(), Some(1_234_567_890_123));
    }
}
