//! The serving core: admission, scheduling, batching, execution.
//!
//! A [`Server`] owns one shared [`EvalCache`] (optionally warmed from /
//! persisted to a [`DiskCache`]), one [`DsePool`], an
//! admission-controlled priority queue and a small pool of scheduler
//! workers. Clients — one per connection, created with
//! [`Server::client`] — submit raw JSONL request lines and receive JSONL
//! response lines over a channel; the unix-socket and `--stdio` front
//! ends in `main.rs` are thin line pumps over this type, and the
//! integration tests drive it in-process.
//!
//! Scheduling: jobs run in `(priority desc, arrival asc)` order. When
//! the head of the queue is an `eval_pu` job the worker drains the run
//! of consecutive `eval_pu` jobs behind it (up to [`EVAL_BATCH_MAX`])
//! and evaluates them as **one** [`DsePool::par_map`] batch against the
//! shared cache. `segment`/`codesign` jobs run singly, with deadlines
//! and cancellation propagated through [`RunCtl`]; codesign state is
//! checkpointed server-side so a restarted server resumes mid-flight
//! searches bit-identically.

use crate::diskcache::DiskCache;
use crate::json::{obj, Json};
use crate::proto::{
    self, done_line, error_line, partial_line, progress_line, DataflowSel, Envelope, Request,
};
use crate::queue::{Admission, AdmitError, Queued};
use autoseg::codesign::{run_codesign_with, CodesignBudgets, CodesignRun, DesignPoint, Method};
use autoseg::dse::checkpoint::fnv64;
use autoseg::dse::DsePool;
use autoseg::{AutoSeg, RunCtl, RunStatus, StopReason};
use obs::HdrHist;
use pucost::{Dataflow, EvalCache, LayerDesc, PuConfig, PuEval};
use spa_arch::HwBudget;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
// The serving layer owns per-request wall-clock deadlines and queue-wait
// metrics; wall time here shapes *when* work stops (typed Partial), never
// what any completed generation computed.
use std::time::{Duration, Instant};

/// Largest `eval_pu` run drained into one `par_map` batch.
pub const EVAL_BATCH_MAX: usize = 32;

/// Default admission cap (`SERVE_MAX_INFLIGHT`).
pub const DEFAULT_MAX_INFLIGHT: usize = 64;

/// Server configuration; [`ServeConfig::from_env`] reads the documented
/// environment knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// DSE pool threads (0 = `DSE_THREADS`/auto).
    pub threads: usize,
    /// Scheduler worker threads.
    pub workers: usize,
    /// Admission cap: queued + running jobs (`SERVE_MAX_INFLIGHT`).
    pub max_inflight: usize,
    /// Directory for the persistent cache tier and server-side codesign
    /// checkpoints (`SERVE_CACHE_DIR`); `None` disables both.
    pub cache_dir: Option<PathBuf>,
    /// Persistent-cache entry cap.
    pub cache_cap: usize,
    /// Codesign checkpoint cadence in generations.
    pub checkpoint_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            workers: 2,
            max_inflight: DEFAULT_MAX_INFLIGHT,
            cache_dir: None,
            cache_cap: crate::diskcache::DEFAULT_CAP,
            checkpoint_every: 1,
        }
    }
}

impl ServeConfig {
    /// Applies `SERVE_CACHE_DIR` and `SERVE_MAX_INFLIGHT` (unset, empty
    /// or unparsable values leave the defaults).
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(dir) = std::env::var("SERVE_CACHE_DIR") {
            if !dir.is_empty() {
                cfg.cache_dir = Some(PathBuf::from(dir));
            }
        }
        if let Ok(v) = std::env::var("SERVE_MAX_INFLIGHT") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    cfg.max_inflight = n;
                }
            }
        }
        cfg
    }
}

/// One admitted unit of asynchronous work.
struct Job {
    conn: u64,
    id: u64,
    /// Server-minted trace id: echoed on every response line, set as the
    /// thread-local [`obs::current_trace`] while the job executes, and
    /// captured by flight-recorder notes and Chrome trace spans.
    trace: u64,
    request: Request,
    respond: Sender<String>,
    cancel: Arc<AtomicBool>,
    admitted_at: Instant,
    deadline: Option<Instant>,
}

/// Service counters surfaced by `status`.
#[derive(Debug, Default)]
struct Metrics {
    received: AtomicU64,
    completed: AtomicU64,
    partials: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
    batched_jobs: AtomicU64,
    wait_ms_total: AtomicU64,
    /// Jobs answered `partial:"deadline"` — admitted work that blew its
    /// wall-clock budget (counted in `partials` too).
    deadline_misses: AtomicU64,
}

/// Request-grained latency telemetry, **always on** (independent of
/// `OBS_LEVEL`): the `metrics` verb must answer from a cold-configured
/// server, and tail-latency regressions should not depend on having
/// remembered to enable tracing. Two maps of fixed-precision quantile
/// histograms ([`HdrHist`], p50/p90/p99/p999 within ~3.1%):
///
/// * **stages** — where a request's wall time went (`parse_us`,
///   `queue_wait_us`, `batch_form_us`, `eval_us`, `search_us`,
///   `respond_us`);
/// * **verbs** — end-to-end latency per request kind (admission to
///   terminal response for queued work; submit to response for inline
///   verbs).
///
/// Values are microseconds. Each record is one short uncontended mutex
/// acquisition; when `OBS_LEVEL` is on the value is mirrored into the
/// `obs` collector ([`obs::record_hdr`]) so end-of-run reports show the
/// same quantiles. Timing here shapes only telemetry output, never any
/// search result (the `obs_equiv` invariant).
struct Telemetry {
    started: Instant,
    stages: Mutex<BTreeMap<&'static str, HdrHist>>,
    verbs: Mutex<BTreeMap<&'static str, HdrHist>>,
}

impl Telemetry {
    fn new() -> Self {
        Telemetry {
            started: Instant::now(),
            stages: Mutex::new(BTreeMap::new()),
            verbs: Mutex::new(BTreeMap::new()),
        }
    }

    fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn stage(&self, name: &'static str, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        lock(&self.stages).entry(name).or_default().record(us);
        obs::record_hdr(name, us);
    }

    fn verb(&self, name: &'static str, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        lock(&self.verbs).entry(name).or_default().record(us);
        obs::record_hdr(name, us);
    }
}

/// The telemetry key for a request's verb histogram.
fn verb_name(r: &Request) -> &'static str {
    match r {
        Request::EvalPu { .. } => "eval_pu",
        Request::Segment { .. } => "segment",
        Request::Codesign { .. } => "codesign",
        Request::Status => "status",
        Request::Metrics { .. } => "metrics",
        Request::Cancel { .. } => "cancel",
        Request::Flush => "flush",
        Request::Shutdown => "shutdown",
    }
}

struct Inner {
    cfg: ServeConfig,
    cache: EvalCache,
    pool: DsePool,
    disk: Mutex<Option<DiskCache>>,
    disk_note: Mutex<String>,
    queue: Mutex<Admission<Job>>,
    cv: Condvar,
    shutdown: AtomicBool,
    conn_seq: AtomicU64,
    /// Trace-id mint: one id per submitted request line, process-unique.
    trace_seq: AtomicU64,
    cancels: Mutex<BTreeMap<(u64, u64), Arc<AtomicBool>>>,
    m: Metrics,
    tel: Telemetry,
}

/// The long-running evaluation/DSE service.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// One client connection: submit request lines, receive response lines.
pub struct Client {
    inner: Arc<Inner>,
    conn: u64,
    tx: Sender<String>,
    rx: Receiver<String>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Server {
    /// Builds the server, loads the persistent cache tier (when
    /// configured) and starts the scheduler workers.
    pub fn start(cfg: ServeConfig) -> Self {
        // A panicking worker should leave a readable tail of what every
        // thread was doing: chain the flight-recorder dump in front of
        // the default hook. Idempotent across restarts in one process.
        obs::flight::install_panic_hook();
        let cache = EvalCache::default();
        let pool = if cfg.threads == 0 {
            DsePool::from_env()
        } else {
            DsePool::new(cfg.threads)
        };
        let (disk, disk_note) = match &cfg.cache_dir {
            None => (None, "disabled".to_string()),
            Some(dir) => {
                let _ = std::fs::create_dir_all(dir);
                let mut d = DiskCache::new(dir.join("evalcache.ckpt"), cfg.cache_cap);
                let note = match d.load(&cache) {
                    Ok(n) => format!("loaded {n} entries"),
                    Err(e) => format!("cold start: {e}"),
                };
                (Some(d), note)
            }
        };
        let inner = Arc::new(Inner {
            queue: Mutex::new(Admission::new(cfg.max_inflight)),
            cfg,
            cache,
            pool,
            disk: Mutex::new(disk),
            disk_note: Mutex::new(disk_note),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            conn_seq: AtomicU64::new(0),
            trace_seq: AtomicU64::new(0),
            cancels: Mutex::new(BTreeMap::new()),
            m: Metrics::default(),
            tel: Telemetry::new(),
        });
        let workers = (0..inner.cfg.workers.max(1))
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    // Workers enter a per-job TraceGuard inside
                    // worker_loop/execute_*; the spawn itself predates any
                    // request. lint: allow(untraced-spawn)
                    .spawn(move || worker_loop(&inner))
                    .unwrap_or_else(|e| {
                        // Thread spawn failure at startup is fatal-by
                        // -construction for a server; surface it loudly.
                        panic!("cannot spawn serve worker: {e}") // lint: allow(panic-path)
                    })
            })
            .collect();
        Server { inner, workers }
    }

    /// Opens a new logical connection.
    pub fn client(&self) -> Client {
        let conn = self.inner.conn_seq.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = std::sync::mpsc::channel();
        Client {
            inner: Arc::clone(&self.inner),
            conn,
            tx,
            rx,
        }
    }

    /// Initiates graceful shutdown: stops admitting work, answers every
    /// queued-but-unstarted job with a typed `partial` (`cancelled`),
    /// raises every in-flight search's cancel flag (they stop at the
    /// next generation boundary and checkpoint), and wakes the workers.
    pub fn shutdown(&self) {
        shutdown_inner(&self.inner);
    }

    /// `true` once shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the workers to drain and flushes the persistent cache
    /// tier. Call after [`Server::shutdown`].
    pub fn join(mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        flush_disk(&self.inner);
    }
}

fn shutdown_inner(inner: &Arc<Inner>) {
    if inner.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    obs::add("serve.shutdowns", 1);
    let drained = {
        let mut q = lock(&inner.queue);
        q.close();
        q.drain()
    };
    for Queued { job, .. } in drained {
        let _ = job
            .respond
            .send(partial_line(job.id, "cancelled", 0, 0, None, job.trace));
        inner.m.partials.fetch_add(1, Ordering::Relaxed);
        lock(&inner.cancels).remove(&(job.conn, job.id));
    }
    for flag in lock(&inner.cancels).values() {
        flag.store(true, Ordering::SeqCst);
    }
    inner.cv.notify_all();
}

fn flush_disk(inner: &Inner) {
    let mut disk = lock(&inner.disk);
    if let Some(d) = disk.as_mut() {
        if let Err(e) = d.save(&inner.cache) {
            *lock(&inner.disk_note) = format!("save failed: {e}");
        }
    }
}

impl Client {
    /// This connection's id (cancellation scope).
    pub fn conn(&self) -> u64 {
        self.conn
    }

    /// Submits one raw request line. Every outcome — including parse
    /// errors — comes back as a response line on [`Client::recv_timeout`].
    ///
    /// A trace id is minted here, before parsing: even a rejected line
    /// has an id linking its error response to the flight-recorder and
    /// Chrome-trace events its handling produced.
    pub fn submit(&self, line: &str) {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        let t0 = Instant::now();
        let trace = self.inner.trace_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let _t = obs::TraceGuard::enter(trace);
        self.inner.m.received.fetch_add(1, Ordering::Relaxed);
        obs::add("serve.requests", 1);
        let env = match proto::parse_request(line) {
            Ok(env) => env,
            Err(e) => {
                self.inner.m.errors.fetch_add(1, Ordering::Relaxed);
                obs::flight::note("serve.reject", trace, 0);
                self.inner.tel.stage("parse_us", t0.elapsed());
                let _ = self.tx.send(error_line(e.id, e.code, &e.message, trace));
                return;
            }
        };
        self.inner.tel.stage("parse_us", t0.elapsed());
        obs::flight::note("serve.request", trace, env.id);
        match env.request {
            Request::Status => {
                let _ = self
                    .tx
                    .send(done_line(env.id, status_json(&self.inner), trace));
                self.inner.m.completed.fetch_add(1, Ordering::Relaxed);
                self.inner.tel.verb("status", t0.elapsed());
            }
            Request::Metrics { flight } => {
                let _ = self
                    .tx
                    .send(done_line(env.id, metrics_json(&self.inner, flight), trace));
                self.inner.m.completed.fetch_add(1, Ordering::Relaxed);
                self.inner.tel.verb("metrics", t0.elapsed());
            }
            Request::Cancel { target } => {
                let found = lock(&self.inner.cancels)
                    .get(&(self.conn, target))
                    .map(|flag| flag.store(true, Ordering::SeqCst))
                    .is_some();
                let _ = self.tx.send(done_line(
                    env.id,
                    obj(vec![("cancelled", Json::from(found))]),
                    trace,
                ));
                self.inner.m.completed.fetch_add(1, Ordering::Relaxed);
                self.inner.tel.verb("cancel", t0.elapsed());
            }
            Request::Flush => {
                flush_disk(&self.inner);
                let (enabled, saves) = {
                    let disk = lock(&self.inner.disk);
                    match disk.as_ref() {
                        Some(d) => (true, d.saves()),
                        None => (false, 0),
                    }
                };
                let _ = self.tx.send(done_line(
                    env.id,
                    obj(vec![
                        ("flushed", Json::from(enabled)),
                        ("saves", Json::from(saves)),
                        ("entries", Json::from(self.inner.cache.stats().entries)),
                    ]),
                    trace,
                ));
                self.inner.m.completed.fetch_add(1, Ordering::Relaxed);
                self.inner.tel.verb("flush", t0.elapsed());
            }
            Request::Shutdown => {
                shutdown_inner(&self.inner);
                let _ = self.tx.send(done_line(
                    env.id,
                    obj(vec![("stopping", Json::from(true))]),
                    trace,
                ));
                self.inner.m.completed.fetch_add(1, Ordering::Relaxed);
                self.inner.tel.verb("shutdown", t0.elapsed());
            }
            _ => self.enqueue(env, trace),
        }
    }

    fn enqueue(&self, env: Envelope, trace: u64) {
        let Envelope {
            id,
            priority,
            deadline_ms,
            request,
        } = env;
        let cancel = Arc::new(AtomicBool::new(false));
        let now = Instant::now();
        let job = Job {
            conn: self.conn,
            id,
            trace,
            request,
            respond: self.tx.clone(),
            cancel: Arc::clone(&cancel),
            admitted_at: now,
            deadline: deadline_ms.map(|ms| now + Duration::from_millis(ms)),
        };
        // The cancel entry must exist before the job becomes visible to
        // workers: a cache-hit eval can pop, run and respond in
        // microseconds, and the worker's post-response removal has to
        // find the entry — inserting it after the push would leave a
        // stale entry behind, so Client::outstanding() never drains.
        // The same ordering covers a concurrent shutdown drain.
        lock(&self.inner.cancels).insert((self.conn, id), cancel);
        let admitted = lock(&self.inner.queue).push(priority, job);
        match admitted {
            Ok(_) => self.inner.cv.notify_one(),
            Err(e) => {
                self.inner.m.errors.fetch_add(1, Ordering::Relaxed);
                obs::add("serve.rejected", 1);
                let code = match e {
                    AdmitError::Overloaded => "overloaded",
                    AdmitError::ShuttingDown => "shutting-down",
                };
                let _ = self
                    .tx
                    .send(error_line(Some(id), code, &e.to_string(), trace));
                lock(&self.inner.cancels).remove(&(self.conn, id));
            }
        }
    }

    /// Receives the next response line, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<String> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Async jobs of this connection admitted but not yet resolved.
    /// Responses are sent *before* a job's entry is removed, so once
    /// this reaches 0 a final [`Client::drain_ready`] observes every
    /// response.
    pub fn outstanding(&self) -> usize {
        lock(&self.inner.cancels)
            .keys()
            .filter(|(conn, _)| *conn == self.conn)
            .count()
    }

    /// Drains whatever responses are ready right now.
    pub fn drain_ready(&self) -> Vec<String> {
        self.rx.try_iter().collect()
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // Cancellation entries for this connection can never fire again.
        lock(&self.inner.cancels).retain(|(conn, _), _| *conn != self.conn);
    }
}

fn status_json(inner: &Inner) -> Json {
    let (depth, running, max_inflight, closed, high_water) = {
        let q = lock(&inner.queue);
        (
            q.depth(),
            q.running(),
            q.max_inflight(),
            q.is_closed(),
            q.high_water(),
        )
    };
    let cs = inner.cache.stats();
    let (disk_enabled, disk_loaded, disk_saves) = match lock(&inner.disk).as_ref() {
        None => (false, 0usize, 0u64),
        Some(d) => (true, d.loaded_entries(), d.saves()),
    };
    obj(vec![
        ("protocol", Json::from(proto::PROTOCOL_VERSION)),
        ("uptime_ms", Json::from(inner.tel.uptime_ms())),
        (
            "queue",
            obj(vec![
                ("depth", Json::from(depth)),
                ("running", Json::from(running)),
                ("max_inflight", Json::from(max_inflight)),
                ("closed", Json::from(closed)),
                ("high_water", Json::from(high_water)),
            ]),
        ),
        (
            "counters",
            obj(vec![
                ("received", Json::from(inner.m.received.load(Ordering::Relaxed))),
                ("completed", Json::from(inner.m.completed.load(Ordering::Relaxed))),
                ("partials", Json::from(inner.m.partials.load(Ordering::Relaxed))),
                ("errors", Json::from(inner.m.errors.load(Ordering::Relaxed))),
                ("batches", Json::from(inner.m.batches.load(Ordering::Relaxed))),
                (
                    "batched_jobs",
                    Json::from(inner.m.batched_jobs.load(Ordering::Relaxed)),
                ),
                (
                    "wait_ms_total",
                    Json::from(inner.m.wait_ms_total.load(Ordering::Relaxed)),
                ),
                (
                    "deadline_misses",
                    Json::from(inner.m.deadline_misses.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        (
            "cache",
            obj(vec![
                ("entries", Json::from(cs.entries)),
                ("hits", Json::from(cs.hits)),
                ("warm_hits", Json::from(cs.warm_hits)),
                ("hot_hits", Json::from(cs.hot_hits)),
                ("misses", Json::from(cs.misses)),
                ("hit_rate", Json::from(cs.hit_rate)),
                ("batched_probes", Json::from(cs.batched_probes)),
                ("batch_misses", Json::from(cs.batch_misses)),
                ("batch_shard_locks", Json::from(cs.batch_shard_locks)),
            ]),
        ),
        (
            "disk",
            obj(vec![
                ("enabled", Json::from(disk_enabled)),
                ("loaded_entries", Json::from(disk_loaded)),
                ("saves", Json::from(disk_saves)),
                ("note", Json::from(lock(&inner.disk_note).clone())),
            ]),
        ),
    ])
}

/// One histogram's quantile row for the `metrics` verb (microseconds).
fn hdr_json(h: &HdrHist) -> Json {
    obj(vec![
        ("count", Json::from(h.count())),
        ("max", Json::from(h.max())),
        ("p50", Json::from(h.p50())),
        ("p90", Json::from(h.p90())),
        ("p99", Json::from(h.p99())),
        ("p999", Json::from(h.p999())),
    ])
}

fn hdr_map_json(map: &Mutex<BTreeMap<&'static str, HdrHist>>) -> Json {
    Json::Obj(
        lock(map)
            .iter()
            .map(|(k, h)| ((*k).to_string(), hdr_json(h)))
            .collect(),
    )
}

/// The `metrics` verb: request-grained telemetry, answered inline like
/// `status`. Deterministically rendered (sorted keys at every level);
/// with `flight`, embeds a live flight-recorder dump.
fn metrics_json(inner: &Inner, flight: bool) -> Json {
    let mut fields = vec![
        ("protocol", Json::from(proto::PROTOCOL_VERSION)),
        ("uptime_ms", Json::from(inner.tel.uptime_ms())),
        ("stages", hdr_map_json(&inner.tel.stages)),
        ("verbs", hdr_map_json(&inner.tel.verbs)),
        (
            "recorder",
            obj(vec![
                ("enabled", Json::from(obs::flight::flight_enabled())),
                ("sink_errors", Json::from(obs::sink_errors())),
            ]),
        ),
    ];
    if flight {
        // The dump's own JSON form is sorted-key; round-trip it through
        // the wire value model so it embeds as a tree, not a string.
        let dump = obs::flight::drain().to_json();
        fields.push(("flight", crate::json::parse(&dump).unwrap_or(Json::Null)));
    }
    obj(fields)
}

/// Scheduler worker: pop → (batch) execute → respond, until shutdown
/// has drained the queue.
fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let (batch, formed) = {
            let mut q = lock(&inner.queue);
            loop {
                if let Some(first) = q.pop() {
                    let t0 = Instant::now();
                    let batch = collect_batch(&mut q, first);
                    break (batch, t0.elapsed());
                }
                if q.is_closed() {
                    return;
                }
                q = inner
                    .cv
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        inner.tel.stage("batch_form_us", formed);
        let n = batch.len();
        execute_batch(inner, batch);
        let mut q = lock(&inner.queue);
        for _ in 0..n {
            q.finish();
        }
        drop(q);
        inner.cv.notify_all();
    }
}

/// Starting from `first`, drains the run of batch-compatible `eval_pu`
/// jobs at the head of the queue. Non-eval jobs run alone.
fn collect_batch(q: &mut Admission<Job>, first: Queued<Job>) -> Vec<Job> {
    let mut batch = vec![first.job];
    if matches!(batch[0].request, Request::EvalPu { .. }) {
        while batch.len() < EVAL_BATCH_MAX {
            match q.pop_if(|j| matches!(j.job.request, Request::EvalPu { .. })) {
                Some(next) => batch.push(next.job),
                None => break,
            }
        }
    }
    batch
}

fn record_wait(inner: &Inner, job: &Job) {
    let waited = job.admitted_at.elapsed();
    let ms = u64::try_from(waited.as_millis()).unwrap_or(u64::MAX);
    inner.m.wait_ms_total.fetch_add(ms, Ordering::Relaxed);
    inner.tel.stage("queue_wait_us", waited);
    obs::record("serve.wait_ms", ms);
}

/// `Some(remaining)` when a deadline exists and has not yet expired.
fn remaining(job: &Job) -> Option<Result<Duration, ()>> {
    let d = job.deadline?;
    let now = Instant::now();
    if now >= d {
        Some(Err(()))
    } else {
        Some(Ok(d - now))
    }
}

fn execute_batch(inner: &Arc<Inner>, batch: Vec<Job>) {
    let _span = obs::span!("serve.batch", jobs = batch.len());
    if batch.len() > 1 {
        inner.m.batches.fetch_add(1, Ordering::Relaxed);
        inner
            .m
            .batched_jobs
            .fetch_add(pucost::util::u64_of(batch.len()), Ordering::Relaxed);
        obs::record("serve.batch_size", pucost::util::u64_of(batch.len()));
    }
    // Partition: jobs still eligible to run vs. already cancelled/expired
    // (answered typed without any work).
    let mut eval_items: Vec<(LayerDesc, PuConfig, DataflowSel)> = Vec::new();
    let mut eval_jobs: Vec<Job> = Vec::new();
    for job in batch {
        record_wait(inner, &job);
        if job.cancel.load(Ordering::SeqCst) {
            let _ = job
                .respond
                .send(partial_line(job.id, "cancelled", 0, 0, None, job.trace));
            inner.m.partials.fetch_add(1, Ordering::Relaxed);
            lock(&inner.cancels).remove(&(job.conn, job.id));
            continue;
        }
        if matches!(remaining(&job), Some(Err(()))) {
            let _ = job
                .respond
                .send(partial_line(job.id, "deadline", 0, 0, None, job.trace));
            inner.m.partials.fetch_add(1, Ordering::Relaxed);
            inner.m.deadline_misses.fetch_add(1, Ordering::Relaxed);
            lock(&inner.cancels).remove(&(job.conn, job.id));
            continue;
        }
        match &job.request {
            Request::EvalPu { layer, pu, dataflow } => {
                eval_items.push((*layer, *pu, *dataflow));
                eval_jobs.push(job);
            }
            _ => run_search_job(inner, job),
        }
    }
    if eval_jobs.is_empty() {
        return;
    }
    // One pool fan-out for the whole eval run, chunked so each worker
    // resolves its probes through one batched cache pass (one shard-lock
    // sweep per chunk instead of one lock per probe); the shared cache
    // makes repeats (within and across batches) hits.
    let cache = &inner.cache;
    let chunk_len = eval_items.len().div_ceil(inner.pool.threads().max(1)).max(1);
    let chunks: Vec<&[(LayerDesc, PuConfig, DataflowSel)]> = eval_items.chunks(chunk_len).collect();
    // The batch shares one trace context: attribute the fused par_map to
    // the first job's id (flight notes + Chrome spans inside the pool
    // workers inherit it via DsePool's trace propagation).
    let _t = obs::TraceGuard::enter(eval_jobs[0].trace);
    obs::flight::note(
        "serve.batch",
        eval_jobs[0].trace,
        pucost::util::u64_of(eval_jobs.len()),
    );
    let eval_t0 = Instant::now();
    let results: Vec<(Dataflow, PuEval)> = inner
        .pool
        .par_map(&chunks, |_, chunk| {
            // A `best` selection probes WS then OS, exactly like the
            // scalar `best_dataflow`, so the stitched pick below applies
            // the shared tie-break to bit-identical inputs.
            let mut probes: Vec<(LayerDesc, PuConfig, Dataflow)> =
                Vec::with_capacity(chunk.len() * 2);
            for (layer, pu, sel) in chunk.iter() {
                match sel {
                    DataflowSel::Fixed(df) => probes.push((*layer, *pu, *df)),
                    DataflowSel::Best => {
                        probes.push((*layer, *pu, Dataflow::WeightStationary));
                        probes.push((*layer, *pu, Dataflow::OutputStationary));
                    }
                }
            }
            let evals = cache.evaluate_probes(&probes);
            let mut out: Vec<(Dataflow, PuEval)> = Vec::with_capacity(chunk.len());
            let mut next = 0;
            for (_, _, sel) in chunk.iter() {
                match sel {
                    DataflowSel::Fixed(df) => {
                        out.push((*df, evals[next]));
                        next += 1;
                    }
                    DataflowSel::Best => {
                        let picked = pucost::pick_dataflow(evals[next], evals[next + 1]);
                        next += 2;
                        out.push(picked);
                    }
                }
            }
            out
        })
        .into_iter()
        .flatten()
        .collect();
    inner.tel.stage("eval_us", eval_t0.elapsed());
    let respond_t0 = Instant::now();
    for (job, (df, eval)) in eval_jobs.into_iter().zip(results) {
        let _ = job
            .respond
            .send(done_line(job.id, eval_json(df, &eval), job.trace));
        inner.m.completed.fetch_add(1, Ordering::Relaxed);
        inner.tel.verb("eval_pu", job.admitted_at.elapsed());
        lock(&inner.cancels).remove(&(job.conn, job.id));
    }
    inner.tel.stage("respond_us", respond_t0.elapsed());
}

fn eval_json(df: Dataflow, e: &PuEval) -> Json {
    let label = match df {
        Dataflow::WeightStationary => "WS",
        Dataflow::OutputStationary => "OS",
    };
    obj(vec![
        ("dataflow", Json::from(label)),
        ("cycles", Json::from(e.cycles)),
        ("seconds", Json::from(e.seconds)),
        ("macs", Json::from(e.macs)),
        ("utilization", Json::from(e.utilization)),
        ("buffers_ok", Json::from(e.buffers_ok)),
        ("energy_pj", Json::from(e.energy.total_pj())),
    ])
}

fn budget_by_name(name: &str) -> Option<HwBudget> {
    Some(match name {
        "eyeriss" => HwBudget::eyeriss(),
        "nvdla-small" => HwBudget::nvdla_small(),
        "nvdla-large" => HwBudget::nvdla_large(),
        "edge-tpu" => HwBudget::edge_tpu(),
        "zu3eg" => HwBudget::zu3eg(),
        "7z045" => HwBudget::z7045(),
        "ku115" => HwBudget::ku115(),
        _ => return None,
    })
}

fn stop_reason_label(r: StopReason) -> &'static str {
    match r {
        StopReason::Deadline => "deadline",
        StopReason::GenBudget => "generation budget",
        StopReason::Cancelled => "cancelled",
    }
}

/// Executes one `segment` or `codesign` job (deadline + cancellation via
/// [`RunCtl`]) and sends its response(s).
fn run_search_job(inner: &Arc<Inner>, job: Job) {
    let _t = obs::TraceGuard::enter(job.trace);
    let mut ctl = RunCtl::none().cancel_flag(Arc::clone(&job.cancel));
    match remaining(&job) {
        Some(Ok(left)) => ctl = ctl.deadline(left),
        // Expired between execute_batch's check and here: answer the
        // typed deadline partial instead of running unbounded.
        Some(Err(())) => {
            let _ = job
                .respond
                .send(partial_line(job.id, "deadline", 0, 0, None, job.trace));
            inner.m.partials.fetch_add(1, Ordering::Relaxed);
            inner.m.deadline_misses.fetch_add(1, Ordering::Relaxed);
            lock(&inner.cancels).remove(&(job.conn, job.id));
            return;
        }
        None => {}
    }
    let _ = job.respond.send(progress_line(job.id, "running", job.trace));
    let search_t0 = Instant::now();
    let outcome = match &job.request {
        Request::Segment { model, budget } => run_segment(inner, model, budget, &ctl),
        Request::Codesign {
            model,
            budget,
            method,
            hw_iters,
            seg_iters,
            seed,
        } => run_codesign(inner, model, budget, method, *hw_iters, *seg_iters, *seed, ctl),
        // Eval/status/cancel/shutdown never reach this function.
        _ => Err(("bad-request", "not a search request".to_string())),
    };
    inner.tel.stage("search_us", search_t0.elapsed());
    let respond_t0 = Instant::now();
    match outcome {
        Ok((status, result)) => match status {
            RunStatus::Complete => {
                let _ = job.respond.send(done_line(job.id, result, job.trace));
                inner.m.completed.fetch_add(1, Ordering::Relaxed);
            }
            RunStatus::Partial(p) => {
                if matches!(p.reason, StopReason::Deadline) {
                    inner.m.deadline_misses.fetch_add(1, Ordering::Relaxed);
                }
                let _ = job.respond.send(partial_line(
                    job.id,
                    stop_reason_label(p.reason),
                    p.completed_gens,
                    p.planned_gens,
                    Some(result),
                    job.trace,
                ));
                inner.m.partials.fetch_add(1, Ordering::Relaxed);
            }
        },
        Err((code, message)) => {
            let _ = job
                .respond
                .send(error_line(Some(job.id), code, &message, job.trace));
            inner.m.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
    inner.tel.stage("respond_us", respond_t0.elapsed());
    inner.tel.verb(verb_name(&job.request), job.admitted_at.elapsed());
    lock(&inner.cancels).remove(&(job.conn, job.id));
}

type SearchResult = Result<(RunStatus, Json), (&'static str, String)>;

fn run_segment(inner: &Arc<Inner>, model: &str, budget: &str, ctl: &RunCtl) -> SearchResult {
    let graph = nnmodel::zoo::by_name(model)
        .ok_or_else(|| ("unknown-model", format!("no zoo model named {model:?}")))?;
    let budget = budget_by_name(budget)
        .ok_or_else(|| ("unknown-budget", format!("no budget preset named {budget:?}")))?;
    let engine = AutoSeg::new(budget).threads(inner.cfg.threads.max(1));
    let anytime = engine
        .run_ctl(&graph, ctl)
        .map_err(|e| ("search-failed", e.to_string()))?;
    let result = match &anytime.outcome {
        None => obj(vec![("feasible", Json::from(false))]),
        Some(o) => {
            let r = &o.report;
            let mut h = fnv64(&r.cycles.to_le_bytes());
            h ^= fnv64(&r.seconds.to_bits().to_le_bytes());
            h ^= fnv64(&r.dram_bytes.to_le_bytes());
            obj(vec![
                ("feasible", Json::from(true)),
                ("explored", Json::from(o.explored)),
                ("segments", Json::from(r.per_segment.len())),
                ("seconds", Json::from(r.seconds)),
                ("cycles", Json::from(r.cycles)),
                ("dram_bytes", Json::from(r.dram_bytes)),
                ("utilization", Json::from(r.utilization)),
                ("energy_pj", Json::from(r.energy.total_pj())),
                ("digest", Json::from(format!("{h:016x}"))),
            ])
        }
    };
    Ok((anytime.status, result))
}

#[allow(clippy::too_many_arguments)]
fn run_codesign(
    inner: &Arc<Inner>,
    model: &str,
    budget: &str,
    method: &str,
    hw_iters: usize,
    seg_iters: usize,
    seed: u64,
    mut ctl: RunCtl,
) -> SearchResult {
    let graph = nnmodel::zoo::by_name(model)
        .ok_or_else(|| ("unknown-model", format!("no zoo model named {model:?}")))?;
    let hw = budget_by_name(budget)
        .ok_or_else(|| ("unknown-budget", format!("no budget preset named {budget:?}")))?;
    let method = Method::parse(method)
        .ok_or_else(|| ("unknown-method", format!("no codesign method named {method:?}")))?;
    let budgets = CodesignBudgets {
        hw_iters,
        seg_iters,
        seed,
        threads: inner.cfg.threads,
    };
    // Server-side checkpointing: in-flight searches survive restarts.
    // The checkpoint file is keyed by the full request identity, so a
    // restarted server resumes exactly the search the client asked for
    // (run_codesign_with re-validates the recorded config).
    let ckpt = inner.cfg.cache_dir.as_ref().map(|dir| {
        dir.join(format!(
            "codesign-{}-{}-{}-{hw_iters}-{seg_iters}-{seed}.ckpt",
            graph.name(),
            hw.name,
            method.label()
        ))
    });
    if let Some(path) = &ckpt {
        ctl = ctl.checkpoint(path, inner.cfg.checkpoint_every);
        if path.exists() {
            ctl = ctl.resume(path);
        }
    }
    let run: CodesignRun = run_codesign_with(&graph, &hw, &budgets, method, &inner.pool, &inner.cache, &ctl)
        .map_err(|e| ("search-failed", e.to_string()))?;
    if run.status.is_complete() {
        if let Some(path) = &ckpt {
            let _ = std::fs::remove_file(path);
        }
    }
    Ok((run.status, codesign_json(&run.points)))
}

fn codesign_json(points: &[DesignPoint]) -> Json {
    let mut best_lat = f64::INFINITY;
    let mut best_energy = f64::INFINITY;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in points {
        best_lat = best_lat.min(p.latency_s);
        best_energy = best_energy.min(p.energy_pj);
        h ^= fnv64(&p.latency_s.to_bits().to_le_bytes());
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= fnv64(&p.energy_pj.to_bits().to_le_bytes());
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= fnv64(p.method.as_bytes());
        h ^= fnv64(&pucost::util::u64_of(p.shape.0).to_le_bytes());
        h ^= fnv64(&pucost::util::u64_of(p.shape.1).to_le_bytes());
    }
    obj(vec![
        ("points", Json::from(points.len())),
        (
            "best_latency_s",
            if best_lat.is_finite() {
                Json::from(best_lat)
            } else {
                Json::Null
            },
        ),
        (
            "best_energy_pj",
            if best_energy.is_finite() {
                Json::from(best_energy)
            } else {
                Json::Null
            },
        ),
        ("digest", Json::from(format!("{h:016x}"))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_line(id: u64, k: usize, extra: &str) -> String {
        format!(
            "{{\"v\":1,\"id\":{id},\"req\":\"eval_pu\",\"dataflow\":\"best\",\
             \"layer\":{{\"in_c\":{},\"in_h\":14,\"in_w\":14,\"out_c\":{},\"out_h\":14,\"out_w\":14,\
             \"kernel\":3,\"stride\":1,\"groups\":1,\"is_fc\":false}},\
             \"pu\":{{\"rows\":16,\"cols\":16}}{extra}}}",
            8 * k,
            16 * k
        )
    }

    fn recv_for(client: &Client, id: u64, kinds: &[&str]) -> Json {
        for _ in 0..200 {
            if let Some(line) = client.recv_timeout(Duration::from_secs(5)) {
                let v = crate::json::parse(&line).expect("response is json");
                if v.get("id").and_then(Json::as_u64) == Some(id)
                    && v.get("kind")
                        .and_then(Json::as_str)
                        .is_some_and(|k| kinds.contains(&k))
                {
                    return v;
                }
            } else {
                break;
            }
        }
        panic!("no response for id {id} of kinds {kinds:?}");
    }

    #[test]
    fn eval_requests_complete_and_hit_cache() {
        let server = Server::start(ServeConfig {
            workers: 1,
            threads: 1,
            ..ServeConfig::default()
        });
        let client = server.client();
        client.submit(&eval_line(1, 1, ""));
        let done = recv_for(&client, 1, &["done"]);
        let cycles = done.get("result").and_then(|r| r.get("cycles")).and_then(Json::as_u64);
        assert!(cycles.is_some_and(|c| c > 0));
        // Same request again: a cache hit, same bits.
        client.submit(&eval_line(2, 1, ""));
        let again = recv_for(&client, 2, &["done"]);
        assert_eq!(done.get("result"), again.get("result"));
        client.submit(r#"{"v":1,"id":3,"req":"status"}"#);
        let status = recv_for(&client, 3, &["done"]);
        let hits = status
            .get("result")
            .and_then(|r| r.get("cache"))
            .and_then(|c| c.get("hits"))
            .and_then(Json::as_u64);
        assert!(hits.is_some_and(|h| h >= 1), "{status:?}");
        server.shutdown();
        server.join();
    }

    #[test]
    fn malformed_and_unknown_requests_get_typed_errors() {
        let server = Server::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let client = server.client();
        client.submit("this is not json");
        let e = client.recv_timeout(Duration::from_secs(5)).expect("reply");
        assert!(e.contains("\"kind\":\"error\"") && e.contains("bad-json"), "{e}");
        client.submit(r#"{"v":1,"id":9,"req":"segment","model":"no_such_model","budget":"eyeriss"}"#);
        let v = recv_for(&client, 9, &["error"]);
        assert_eq!(v.get("code").and_then(Json::as_str), Some("unknown-model"));
        server.shutdown();
        server.join();
    }

    #[test]
    fn shutdown_answers_queued_jobs_and_rejects_new_ones() {
        // Zero workers would hang; use one worker but occupy it is racy —
        // instead close before submitting the async job.
        let server = Server::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let client = server.client();
        server.shutdown();
        client.submit(&eval_line(5, 1, ""));
        let v = recv_for(&client, 5, &["error"]);
        assert_eq!(v.get("code").and_then(Json::as_str), Some("shutting-down"));
        server.join();
    }

    #[test]
    fn expired_deadline_yields_typed_partial() {
        let server = Server::start(ServeConfig {
            workers: 1,
            threads: 1,
            ..ServeConfig::default()
        });
        let client = server.client();
        // deadline_ms 0: expired by the time the worker sees it.
        client.submit(&eval_line(4, 2, ",\"deadline_ms\":0"));
        let v = recv_for(&client, 4, &["partial"]);
        assert_eq!(v.get("reason").and_then(Json::as_str), Some("deadline"));
        server.shutdown();
        server.join();
    }
}
