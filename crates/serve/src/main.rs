//! `spa-serve` — the evaluation/DSE service binary.
//!
//! Two front ends over the same [`serve::Server`] core:
//!
//! * `spa-serve --stdio` — one session over stdin/stdout (JSONL request
//!   per input line, JSONL responses on output). The mode the offline
//!   harness and `scripts/verify.sh` drive.
//! * `spa-serve --socket PATH` (or `SERVE_SOCKET=PATH spa-serve`) — a
//!   unix-domain socket accepting many concurrent clients, each a JSONL
//!   session. SIGTERM (or a `shutdown` request) shuts down gracefully:
//!   in-flight searches stop at the next generation boundary and
//!   checkpoint, the persistent cache flushes, and a restarted server
//!   resumes interrupted codesigns bit-identically.
//!
//! Environment: `SERVE_SOCKET`, `SERVE_CACHE_DIR`, `SERVE_MAX_INFLIGHT`,
//! plus the usual `DSE_THREADS` / `OBS_LEVEL` / `FAULT_PLAN`.

use serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Raised by the SIGTERM/SIGINT handler; polled by the accept loop.
static TERMINATE: AtomicBool = AtomicBool::new(false);

/// Installs a minimal async-signal-safe termination handler. std links
/// libc on every supported unix target, so declaring `signal` directly
/// keeps the crate dependency-free; the handler body is a single atomic
/// store, which is async-signal-safe.
fn install_signal_handlers() {
    extern "C" fn on_term(_sig: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as usize);
        signal(SIGINT, on_term as usize);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: spa-serve --stdio | spa-serve --socket PATH\n\
         (SERVE_SOCKET=PATH is equivalent to --socket PATH)\n\
         env: SERVE_CACHE_DIR, SERVE_MAX_INFLIGHT, DSE_THREADS, OBS_LEVEL, FAULT_PLAN"
    );
    std::process::exit(2);
}

fn main() {
    faultsim::arm_from_env();
    let cfg = ServeConfig::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode: Vec<&str> = args.iter().map(String::as_str).collect();
    match mode.as_slice() {
        ["--stdio"] => {
            // StdinLock is not Send (run_stdio reads on its own thread);
            // wrap the handle instead.
            let stdin = BufReader::new(std::io::stdin());
            let stdout = std::io::stdout();
            if let Err(e) = serve::run_stdio(stdin, stdout.lock(), cfg) {
                eprintln!("spa-serve: stdio session failed: {e}");
                std::process::exit(1);
            }
        }
        ["--socket", path] => run_socket(Path::new(path), cfg),
        [] => match std::env::var("SERVE_SOCKET") {
            Ok(path) if !path.is_empty() => run_socket(Path::new(&path), cfg),
            _ => usage(),
        },
        _ => usage(),
    }
    obs::finish();
}

/// Accept loop: nonblocking so SIGTERM and `shutdown` requests are
/// observed promptly; each connection gets its own pump thread.
fn run_socket(path: &Path, cfg: ServeConfig) {
    install_signal_handlers();
    let _ = std::fs::remove_file(path); // stale socket from a previous run
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("spa-serve: cannot bind {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("spa-serve: cannot set nonblocking: {e}");
        std::process::exit(1);
    }
    let server = Arc::new(Server::start(cfg));
    eprintln!("spa-serve: listening on {}", path.display());
    let mut pumps = Vec::new();
    loop {
        if TERMINATE.load(Ordering::SeqCst) || server.is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let server = Arc::clone(&server);
                pumps.push(std::thread::spawn(move || pump_connection(&server, stream)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                eprintln!("spa-serve: accept failed: {e}");
                break;
            }
        }
    }
    server.shutdown();
    let _ = std::fs::remove_file(path);
    for p in pumps {
        let _ = p.join();
    }
    match Arc::try_unwrap(server) {
        Ok(s) => s.join(),
        Err(_) => eprintln!("spa-serve: connection pump leaked a server handle"),
    }
    eprintln!("spa-serve: stopped");
}

/// One connection, one thread: interleave reading request lines (with a
/// short read timeout so responses keep flowing while the peer is idle)
/// with pumping response lines back. The session ends once the peer
/// stops sending (EOF) and every admitted job has resolved — responses
/// are enqueued before a job resolves, so the final drain sees them all.
fn pump_connection(server: &Server, stream: UnixStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let client = server.client();
    let mut reader = match stream.try_clone() {
        Ok(r) => BufReader::new(r),
        Err(e) => {
            eprintln!("spa-serve: cannot clone stream: {e}");
            return;
        }
    };
    let mut out = stream;
    let mut acc = String::new();
    let mut eof = false;
    loop {
        if !eof {
            // A timeout mid-line leaves the partial line in `acc`; the
            // next round appends the rest.
            match reader.read_line(&mut acc) {
                Ok(0) => eof = true,
                Ok(_) => {
                    client.submit(acc.trim_end());
                    acc.clear();
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => eof = true,
            }
        } else if client.outstanding() > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut io_ok = true;
        for resp in client.drain_ready() {
            io_ok &= writeln!(out, "{resp}").is_ok();
        }
        if !io_ok {
            break; // peer hung up; jobs resolve server-side regardless
        }
        let drained = client.outstanding() == 0;
        if (eof || server.is_shutting_down()) && drained {
            for resp in client.drain_ready() {
                let _ = writeln!(out, "{resp}");
            }
            break;
        }
    }
}
