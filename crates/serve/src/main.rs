//! `spa-serve` — the evaluation/DSE service binary.
//!
//! Two front ends over the same [`serve::Server`] core:
//!
//! * `spa-serve --stdio` — one session over stdin/stdout (JSONL request
//!   per input line, JSONL responses on output). The mode the offline
//!   harness and `scripts/verify.sh` drive.
//! * `spa-serve --socket PATH` (or `SERVE_SOCKET=PATH spa-serve`) — a
//!   unix-domain socket accepting many concurrent clients, each a JSONL
//!   session. SIGTERM (or a `shutdown` request) shuts down gracefully:
//!   in-flight searches stop at the next generation boundary and
//!   checkpoint, the persistent cache flushes, and a restarted server
//!   resumes interrupted codesigns bit-identically.
//!
//! Both front ends live in the library ([`serve::run_stdio`],
//! [`serve::run_socket`]) so tests and the `bench_serve` harness drive
//! them in-process; this binary adds only argument parsing and signal
//! handling.
//!
//! Environment: `SERVE_SOCKET`, `SERVE_CACHE_DIR`, `SERVE_MAX_INFLIGHT`,
//! plus the usual `DSE_THREADS` / `OBS_LEVEL` / `OBS_FLIGHT` /
//! `OBS_TRACE_OUT` / `FAULT_PLAN`.

use serve::ServeConfig;
use std::io::BufReader;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

/// Raised by the SIGTERM/SIGINT handler; polled by the accept loop.
static TERMINATE: AtomicBool = AtomicBool::new(false);

/// Installs a minimal async-signal-safe termination handler. std links
/// libc on every supported unix target, so declaring `signal` directly
/// keeps the crate dependency-free; the handler body is a single atomic
/// store, which is async-signal-safe.
fn install_signal_handlers() {
    extern "C" fn on_term(_sig: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as usize);
        signal(SIGINT, on_term as usize);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: spa-serve --stdio | spa-serve --socket PATH\n\
         (SERVE_SOCKET=PATH is equivalent to --socket PATH)\n\
         env: SERVE_CACHE_DIR, SERVE_MAX_INFLIGHT, DSE_THREADS, OBS_LEVEL, FAULT_PLAN"
    );
    std::process::exit(2);
}

fn serve_socket(path: &Path, cfg: ServeConfig) {
    install_signal_handlers();
    eprintln!("spa-serve: listening on {}", path.display());
    if let Err(e) = serve::run_socket(path, cfg, &TERMINATE) {
        eprintln!("spa-serve: socket session failed: {e}");
        std::process::exit(1);
    }
    eprintln!("spa-serve: stopped");
}

fn main() {
    faultsim::arm_from_env();
    let cfg = ServeConfig::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode: Vec<&str> = args.iter().map(String::as_str).collect();
    match mode.as_slice() {
        ["--stdio"] => {
            // StdinLock is not Send (run_stdio reads on its own thread);
            // wrap the handle instead.
            let stdin = BufReader::new(std::io::stdin());
            let stdout = std::io::stdout();
            if let Err(e) = serve::run_stdio(stdin, stdout.lock(), cfg) {
                eprintln!("spa-serve: stdio session failed: {e}");
                std::process::exit(1);
            }
        }
        ["--socket", path] => serve_socket(Path::new(path), cfg),
        [] => match std::env::var("SERVE_SOCKET") {
            Ok(path) if !path.is_empty() => serve_socket(Path::new(&path), cfg),
            _ => usage(),
        },
        _ => usage(),
    }
    obs::finish();
}
