//! End-to-end service tests driving the in-process [`serve::Server`]
//! exactly as the socket/stdio front ends do: raw JSONL request lines
//! in, raw JSONL response lines out.
//!
//! Pinned here:
//!
//! * **Concurrency**: 8 concurrent scripted clients, every request
//!   answered with a terminal response (`done`, typed `partial`, or
//!   typed `error`) — no lost requests, no panics.
//! * **Persistence**: a restarted server answers a repeated request from
//!   the disk-loaded warm cache tier, observable via `status`.
//! * **Resume equivalence**: a server stopped mid-`codesign` (the
//!   SIGTERM path: [`serve::Server::shutdown`]) checkpoints the search;
//!   a restarted server resumes it to a result digest **bit-identical**
//!   to an uninterrupted run of the same request.
//! * **Deadlines**: a mid-request `deadline_ms` produces a typed
//!   `partial` with `reason:"deadline"`, never a hang or a panic.
//! * **Drain invariants**: `Client::outstanding` reaches 0 once every
//!   response has arrived (cancel entries are registered before a job
//!   is worker-visible), and a `--stdio` session answers while its
//!   input is idle — the two hangs fixed after review.

use serve::json::Json;
use serve::testkit::{test_timeout, wait_until};
use serve::{ServeConfig, Server};
use std::path::PathBuf;
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("serve-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("mkdir");
    p
}

fn eval_line(id: u64, k: usize, extra: &str) -> String {
    format!(
        "{{\"v\":1,\"id\":{id},\"req\":\"eval_pu\",\"dataflow\":\"best\",\
         \"layer\":{{\"in_c\":{},\"in_h\":14,\"in_w\":14,\"out_c\":{},\"out_h\":14,\"out_w\":14,\
         \"kernel\":3,\"stride\":1,\"groups\":1,\"is_fc\":false}},\
         \"pu\":{{\"rows\":16,\"cols\":16}}{extra}}}",
        8 * (k % 7 + 1),
        16 * (k % 5 + 1)
    )
}

/// `mip-baye` runs one generation per hardware candidate (plus the seed
/// generations), so `hw_iters` controls how many cancellation/deadline
/// boundaries the search crosses — unlike `mip-heuristic`, whose whole
/// search is a single generation.
fn codesign_line(id: u64, method: &str, hw_iters: usize, seg_iters: usize, extra: &str) -> String {
    format!(
        "{{\"v\":1,\"id\":{id},\"req\":\"codesign\",\"model\":\"alexnet\",\
         \"budget\":\"eyeriss\",\"method\":\"{method}\",\
         \"hw_iters\":{hw_iters},\"seg_iters\":{seg_iters},\"seed\":3{extra}}}"
    )
}

/// Reads response lines until every id in `ids` has a terminal response
/// (`done` | `partial` | `error`); `progress` events are skipped. The
/// channel interleaves responses of concurrently outstanding requests,
/// so waiting for several ids must collect, not filter.
fn collect_terminals(client: &serve::Client, ids: &[u64]) -> std::collections::BTreeMap<u64, Json> {
    // One SERVE_TEST_TIMEOUT_MS budget covers the whole collection, with
    // short receive ticks — no per-line hardcoded deadline to flake on.
    let deadline = std::time::Instant::now() + test_timeout();
    let mut out = std::collections::BTreeMap::new();
    while out.len() < ids.len() {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out; missing terminal responses for {ids:?} (have {:?})",
            out.keys().collect::<Vec<_>>()
        );
        let Some(line) = client.recv_timeout(Duration::from_millis(100)) else {
            continue;
        };
        let v = serve::json::parse(&line).expect("response line is JSON");
        let id = v.get("id").and_then(Json::as_u64).expect("response id");
        match v.get("kind").and_then(Json::as_str) {
            Some("progress") => continue,
            Some(_) if ids.contains(&id) => {
                out.insert(id, v);
            }
            Some(_) => panic!("terminal response for unexpected id {id}: {line}"),
            None => panic!("response without kind: {line}"),
        }
    }
    out
}

/// Waits for the terminal response to `id` — only safe when `id` is the
/// sole outstanding request on this client.
fn terminal_for(client: &serve::Client, id: u64) -> Json {
    collect_terminals(client, &[id]).remove(&id).expect("collected")
}

fn status_of(client: &serve::Client, id: u64) -> Json {
    client.submit(&format!("{{\"v\":1,\"id\":{id},\"req\":\"status\"}}"));
    let v = terminal_for(client, id);
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("done"));
    v.get("result").expect("status result").clone()
}

#[test]
fn eight_concurrent_clients_every_request_answered() {
    let server = Server::start(ServeConfig {
        workers: 2,
        threads: 2,
        ..ServeConfig::default()
    });
    let answered: Vec<(u64, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0u64..8)
            .map(|c| {
                let client = server.client();
                s.spawn(move || {
                    let mut out = Vec::new();
                    for i in 0u64..3 {
                        let id = 100 * c + i;
                        // A mix of plain, prioritized and deadlined work.
                        let extra = match i {
                            0 => String::new(),
                            1 => format!(",\"priority\":{}", c % 3),
                            _ => ",\"deadline_ms\":30000".to_string(),
                        };
                        client.submit(&eval_line(id, usize::try_from(c + i).expect("small"), &extra));
                    }
                    let ids: Vec<u64> = (0u64..3).map(|i| 100 * c + i).collect();
                    for (id, v) in collect_terminals(&client, &ids) {
                        let kind = v
                            .get("kind")
                            .and_then(Json::as_str)
                            .expect("kind")
                            .to_string();
                        out.push((id, kind));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    assert_eq!(answered.len(), 24, "every request got a terminal response");
    for (id, kind) in &answered {
        assert!(
            kind == "done" || kind == "partial",
            "request {id} answered {kind}"
        );
    }
    // The repeated layer/PU shapes across clients must have hit the
    // shared cache at least once (7 distinct shapes, 24 requests).
    let client = server.client();
    let st = status_of(&client, 9000);
    let hits = st
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_u64)
        .expect("cache.hits");
    assert!(hits >= 1, "shared cache saw repeats: {st:?}");
    server.shutdown();
    server.join();
}

#[test]
fn persistent_cache_survives_restart_and_reports_warm_hits() {
    let dir = tmpdir("warm");
    let cfg = || ServeConfig {
        workers: 1,
        threads: 1,
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    // First server: compute, flush on shutdown.
    {
        let server = Server::start(cfg());
        let client = server.client();
        client.submit(&eval_line(1, 1, ""));
        let v = terminal_for(&client, 1);
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("done"));
        let st = status_of(&client, 2);
        let misses = st
            .get("cache")
            .and_then(|c| c.get("misses"))
            .and_then(Json::as_u64)
            .expect("cache.misses");
        assert!(misses >= 1, "first evaluation is a miss: {st:?}");
        server.shutdown();
        server.join();
    }
    // Second server, same cache dir: the repeat is a warm (disk-tier)
    // hit, visible in `status` under cache.warm_hits and disk.*.
    let server = Server::start(cfg());
    let client = server.client();
    let st0 = status_of(&client, 1);
    let loaded = st0
        .get("disk")
        .and_then(|d| d.get("loaded_entries"))
        .and_then(Json::as_u64)
        .expect("disk.loaded_entries");
    assert!(loaded >= 1, "snapshot loaded on start: {st0:?}");
    client.submit(&eval_line(2, 1, ""));
    let v = terminal_for(&client, 2);
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("done"));
    let st = status_of(&client, 3);
    let warm = st
        .get("cache")
        .and_then(|c| c.get("warm_hits"))
        .and_then(Json::as_u64)
        .expect("cache.warm_hits");
    let misses = st
        .get("cache")
        .and_then(|c| c.get("misses"))
        .and_then(Json::as_u64)
        .expect("cache.misses");
    assert!(warm >= 1, "repeat served from the warm tier: {st:?}");
    assert_eq!(misses, 0, "nothing recomputed after restart: {st:?}");
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_codesign_resumes_bit_identical_after_restart() {
    // Uninterrupted reference run.
    let ref_dir = tmpdir("codesign-ref");
    let reference = {
        let server = Server::start(ServeConfig {
            workers: 1,
            threads: 1,
            cache_dir: Some(ref_dir.clone()),
            ..ServeConfig::default()
        });
        let client = server.client();
        client.submit(&codesign_line(1, "mip-baye", 40, 48, ""));
        let v = terminal_for(&client, 1);
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("done"), "{v:?}");
        let digest = v
            .get("result")
            .and_then(|r| r.get("digest"))
            .and_then(Json::as_str)
            .expect("digest")
            .to_string();
        server.shutdown();
        server.join();
        digest
    };

    // Same request, stopped mid-flight by shutdown (the SIGTERM path),
    // then resumed by a restarted server against the same cache dir.
    let dir = tmpdir("codesign-cut");
    let cfg = || ServeConfig {
        workers: 1,
        threads: 1,
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let first = {
        let server = Server::start(cfg());
        let client = server.client();
        client.submit(&codesign_line(1, "mip-baye", 40, 48, ""));
        // Wait for the worker to pick the search up (its `progress`
        // event), then pull the plug mid-flight.
        let mut terminal = None;
        loop {
            let line = client
                .recv_timeout(test_timeout())
                .expect("response while waiting for pickup");
            let v = serve::json::parse(&line).expect("json");
            match v.get("kind").and_then(Json::as_str) {
                Some("progress") => break,
                // The whole search finished before we saw the pickup.
                Some(_) => {
                    terminal = Some(v);
                    break;
                }
                None => panic!("response without kind: {line}"),
            }
        }
        server.shutdown();
        let v = terminal.unwrap_or_else(|| terminal_for(&client, 1));
        server.join();
        v
    };
    let digest = match first.get("kind").and_then(Json::as_str) {
        // The shutdown landed mid-search: a typed partial, and the
        // checkpoint is on disk. Resume must finish the exact search.
        Some("partial") => {
            assert_eq!(
                first.get("reason").and_then(Json::as_str),
                Some("cancelled"),
                "{first:?}"
            );
            let server = Server::start(cfg());
            let client = server.client();
            client.submit(&codesign_line(2, "mip-baye", 40, 48, ""));
            let v = terminal_for(&client, 2);
            assert_eq!(v.get("kind").and_then(Json::as_str), Some("done"), "{v:?}");
            let d = v
                .get("result")
                .and_then(|r| r.get("digest"))
                .and_then(Json::as_str)
                .expect("digest")
                .to_string();
            server.shutdown();
            server.join();
            d
        }
        // The search beat the shutdown; its digest still pins equality.
        Some("done") => first
            .get("result")
            .and_then(|r| r.get("digest"))
            .and_then(Json::as_str)
            .expect("digest")
            .to_string(),
        other => panic!("unexpected terminal kind {other:?}: {first:?}"),
    };
    assert_eq!(
        digest, reference,
        "resumed codesign must be bit-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn mid_request_deadline_yields_typed_partial() {
    let server = Server::start(ServeConfig {
        workers: 1,
        threads: 1,
        ..ServeConfig::default()
    });
    let client = server.client();
    // A deliberately over-budget search under a tight deadline: the
    // worker starts it (the deadline has not expired at pickup) and the
    // search stops cooperatively at a generation boundary.
    client.submit(&codesign_line(1, "mip-baye", 4000, 48, ",\"deadline_ms\":50"));
    let v = terminal_for(&client, 1);
    match v.get("kind").and_then(Json::as_str) {
        Some("partial") => {
            assert_eq!(v.get("reason").and_then(Json::as_str), Some("deadline"), "{v:?}");
            let planned = v.get("planned_gens").and_then(Json::as_u64).expect("planned");
            let completed = v.get("completed_gens").and_then(Json::as_u64).expect("completed");
            assert!(completed < planned, "stopped early: {completed}/{planned}");
        }
        // A fast machine may finish 4000 generations inside 50ms; that
        // is a legal outcome, not a failure — the contract is "answered
        // by deadline, typed, no hang".
        Some("done") => {}
        other => panic!("unexpected terminal kind {other:?}: {v:?}"),
    }
    server.shutdown();
    server.join();
}

#[test]
fn outstanding_drains_to_zero_after_fast_evals() {
    // Regression: the cancel entry must be registered before the job
    // becomes visible to a worker. A cache-hit eval completes in
    // microseconds; when the worker's post-response cleanup ran before
    // the submitter's insert, the stale entry kept `outstanding()`
    // nonzero forever and the socket pump never hung up after EOF.
    let server = Server::start(ServeConfig {
        workers: 2,
        threads: 1,
        ..ServeConfig::default()
    });
    let client = server.client();
    // Warm the one shape, then hammer it: every later run is a cache
    // hit racing the submitting thread.
    for id in 0..=200u64 {
        client.submit(&eval_line(id, 1, ""));
        let v = terminal_for(&client, id);
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("done"), "{v:?}");
    }
    // Cleanup runs after the response is sent, so poll briefly.
    assert!(
        wait_until(|| client.outstanding() == 0),
        "outstanding stuck at {} after every response arrived",
        client.outstanding()
    );
    server.shutdown();
    server.join();
}

/// Blocking line source for [`serve::run_stdio`]: `read` parks on the
/// channel until the test feeds more bytes, like a terminal would.
struct ChannelReader {
    rx: std::sync::mpsc::Receiver<Vec<u8>>,
    buf: Vec<u8>,
    pos: usize,
}

impl std::io::Read for ChannelReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(b) => {
                    self.buf = b;
                    self.pos = 0;
                }
                Err(_) => return Ok(0), // sender dropped: EOF
            }
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

struct SharedOut(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl std::io::Write for SharedOut {
    fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("out lock").extend_from_slice(b);
        Ok(b.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn stdio_session_answers_before_the_next_input_line() {
    // Regression: an interactive client writes one request and waits
    // for its response before writing the next line. run_stdio used to
    // forward responses only after the next submitted line, so this
    // pattern deadlocked against its blocking input read.
    let (tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
    let reader = std::io::BufReader::new(ChannelReader {
        rx,
        buf: Vec::new(),
        pos: 0,
    });
    let out = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let session = {
        let out = SharedOut(std::sync::Arc::clone(&out));
        std::thread::spawn(move || {
            serve::run_stdio(
                reader,
                out,
                ServeConfig {
                    workers: 1,
                    threads: 1,
                    ..ServeConfig::default()
                },
            )
        })
    };
    tx.send(b"{\"v\":1,\"id\":1,\"req\":\"status\"}\n".to_vec())
        .expect("feed request");
    assert!(
        wait_until(|| {
            out.lock()
                .expect("out lock")
                .split(|&b| b == b'\n')
                .any(|l| !l.is_empty())
        }),
        "no response arrived while the input was idle"
    );
    tx.send(b"{\"v\":1,\"id\":2,\"req\":\"shutdown\"}\n".to_vec())
        .expect("feed shutdown");
    drop(tx);
    session
        .join()
        .expect("stdio session thread")
        .expect("stdio session io");
    let text = String::from_utf8(out.lock().expect("out lock").clone()).expect("utf8");
    let ids: Vec<u64> = text
        .lines()
        .map(|l| {
            serve::json::parse(l)
                .expect("response line is JSON")
                .get("id")
                .and_then(Json::as_u64)
                .expect("response id")
        })
        .collect();
    assert!(
        ids.contains(&1) && ids.contains(&2),
        "both requests answered: {text}"
    );
}

#[test]
fn metrics_verb_reports_telemetry_with_stable_rendering() {
    let server = Server::start(ServeConfig {
        workers: 1,
        threads: 1,
        ..ServeConfig::default()
    });
    let client = server.client();
    // One eval populates the stage and verb histograms, and its terminal
    // response must echo a server-minted trace id.
    client.submit(&eval_line(1, 1, ""));
    let done = terminal_for(&client, 1);
    assert_eq!(done.get("kind").and_then(Json::as_str), Some("done"));
    assert!(
        done.get("trace").and_then(Json::as_u64).is_some_and(|t| t > 0),
        "eval response carries a trace id: {done:?}"
    );
    // Raw line, not the parsed value: the wire rendering itself must be
    // canonical (sorted keys at every level), i.e. re-rendering the
    // parsed tree reproduces the line byte for byte.
    client.submit(r#"{"v":1,"id":2,"req":"metrics","flight":true}"#);
    let line = loop {
        let l = client.recv_timeout(test_timeout()).expect("metrics reply");
        let v = serve::json::parse(&l).expect("json");
        if v.get("id").and_then(Json::as_u64) == Some(2) {
            break l;
        }
    };
    let v = serve::json::parse(&line).expect("metrics line is JSON");
    assert_eq!(v.render(), line, "metrics rendering is canonical/sorted");
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("done"));
    let result = v.get("result").expect("metrics result");
    assert!(
        result.get("uptime_ms").and_then(Json::as_u64).is_some(),
        "{result:?}"
    );
    // Every submitted line records a parse stage; the eval recorded its
    // end-to-end verb latency.
    let parse_count = result
        .get("stages")
        .and_then(|s| s.get("parse_us"))
        .and_then(|h| h.get("count"))
        .and_then(Json::as_u64)
        .expect("stages.parse_us.count");
    assert!(parse_count >= 2, "{result:?}");
    let eval_count = result
        .get("verbs")
        .and_then(|s| s.get("eval_pu"))
        .and_then(|h| h.get("count"))
        .and_then(Json::as_u64)
        .expect("verbs.eval_pu.count");
    assert!(eval_count >= 1, "{result:?}");
    for q in ["p50", "p90", "p99", "p999"] {
        assert!(
            result
                .get("verbs")
                .and_then(|s| s.get("eval_pu"))
                .and_then(|h| h.get(q))
                .and_then(Json::as_u64)
                .is_some(),
            "verbs.eval_pu.{q} present: {result:?}"
        );
    }
    assert!(result.get("flight").is_some(), "flight dump embedded: {result:?}");
    assert!(result.get("recorder").is_some(), "{result:?}");
    // The extended status surface rides along: uptime, queue high-water
    // mark, deadline-miss counter.
    let st = status_of(&client, 3);
    assert!(st.get("uptime_ms").and_then(Json::as_u64).is_some(), "{st:?}");
    let hw = st
        .get("queue")
        .and_then(|q| q.get("high_water"))
        .and_then(Json::as_u64)
        .expect("queue.high_water");
    assert!(hw >= 1, "one job was queued: {st:?}");
    assert!(
        st.get("counters")
            .and_then(|c| c.get("deadline_misses"))
            .and_then(Json::as_u64)
            .is_some(),
        "{st:?}"
    );
    server.shutdown();
    server.join();
}

#[test]
fn cancel_interrupts_a_queued_request() {
    // One worker, occupied by a long search; the second request is still
    // queued when the cancel lands, so it answers `partial:cancelled`
    // without running.
    let server = Server::start(ServeConfig {
        workers: 1,
        threads: 1,
        ..ServeConfig::default()
    });
    let client = server.client();
    client.submit(&codesign_line(1, "mip-heuristic", 6, 600, ",\"deadline_ms\":2000"));
    client.submit(&eval_line(2, 1, ""));
    client.submit(r#"{"v":1,"id":3,"req":"cancel","target":2}"#);
    let mut resps = collect_terminals(&client, &[1, 2, 3]);
    let cancel_resp = resps.remove(&3).expect("cancel response");
    assert_eq!(cancel_resp.get("kind").and_then(Json::as_str), Some("done"));
    let v = resps.remove(&2).expect("eval response");
    match v.get("kind").and_then(Json::as_str) {
        Some("partial") => {
            assert_eq!(v.get("reason").and_then(Json::as_str), Some("cancelled"), "{v:?}");
        }
        // Lost the race: the eval ran before the cancel landed. Legal —
        // the cancel then reports found or not depending on exactly when
        // it interleaved with the response, so only the kind is pinned.
        Some("done") => {}
        other => panic!("unexpected terminal kind {other:?}: {v:?}"),
    }
    let first = resps.remove(&1).expect("codesign response");
    assert!(
        matches!(
            first.get("kind").and_then(Json::as_str),
            Some("done") | Some("partial")
        ),
        "{first:?}"
    );
    server.shutdown();
    server.join();
}
