//! Chaos-grade integration suite for the `spa-fleet` sharded service.
//!
//! Every test here runs a real fleet: N `spa-serve` child processes
//! (resolved via `SPA_SERVE_BIN` / the cargo test env / a sibling
//! binary), a router consistent-hashing work across them, and the
//! probe/snapshot maintenance loops. The invariants under fire:
//!
//! * **Zero lost accepted requests** — every submitted line gets
//!   exactly one terminal response (`done` | typed `partial` | typed
//!   `error`), through SIGKILL and SIGTERM of individual shards, torn
//!   checkpoint writes, poisoned cache entries, and dropped forwards.
//! * **Bit-identical failover** — a codesign whose owning shard dies
//!   mid-search finishes on the restarted shard with the same result
//!   digest as an uninterrupted run.
//! * **Warm restarts** — the snapshot exchange means a shard killed
//!   after a flush comes back already knowing what the fleet knows.
//! * **Typed overload** — past the router's hard watermark, requests
//!   shed with `error code:"overloaded"`, never hang or drop.
//!
//! All waits go through `serve::testkit` (`SERVE_TEST_TIMEOUT_MS`).

use serve::fleet::{resolve_server_bin, Fleet, FleetConfig};
use serve::json::Json;
use serve::ring::{route_key, Ring};
use serve::router::FleetSession;
use serve::testkit::{test_timeout, wait_until};
use serve::{ServeConfig, Server};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fleet-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("mkdir");
    p
}

fn fleet_cfg(dir: &std::path::Path) -> FleetConfig {
    let mut cfg = FleetConfig::new(dir);
    cfg.shards = 3;
    cfg.probe_ms = 25;
    // Exchanges are driven explicitly (`exchange_now`) so tests are not
    // racing a background merge.
    cfg.snapshot_ms = 0;
    cfg.soft_cap = 4096;
    assert!(
        resolve_server_bin().is_some(),
        "no spa-serve binary found; set SPA_SERVE_BIN"
    );
    cfg
}

fn eval_line(id: u64, k: usize) -> String {
    format!(
        "{{\"v\":1,\"id\":{id},\"req\":\"eval_pu\",\"dataflow\":\"best\",\
         \"layer\":{{\"in_c\":{},\"in_h\":14,\"in_w\":14,\"out_c\":{},\"out_h\":14,\"out_w\":14,\
         \"kernel\":3,\"stride\":1,\"groups\":1,\"is_fc\":false}},\
         \"pu\":{{\"rows\":16,\"cols\":16}}}}",
        8 * (k % 7 + 1),
        16 * (k % 5 + 1)
    )
}

fn codesign_line(id: u64, hw_iters: usize, seg_iters: usize) -> String {
    format!(
        "{{\"v\":1,\"id\":{id},\"req\":\"codesign\",\"model\":\"alexnet\",\
         \"budget\":\"eyeriss\",\"method\":\"mip-baye\",\
         \"hw_iters\":{hw_iters},\"seg_iters\":{seg_iters},\"seed\":3}}"
    )
}

/// Collects one terminal response per id (progress lines are skipped),
/// panicking with the missing set if the testkit budget elapses. Every
/// terminal must be typed: `done`, `partial` with a reason, or `error`
/// with a non-empty code.
fn collect_terminals(session: &FleetSession, ids: &[u64]) -> BTreeMap<u64, Json> {
    let budget = test_timeout();
    let deadline = std::time::Instant::now() + budget;
    let mut out = BTreeMap::new();
    while out.len() < ids.len() {
        assert!(
            std::time::Instant::now() < deadline,
            "lost requests: no terminal for {:?} within {budget:?}",
            ids.iter().filter(|i| !out.contains_key(*i)).collect::<Vec<_>>()
        );
        let Some(line) = session.recv_timeout(Duration::from_millis(100)) else {
            continue;
        };
        let v = serve::json::parse(&line).expect("response line is JSON");
        let id = v.get("id").and_then(Json::as_u64).expect("response id");
        match v.get("kind").and_then(Json::as_str) {
            Some("progress") => continue,
            Some("partial") => {
                assert!(
                    v.get("reason").and_then(Json::as_str).is_some(),
                    "untyped partial: {line}"
                );
                out.insert(id, v);
            }
            Some("error") => {
                let code = v.get("code").and_then(Json::as_str).expect("error code");
                assert!(!code.is_empty(), "untyped error: {line}");
                out.insert(id, v);
            }
            Some("done") => {
                out.insert(id, v);
            }
            other => panic!("unexpected response kind {other:?}: {line}"),
        }
    }
    out
}

/// Direct status rpc against one shard's own socket (bypassing the
/// router) — how the tests observe per-shard cache state.
fn shard_status(sock: &std::path::Path) -> Option<Json> {
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::os::unix::net::UnixStream::connect(sock).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    writeln!(stream, "{{\"v\":1,\"id\":999999902,\"req\":\"status\"}}").ok()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).ok()?;
    let v = serve::json::parse(line.trim()).ok()?;
    v.get("result").cloned()
}

/// The headline chaos run: 256 pipelined client sessions across 16 OS
/// threads drive two waves of evals into a 3-shard fleet while the main
/// thread SIGKILLs one shard and SIGTERMs another. Every request must
/// resolve to a typed terminal — the router re-sends work the dead
/// shards accepted but never answered.
#[test]
fn chaos_256_clients_survive_shard_kills_with_zero_lost_requests() {
    const THREADS: u64 = 16;
    const SESSIONS_PER_THREAD: u64 = 16;
    const REQS_PER_WAVE: u64 = 2;
    let dir = tmpdir("chaos");
    let fleet = Fleet::start(fleet_cfg(&dir)).expect("fleet starts");
    let killed_pid = {
        let mut pid = None;
        wait_until(|| {
            pid = fleet.shard_pid(1);
            pid.is_some() && fleet.router().shard_up(1)
        });
        pid.expect("shard 1 running")
    };

    let router = fleet.router();
    let answered: Vec<(u64, String)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let router = std::sync::Arc::clone(router);
            handles.push(s.spawn(move || {
                let sessions: Vec<FleetSession> =
                    (0..SESSIONS_PER_THREAD).map(|_| router.session()).collect();
                let mut out = Vec::new();
                for wave in 0..2u64 {
                    // Pipeline the whole wave across all sessions first,
                    // then collect — so kills land on in-flight work.
                    for (si, session) in sessions.iter().enumerate() {
                        for i in 0..REQS_PER_WAVE {
                            let id = wave * 1000 + 100 + i;
                            let shape = (t as usize) + si + (wave as usize) + (i as usize);
                            session.submit(&eval_line(id, shape % 8));
                        }
                    }
                    for session in &sessions {
                        let ids: Vec<u64> =
                            (0..REQS_PER_WAVE).map(|i| wave * 1000 + 100 + i).collect();
                        for (id, v) in collect_terminals(session, &ids) {
                            let kind = v
                                .get("kind")
                                .and_then(Json::as_str)
                                .expect("kind")
                                .to_string();
                            out.push((id, kind));
                        }
                    }
                }
                out
            }));
        }
        // Chaos from the main thread while the waves are in flight.
        std::thread::sleep(Duration::from_millis(30));
        fleet.kill_shard(1, false); // SIGKILL: no drain, no checkpoint
        assert!(
            wait_until(|| fleet.shard_pid(1).is_some_and(|p| p != killed_pid)),
            "shard 1 was not respawned"
        );
        std::thread::sleep(Duration::from_millis(30));
        fleet.kill_shard(2, true); // SIGTERM: graceful drain path
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });

    let expected = THREADS * SESSIONS_PER_THREAD * 2 * REQS_PER_WAVE;
    assert_eq!(
        answered.len() as u64,
        expected,
        "every request answered exactly once"
    );
    // With the soft cap far above the offered load nothing sheds, and
    // evals are idempotent recomputes — so chaos or not, every single
    // answer is a successful `done`.
    for (id, kind) in &answered {
        assert_eq!(kind, "done", "request {id} answered {kind}");
    }
    assert!(
        wait_until(|| fleet.shard_pid(2).is_some() && fleet.router().shard_up(2)),
        "shard 2 respawned after SIGTERM"
    );
    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill the shard that owns an in-flight codesign and require the
/// restarted shard to finish it with a digest bit-identical to an
/// uninterrupted single-server run of the same request.
#[test]
fn codesign_failover_resumes_bit_identical_after_owner_shard_dies() {
    // Reference digest from an uninterrupted in-process server — the
    // shard binary runs the identical engine, so digests must agree
    // across the process boundary too.
    let ref_dir = tmpdir("failover-ref");
    let reference = {
        let server = Server::start(ServeConfig {
            workers: 1,
            threads: 1,
            cache_dir: Some(ref_dir.clone()),
            ..ServeConfig::default()
        });
        let client = server.client();
        client.submit(&codesign_line(1, 40, 48));
        let digest = loop {
            let line = client.recv_timeout(test_timeout()).expect("reference result");
            let v = serve::json::parse(&line).expect("json");
            match v.get("kind").and_then(Json::as_str) {
                Some("progress") => continue,
                Some("done") => {
                    break v
                        .get("result")
                        .and_then(|r| r.get("digest"))
                        .and_then(Json::as_str)
                        .expect("digest")
                        .to_string()
                }
                other => panic!("unexpected reference terminal {other:?}: {line}"),
            }
        };
        server.shutdown();
        server.join();
        digest
    };

    let dir = tmpdir("failover");
    let cfg = fleet_cfg(&dir);
    let owner = {
        let env = serve::proto::parse_request(&codesign_line(1, 40, 48)).expect("parses");
        let key = route_key(&env.request).expect("codesign routes");
        Ring::new(cfg.shards, cfg.vnodes).assign(&key)
    };
    let fleet = Fleet::start(cfg).expect("fleet starts");
    assert!(
        wait_until(|| fleet.router().shard_up(owner)),
        "owner shard {owner} up"
    );
    let owner_pid = fleet.shard_pid(owner).expect("owner running");
    let session = fleet.router().session();
    session.submit(&codesign_line(1, 40, 48));
    // Wait for the search to be demonstrably in flight on the owner (its
    // first progress event), then pull the plug. If the search is so
    // fast the terminal beats the progress event, the equality check
    // below still pins the digest.
    let mut terminal: Option<Json> = None;
    loop {
        let line = session.recv_timeout(test_timeout()).expect("pickup or terminal");
        let v = serve::json::parse(&line).expect("json");
        match v.get("kind").and_then(Json::as_str) {
            Some("progress") => {
                assert_eq!(
                    v.get("shard").and_then(Json::as_u64),
                    Some(owner as u64),
                    "progress from the ring-assigned owner: {line}"
                );
                break;
            }
            Some(_) => {
                terminal = Some(v);
                break;
            }
            None => panic!("response without kind: {line}"),
        }
    }
    if terminal.is_none() {
        // SIGTERM: the shard checkpoints the running search, answers a
        // restart-artifact partial the router retries, and dies; the
        // respawned process resumes from the checkpoint.
        assert!(fleet.kill_shard(owner, true), "kill owner shard {owner}");
        assert!(
            wait_until(|| fleet.shard_pid(owner).is_some_and(|p| p != owner_pid)),
            "owner shard respawned"
        );
    }
    let v = terminal
        .unwrap_or_else(|| collect_terminals(&session, &[1]).remove(&1).expect("terminal"));
    assert_eq!(
        v.get("kind").and_then(Json::as_str),
        Some("done"),
        "failover resolves the codesign: {v:?}"
    );
    let digest = v
        .get("result")
        .and_then(|r| r.get("digest"))
        .and_then(Json::as_str)
        .expect("digest");
    assert_eq!(
        digest, reference,
        "resumed codesign must be bit-identical to the uninterrupted run"
    );
    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// Shard-side faults (torn checkpoint writes, poisoned cache entries)
/// plus a router-side dropped forward: everything still resolves typed,
/// and the dropped forward is re-sent by housekeeping.
#[test]
fn injected_faults_resolve_typed_with_no_lost_requests() {
    let dir = tmpdir("faults");
    let mut cfg = fleet_cfg(&dir);
    // Every shard tears its first checkpoint write and poisons its
    // first cache probe; both paths must degrade typed (recompute /
    // cold-start), never panic the shard or hang the router.
    cfg.extra_env = vec![(
        "FAULT_PLAN".to_string(),
        "ckpt.torn@1,cache.poison@1".to_string(),
    )];
    let fleet = Fleet::start(cfg).expect("fleet starts");
    // Router-side plan: drop the 2nd forward on the floor (the line is
    // accepted but never hits the wire); the probe loop's housekeeping
    // must re-send it. `exclusive` serialises faultsim state against
    // other tests in this process.
    let guard = faultsim::exclusive();
    faultsim::arm("fleet.forward@2").expect("plan parses");
    let session = fleet.router().session();
    let ids: Vec<u64> = (1..=8).collect();
    for &id in &ids {
        session.submit(&eval_line(id, id as usize));
    }
    session.submit(&codesign_line(9, 2, 4));
    let mut all = ids.clone();
    all.push(9);
    let resps = collect_terminals(&session, &all);
    for (id, v) in &resps {
        assert_eq!(
            v.get("kind").and_then(Json::as_str),
            Some("done"),
            "request {id} under injected faults: {v:?}"
        );
    }
    assert!(
        faultsim::injected().iter().any(|f| f.contains("fleet.forward")),
        "the router-side fault actually fired: {:?}",
        faultsim::injected()
    );
    faultsim::disarm();
    drop(guard);
    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Past the hard admission watermark the router sheds with a typed
/// `overloaded` error immediately — and recovers: once the burst
/// drains, new work is admitted again.
#[test]
fn overload_sheds_typed_and_recovers() {
    let dir = tmpdir("shed");
    let mut cfg = fleet_cfg(&dir);
    cfg.soft_cap = 1; // hard watermark = 2
    let fleet = Fleet::start(cfg).expect("fleet starts");
    let session = fleet.router().session();
    let ids: Vec<u64> = (1..=32).collect();
    for &id in &ids {
        session.submit(&eval_line(id, id as usize));
    }
    let resps = collect_terminals(&session, &ids);
    let shed = resps
        .values()
        .filter(|v| {
            v.get("kind").and_then(Json::as_str) == Some("error")
                && v.get("code").and_then(Json::as_str) == Some("overloaded")
        })
        .count();
    let done = resps
        .values()
        .filter(|v| v.get("kind").and_then(Json::as_str) == Some("done"))
        .count();
    assert_eq!(shed + done, ids.len(), "typed shed or done, nothing else");
    assert!(
        shed >= 1,
        "a 32-deep pipelined burst over watermark 2 must shed: {done} done"
    );
    assert!(done >= 1, "admitted work still completes under overload");
    // Recovery: the burst has drained, so a fresh request is admitted.
    assert!(wait_until(|| fleet.router().inflight() == 0));
    session.submit(&eval_line(100, 1));
    let v = collect_terminals(&session, &[100]).remove(&100).expect("terminal");
    assert_eq!(
        v.get("kind").and_then(Json::as_str),
        Some("done"),
        "admission recovers after the burst: {v:?}"
    );
    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The snapshot exchange makes warm state survive a SIGKILL: after a
/// flush+merge, a restarted shard answers a repeat eval from its disk
/// snapshot (warm hit) instead of recomputing.
#[test]
fn snapshot_exchange_warms_a_killed_shard() {
    let dir = tmpdir("warm");
    let fleet = Fleet::start(fleet_cfg(&dir)).expect("fleet starts");
    let session = fleet.router().session();
    session.submit(&eval_line(1, 3));
    let v = collect_terminals(&session, &[1]).remove(&1).expect("terminal");
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("done"), "{v:?}");
    let owner = usize::try_from(
        v.get("shard").and_then(Json::as_u64).expect("shard tag"),
    )
    .expect("small");
    // Synchronous fleet-wide flush + merge; the union lands in every
    // shard directory, including the one about to die.
    assert!(fleet.exchange_now() >= 1, "merged snapshot has the entry");
    let pid = fleet.shard_pid(owner).expect("owner running");
    assert!(fleet.kill_shard(owner, false), "SIGKILL owner {owner}");
    assert!(
        wait_until(|| fleet.shard_pid(owner).is_some_and(|p| p != pid)
            && fleet.router().shard_up(owner)),
        "owner respawned and reconnected"
    );
    // Same key routes to the same shard; the respawned process must
    // answer it from the loaded snapshot.
    session.submit(&eval_line(2, 3));
    let v = collect_terminals(&session, &[2]).remove(&2).expect("terminal");
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("done"), "{v:?}");
    assert_eq!(
        v.get("shard").and_then(Json::as_u64),
        Some(owner as u64),
        "repeat routed to the restarted owner"
    );
    let ok = wait_until(|| {
        shard_status(&fleet.shard_socket(owner)).is_some_and(|st| {
            let loaded = st
                .get("disk")
                .and_then(|d| d.get("loaded_entries"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            let warm = st
                .get("cache")
                .and_then(|c| c.get("warm_hits"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            loaded >= 1 && warm >= 1
        })
    });
    assert!(
        ok,
        "restarted shard loaded the merged snapshot and served a warm hit: {:?}",
        shard_status(&fleet.shard_socket(owner))
    );
    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
