//! Property tests for the `spa-fleet` consistent-hash ring.
//!
//! Hand-rolled seeded loops rather than a property-testing crate so the
//! suite runs under the registry-free offline harness. Every bound here
//! is pinned from measurement (10k keys, 2-8 shards) with margin — a
//! regression in the hash, the mixer, or the point layout trips one of
//! these long before it shows up as a hot shard in production.
//!
//! The properties:
//! * **cross-process determinism** — assignments are a pure function of
//!   `(key, shards, vnodes)`, pinned against hard-coded expected values
//!   so a different process (or a different build) must agree;
//! * **join moves ~1/N** — growing the fleet by one shard reassigns
//!   close to the new shard's ideal share, and *only onto* the new
//!   shard (`wrong-dest == 0`, exact: old shards' points don't move);
//! * **leave is the mirror image** — removing the last shard only
//!   reassigns keys that shard owned;
//! * **balance** — with the avalanche mixer, per-shard load stays
//!   within a pinned envelope of ideal.

use serve::ring::{fnv1a, ring_hash, Ring, DEFAULT_VNODES};

const KEYS: usize = 10_000;

fn keys() -> Vec<String> {
    // Deliberately near-identical strings: the adversarial case for
    // FNV-style hashes, and the shape real route keys actually have.
    (0..KEYS).map(|i| format!("key-{i}-x")).collect()
}

#[test]
fn assignment_is_pinned_across_processes() {
    // Hard-coded expectations computed once and frozen. If any of these
    // move, every deployed router disagrees with every checkpoint file
    // written under the old ring — that is a wire-breaking change and
    // must be deliberate.
    let ring = Ring::new(3, DEFAULT_VNODES);
    let pinned: &[(&str, usize)] = &[
        (
            "eval:3.32.32.16.32.32.k3.s1.g1.fc0:16x16.a4096.w4096.f4645744490609377280:best",
            1,
        ),
        ("segment:alexnet:eyeriss", 0),
        ("codesign:alexnet:eyeriss:mip-baye:4:8:3", 2),
        ("key-0-x", 0),
        ("key-1-x", 0),
        ("key-2-x", 2),
        ("key-3-x", 1),
        ("key-4-x", 0),
        ("key-5-x", 0),
        ("key-6-x", 1),
        ("key-7-x", 0),
    ];
    for &(key, shard) in pinned {
        assert_eq!(ring.assign(key), shard, "pinned assignment for {key:?}");
    }
    // The underlying hashes are pinned too, one level down each.
    assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    assert_eq!(ring_hash(b"key-0-x"), 0xc359_4d18_7ca3_6aec);
}

#[test]
fn rebuilt_rings_agree_exactly() {
    for shards in 1..=8 {
        let a = Ring::new(shards, DEFAULT_VNODES);
        let b = Ring::new(shards, DEFAULT_VNODES);
        for key in keys().iter().step_by(7) {
            assert_eq!(a.assign(key), b.assign(key), "shards={shards} key={key}");
        }
    }
}

#[test]
fn join_moves_about_one_nth_and_only_onto_the_new_shard() {
    let keys = keys();
    for shards in 2..=8 {
        let before = Ring::new(shards, DEFAULT_VNODES);
        let after = Ring::new(shards + 1, DEFAULT_VNODES);
        let mut moved = 0usize;
        for key in &keys {
            let a = before.assign(key);
            let b = after.assign(key);
            if a != b {
                moved += 1;
                // Exact property, not statistical: a join only adds ring
                // points, so a key's owner changes iff the new shard's
                // point lands between the key and its old successor.
                assert_eq!(
                    b, shards,
                    "key {key:?} moved {a} -> {b}, not onto the joining shard"
                );
            }
        }
        // Measured: 0.85x-1.17x of the joining shard's ideal share.
        let ideal = KEYS as f64 / (shards + 1) as f64;
        let ratio = moved as f64 / ideal;
        assert!(
            ratio > 0.5 && ratio < 1.6,
            "shards={shards}: moved {moved} keys, {ratio:.2}x the ideal 1/N share"
        );
    }
}

#[test]
fn leave_only_reassigns_the_departing_shards_keys() {
    let keys = keys();
    for shards in 3..=8 {
        let before = Ring::new(shards, DEFAULT_VNODES);
        let after = Ring::new(shards - 1, DEFAULT_VNODES);
        for key in &keys {
            let a = before.assign(key);
            let b = after.assign(key);
            if a != shards - 1 {
                // Keys not owned by the departing shard must not move:
                // shard s's points are hashed from "shard-{s}/vnode-{v}"
                // independent of fleet size, so survivors keep theirs.
                assert_eq!(a, b, "key {key:?} moved {a} -> {b} on leave");
            } else {
                assert_ne!(b, shards - 1, "departed shard still assigned");
            }
        }
    }
}

#[test]
fn balance_stays_inside_the_pinned_envelope() {
    let keys = keys();
    for shards in 2..=8 {
        let ring = Ring::new(shards, DEFAULT_VNODES);
        let mut loads = vec![0usize; shards];
        for key in &keys {
            loads[ring.assign(key)] += 1;
        }
        let ideal = KEYS as f64 / shards as f64;
        let max = *loads.iter().max().expect("nonempty") as f64 / ideal;
        let min = *loads.iter().min().expect("nonempty") as f64 / ideal;
        // Measured with the splitmix mixer: max <= 1.20, min >= 0.79.
        // Without the mixer raw FNV clusters to max 2.79 / min 0.16 on
        // these keys — this envelope is the regression guard for it.
        assert!(max <= 1.45, "shards={shards}: hottest shard {max:.2}x ideal");
        assert!(min >= 0.55, "shards={shards}: coldest shard {min:.2}x ideal");
    }
}

#[test]
fn more_vnodes_tighten_balance() {
    let keys = keys();
    let spread = |vnodes: usize| -> f64 {
        let ring = Ring::new(5, vnodes);
        let mut loads = vec![0usize; 5];
        for key in &keys {
            loads[ring.assign(key)] += 1;
        }
        let max = *loads.iter().max().expect("nonempty") as f64;
        let min = *loads.iter().min().expect("nonempty") as f64;
        max / min
    };
    // Not monotone per-step (hash noise), but 16 -> 256 must shrink the
    // max/min ratio: that is the whole point of virtual nodes.
    assert!(
        spread(256) < spread(16),
        "vnodes=256 spread {:.2} not tighter than vnodes=16 spread {:.2}",
        spread(256),
        spread(16)
    );
}

#[test]
fn degenerate_rings_are_total() {
    // Zero-clamping: shards=0/vnodes=0 behave as 1, assign never panics.
    let ring = Ring::new(0, 0);
    assert_eq!(ring.shards(), 1);
    assert_eq!(ring.vnodes(), 1);
    assert_eq!(ring.assign(""), 0);
    assert_eq!(ring.assign("anything"), 0);
}
