//! Seeded fuzz suite for the serve JSON parser and proto decoder.
//!
//! The wire surface of `spa-serve`/`spa-fleet` is one JSON object per
//! line from untrusted clients. The invariant under test: **any** byte
//! sequence yields either a parsed request or a typed error — never a
//! panic, abort, or hang. The corpus is three-pronged:
//!
//! * random byte mutations of valid request lines (seeded xorshift, so
//!   failures reproduce — the seed is in the assertion message);
//! * adversarial hand-built corpora: pathological nesting, escape
//!   abuse, huge numbers, truncations;
//! * pinned regressions for the two defects this suite surfaced when
//!   first written: unbounded recursion on deep nesting (stack
//!   overflow → abort) and `1e999` parsing to a non-finite `f64` that
//!   rendered back as `null`.

use serve::json;
use serve::proto::parse_request;

/// Deterministic xorshift64* — the suite must replay bit-identically.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % (n.max(1) as u64)) as usize
    }
}

/// Valid request lines used as mutation seeds — one per verb.
fn seed_lines() -> Vec<String> {
    vec![
        r#"{"v":1,"id":1,"req":"eval_pu","layer":{"in_c":3,"in_h":32,"in_w":32,"out_c":16,"out_h":32,"out_w":32,"kernel":3,"stride":1,"groups":1,"is_fc":false},"pu":{"rows":16,"cols":16,"act_buf":4096,"wgt_buf":4096,"freq_mhz":800.0},"dataflow":"best"}"#.to_string(),
        r#"{"v":1,"id":2,"req":"segment","model":"alexnet","budget":"eyeriss"}"#.to_string(),
        r#"{"v":1,"id":3,"req":"codesign","model":"alexnet","budget":"eyeriss","method":"mip-baye","hw_iters":4,"seg_iters":8,"seed":3}"#.to_string(),
        r#"{"v":1,"id":4,"req":"status"}"#.to_string(),
        r#"{"v":1,"id":5,"req":"metrics","flight":true}"#.to_string(),
        r#"{"v":1,"id":6,"req":"cancel","target":3}"#.to_string(),
        r#"{"v":1,"id":7,"req":"flush"}"#.to_string(),
        r#"{"v":1,"id":8,"req":"shutdown","priority":2,"deadline_ms":500}"#.to_string(),
    ]
}

/// The property: parsing must return, and must return `Ok` or a typed
/// error — no panic (the test harness aborts on panic across the call),
/// no unbounded recursion (stack overflow aborts the process).
fn must_be_typed(line: &str, ctx: &str) {
    match parse_request(line) {
        Ok(_) => {}
        Err(e) => {
            assert!(!e.code.is_empty(), "{ctx}: error with empty code");
            assert!(
                [
                    "bad-json",
                    "bad-request",
                    "bad-version",
                    "unknown-request",
                ]
                .contains(&e.code),
                "{ctx}: unexpected decoder code {:?} for line {:?}",
                e.code,
                &line[..line.len().min(120)],
            );
        }
    }
}

#[test]
fn random_byte_mutations_never_panic() {
    let seeds = seed_lines();
    for (si, seed_line) in seeds.iter().enumerate() {
        let mut rng = Rng::new(0x5eed_0000 + si as u64);
        for round in 0..2_000 {
            let mut bytes = seed_line.clone().into_bytes();
            // 1-4 point mutations: overwrite, insert, delete, truncate.
            for _ in 0..(1 + rng.below(4)) {
                if bytes.is_empty() {
                    break;
                }
                let pos = rng.below(bytes.len());
                match rng.below(4) {
                    0 => bytes[pos] = (rng.next() & 0xff) as u8,
                    1 => bytes.insert(pos, (rng.next() & 0x7f) as u8),
                    2 => {
                        bytes.remove(pos);
                    }
                    _ => bytes.truncate(pos),
                }
            }
            // The wire reader hands the decoder &str; non-UTF-8 input
            // never reaches it. Mirror that boundary here.
            if let Ok(s) = String::from_utf8(bytes) {
                must_be_typed(&s, &format!("seed {si} round {round}"));
            }
        }
    }
}

#[test]
fn shuffled_and_spliced_fields_never_panic() {
    // Structure-aware mutations: swap chunks between two valid lines so
    // the decoder sees type-confused but often well-formed JSON.
    let seeds = seed_lines();
    let mut rng = Rng::new(0xc0ffee);
    for round in 0..2_000 {
        let a = &seeds[rng.below(seeds.len())];
        let b = &seeds[rng.below(seeds.len())];
        let ca = rng.below(a.len().max(1));
        let cb = rng.below(b.len().max(1));
        let mut spliced = String::new();
        spliced.push_str(&a[..ca.min(a.len())]);
        spliced.push_str(&b[cb.min(b.len())..]);
        must_be_typed(&spliced, &format!("splice round {round}"));
    }
}

#[test]
fn adversarial_nesting_is_typed_not_fatal() {
    // Regression (pinned): unbounded mutual recursion in the parser
    // meant ~100k opening brackets overran the thread stack — an abort
    // the socket loop cannot type. Now a typed error at MAX_DEPTH.
    for deep in [json::MAX_DEPTH + 1, 4_096, 100_000] {
        let arrays = "[".repeat(deep);
        let err = json::parse(&arrays).expect_err("deep arrays must fail");
        assert_eq!(err.reason, "too deeply nested", "depth {deep}");
        let objects = "{\"k\":".repeat(deep);
        let err = json::parse(&objects).expect_err("deep objects must fail");
        assert_eq!(err.reason, "too deeply nested", "depth {deep}");
        // Mixed nesting, closed properly — still beyond the cap.
        let mixed = format!("{}1{}", "[{\"k\":".repeat(deep), "}]".repeat(deep));
        assert!(json::parse(&mixed).is_err(), "mixed depth {deep}");
    }
    // At the cap: parses fine (the protocol itself nests two levels).
    let ok = format!(
        "{}0{}",
        "[".repeat(json::MAX_DEPTH),
        "]".repeat(json::MAX_DEPTH)
    );
    assert!(json::parse(&ok).is_ok());
    must_be_typed(&"[".repeat(100_000), "deep nesting through the decoder");
}

#[test]
fn overflowing_numbers_are_typed_not_infinite() {
    // Regression (pinned): "1e999" parsed to f64::INFINITY, which the
    // renderer degrades to null — a silent wire corruption. Now typed.
    for bad in ["1e999", "-1e999", "1e309", "9e999999999", "123456789e400"] {
        let err = json::parse(bad).expect_err(bad);
        assert_eq!(err.reason, "number out of range", "{bad}");
    }
    must_be_typed(r#"{"v":1e999,"id":1,"req":"status"}"#, "inf version");
    must_be_typed(r#"{"v":1,"id":1e999,"req":"status"}"#, "inf id");
    // Finite extremes still work.
    assert!(json::parse("1e308").is_ok());
    assert!(json::parse("-1.7976931348623157e308").is_ok());
    assert!(json::parse("5e-324").is_ok());
    assert!(json::parse("1e-999").is_ok(), "underflows to zero");
}

#[test]
fn escape_abuse_corpus_is_typed() {
    let cases = [
        r#""\"#,                        // lone backslash at end
        r#""\u""#,                      // truncated \u
        r#""\u12""#,                    // short \u
        r#""\ud800""#,                  // lone high surrogate
        r#""\udc00""#,                  // lone low surrogate
        r#""\ud800\ud800""#,            // high+high
        r#""\ud800\u0041""#,            // high+non-surrogate
        r#""\uD83D\uDE00""#,            // valid pair (must parse)
        r#""\q""#,                      // unknown escape
        r#""\u{1f600}""#,               // rust-style escape (invalid JSON)
        "\"\\u0000\"",                  // NUL via escape (valid)
        "\"a\u{7f}b\"",                 // raw DEL char (valid)
    ];
    for c in cases {
        let _ = json::parse(c); // must return, Ok or Err
        must_be_typed(&format!(r#"{{"v":1,"id":1,"req":{c}}}"#), c);
    }
    // Escape bombs: long runs of escapes must not blow up.
    let bomb = format!("\"{}\"", "\\u0041".repeat(20_000));
    assert_eq!(
        json::parse(&bomb).expect("escape run parses"),
        json::Json::Str("A".repeat(20_000))
    );
}

#[test]
fn truncation_sweep_of_every_seed_is_typed() {
    // Every prefix of every valid line: the classic torn-write shape.
    for (si, line) in seed_lines().iter().enumerate() {
        for cut in 0..line.len() {
            if line.is_char_boundary(cut) {
                must_be_typed(&line[..cut], &format!("seed {si} cut {cut}"));
            }
        }
    }
}

#[test]
fn decoder_type_confusion_corpus_is_typed() {
    let cases = [
        r#"{"v":"1","id":1,"req":"status"}"#,          // string version
        r#"{"v":1,"id":"x","req":"status"}"#,          // string id
        r#"{"v":1,"id":1,"req":42}"#,                  // numeric req
        r#"{"v":1,"id":1,"req":["status"]}"#,          // array req
        r#"{"v":1,"id":-1,"req":"status"}"#,           // negative id
        r#"{"v":1,"id":1.5,"req":"status"}"#,          // fractional id
        r#"{"v":1,"id":18446744073709551616,"req":"status"}"#, // above u64
        r#"{"v":1,"id":1,"req":"eval_pu","layer":null,"pu":null,"dataflow":null}"#,
        r#"{"v":1,"id":1,"req":"eval_pu","layer":{},"pu":{},"dataflow":"WS"}"#,
        r#"{"v":1,"id":1,"req":"codesign","model":3,"budget":true,"method":[]}"#,
        r#"{"v":1,"id":1,"req":"cancel","target":"self"}"#,
        r#"{"v":1,"id":1,"req":"status","priority":"high"}"#,
        r#"{"v":1,"id":1,"req":"status","deadline_ms":1.5}"#,
        "null",
        "[]",
        "0",
        "\"status\"",
    ];
    for c in cases {
        must_be_typed(c, c);
        match parse_request(c) {
            Ok(env) => panic!("{c:?} should not decode, got {env:?}"),
            Err(e) => assert!(!e.code.is_empty()),
        }
    }
}
