//! Discrete black-box optimization used by the co-design baselines of
//! Section VI-G ("MIP-Random", "MIP-Baye", "Baye-Heuristic", "Baye-Baye").
//!
//! Two seeded, deterministic optimizers over integer-indexed search spaces:
//!
//! * [`RandomSearch`] — uniform sampling;
//! * [`Tpe`] — a tree-structured Parzen estimator: past observations are
//!   split into a good quantile and the rest, candidates are drawn from a
//!   smoothed per-dimension model of the good set and ranked by the
//!   likelihood ratio `P(x | good) / P(x | bad)`.
//!
//! # Example
//!
//! ```
//! use bayesopt::{minimize, SearchSpace, Tpe};
//!
//! // Minimize (x - 7)^2 + (y - 3)^2 over a 32 x 32 grid.
//! let space = SearchSpace::new(vec![32, 32]);
//! let f = |p: &[usize]| {
//!     let (x, y) = (p[0] as f64, p[1] as f64);
//!     (x - 7.0).powi(2) + (y - 3.0).powi(2)
//! };
//! let mut tpe = Tpe::new(space, 42);
//! let (best, value) = minimize(&mut tpe, f, 200);
//! assert_eq!(best, vec![7, 3]);
//! assert_eq!(value, 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A discrete search space: dimension `d` takes values `0..cardinality[d]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    cardinality: Vec<usize>,
}

impl SearchSpace {
    /// Creates a space from per-dimension cardinalities.
    ///
    /// # Panics
    ///
    /// Panics if any dimension has zero values.
    pub fn new(cardinality: Vec<usize>) -> Self {
        assert!(
            !cardinality.is_empty() && cardinality.iter().all(|&c| c > 0),
            "every dimension needs at least one value"
        );
        Self { cardinality }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.cardinality.len()
    }

    /// Cardinality of dimension `d`.
    pub fn card(&self, d: usize) -> usize {
        self.cardinality[d]
    }

    /// Total number of points (saturating).
    pub fn size(&self) -> usize {
        self.cardinality
            .iter()
            .fold(1usize, |a, &c| a.saturating_mul(c))
    }

    fn sample(&self, rng: &mut StdRng) -> Vec<usize> {
        self.cardinality
            .iter()
            .map(|&c| rng.gen_range(0..c))
            .collect()
    }
}

/// A sequential optimizer: propose a point, observe its value.
pub trait Optimizer {
    /// The space being searched.
    fn space(&self) -> &SearchSpace;
    /// Proposes the next point to evaluate.
    fn suggest(&mut self) -> Vec<usize>;
    /// Records an evaluation (`f64::INFINITY` marks infeasible points).
    fn observe(&mut self, point: Vec<usize>, value: f64);

    /// Proposes `k` points at once for batched (e.g. parallel) evaluation.
    ///
    /// The default draws `k` consecutive suggestions without intermediate
    /// observations — the model state is frozen for the generation, so the
    /// batch is deterministic and independent of how its members are later
    /// evaluated (serially or across worker threads).
    fn suggest_batch(&mut self, k: usize) -> Vec<Vec<usize>> {
        (0..k).map(|_| self.suggest()).collect()
    }

    /// Records a batch of evaluations, in order. Pairs with
    /// [`Optimizer::suggest_batch`]: one ask/tell round per generation.
    fn observe_batch(&mut self, batch: Vec<(Vec<usize>, f64)>) {
        for (point, value) in batch {
            self.observe(point, value);
        }
    }
}

/// Runs `iters` evaluations of `f` under `opt` and returns the best
/// `(point, value)` found.
///
/// # Panics
///
/// Panics if `iters == 0`.
pub fn minimize<F>(opt: &mut dyn Optimizer, mut f: F, iters: usize) -> (Vec<usize>, f64)
where
    F: FnMut(&[usize]) -> f64,
{
    assert!(iters > 0, "need at least one iteration");
    let _span = obs::span!("bayesopt.minimize", iters = iters);
    let mut best: Option<(Vec<usize>, f64)> = None;
    for i in 0..iters {
        let p = opt.suggest();
        let v = f(&p);
        if best.as_ref().is_none_or(|(_, bv)| v < *bv) {
            best = Some((p.clone(), v));
            obs::event(
                "bayesopt.best",
                &[("iter", i.into()), ("value", v.into())],
            );
        }
        opt.observe(p, v);
    }
    obs::add("bayesopt.evals", iters as u64);
    best.expect("at least one iteration ran")
}

/// Uniform random search.
#[derive(Debug)]
pub struct RandomSearch {
    space: SearchSpace,
    rng: StdRng,
}

impl RandomSearch {
    /// Creates a seeded random searcher.
    pub fn new(space: SearchSpace, seed: u64) -> Self {
        Self {
            space,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Optimizer for RandomSearch {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn suggest(&mut self) -> Vec<usize> {
        self.space.sample(&mut self.rng)
    }

    fn observe(&mut self, _point: Vec<usize>, _value: f64) {}
}

/// Tree-structured Parzen estimator over discrete dimensions.
#[derive(Debug)]
pub struct Tpe {
    space: SearchSpace,
    rng: StdRng,
    history: Vec<(Vec<usize>, f64)>,
    /// Fraction of history treated as "good".
    gamma: f64,
    /// Random candidates scored per suggestion.
    n_candidates: usize,
    /// Pure-random warmup length.
    n_startup: usize,
}

impl Tpe {
    /// Creates a seeded TPE optimizer with standard settings (gamma 0.25,
    /// 24 candidates per step, 10 random warmup steps).
    pub fn new(space: SearchSpace, seed: u64) -> Self {
        Self {
            space,
            rng: StdRng::seed_from_u64(seed),
            history: Vec::new(),
            gamma: 0.25,
            n_candidates: 24,
            n_startup: 10,
        }
    }

    /// Per-dimension smoothed categorical distribution of a set of points.
    fn model(&self, points: &[&Vec<usize>]) -> Vec<Vec<f64>> {
        (0..self.space.dims())
            .map(|d| {
                let c = self.space.card(d);
                let mut w = vec![1.0f64; c]; // Laplace smoothing
                for p in points {
                    w[p[d]] += 1.0;
                }
                let total: f64 = w.iter().sum();
                w.into_iter().map(|x| x / total).collect()
            })
            .collect()
    }

    fn sample_from(&mut self, model: &[Vec<f64>]) -> Vec<usize> {
        model
            .iter()
            .map(|probs| {
                let mut r: f64 = self.rng.gen();
                for (i, &p) in probs.iter().enumerate() {
                    r -= p;
                    if r <= 0.0 {
                        return i;
                    }
                }
                probs.len() - 1
            })
            .collect()
    }

    fn likelihood(model: &[Vec<f64>], p: &[usize]) -> f64 {
        model
            .iter()
            .zip(p)
            .map(|(probs, &x)| probs[x].ln())
            .sum::<f64>()
    }
}

impl Optimizer for Tpe {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn suggest(&mut self) -> Vec<usize> {
        let finite: Vec<&(Vec<usize>, f64)> =
            self.history.iter().filter(|(_, v)| v.is_finite()).collect();
        if self.history.len() < self.n_startup || finite.len() < 4 {
            return self.space.sample(&mut self.rng);
        }
        let mut sorted: Vec<&(Vec<usize>, f64)> = finite;
        sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let n_good = ((sorted.len() as f64 * self.gamma).ceil() as usize).max(2);
        let good: Vec<&Vec<usize>> = sorted[..n_good].iter().map(|(p, _)| p).collect();
        let bad: Vec<&Vec<usize>> = sorted[n_good..].iter().map(|(p, _)| p).collect();
        let good_model = self.model(&good);
        let bad_model = self.model(&bad);

        let mut best: Option<(Vec<usize>, f64)> = None;
        for _ in 0..self.n_candidates {
            let cand = self.sample_from(&good_model);
            let score =
                Self::likelihood(&good_model, &cand) - Self::likelihood(&bad_model, &cand);
            if best.as_ref().is_none_or(|(_, s)| score > *s) {
                best = Some((cand, score));
            }
        }
        best.expect("candidates sampled").0
    }

    fn observe(&mut self, point: Vec<usize>, value: f64) {
        self.history.push((point, value));
    }
}

/// Simulated annealing over the discrete space: a single walker perturbs
/// one dimension at a time and accepts worsening moves with a
/// geometrically cooling probability. A classic local-search baseline to
/// contrast with TPE's model-based sampling.
#[derive(Debug)]
pub struct SimulatedAnnealing {
    space: SearchSpace,
    rng: StdRng,
    current: Option<(Vec<usize>, f64)>,
    proposal: Option<Vec<usize>>,
    temperature: f64,
    cooling: f64,
}

impl SimulatedAnnealing {
    /// A seeded annealer with initial temperature 1.0 and cooling factor
    /// 0.98 per observation.
    pub fn new(space: SearchSpace, seed: u64) -> Self {
        Self {
            space,
            rng: StdRng::seed_from_u64(seed),
            current: None,
            proposal: None,
            temperature: 1.0,
            cooling: 0.98,
        }
    }

    fn neighbor(&mut self, p: &[usize]) -> Vec<usize> {
        let mut q = p.to_vec();
        let d = self.rng.gen_range(0..self.space.dims());
        let c = self.space.card(d);
        if c > 1 {
            // Step +-1 (wrapping) or jump uniformly, half the time each.
            q[d] = if self.rng.gen_bool(0.5) {
                let step: isize = if self.rng.gen_bool(0.5) { 1 } else { -1 };
                ((q[d] as isize + step).rem_euclid(c as isize)) as usize
            } else {
                self.rng.gen_range(0..c)
            };
        }
        q
    }
}

impl Optimizer for SimulatedAnnealing {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn suggest(&mut self) -> Vec<usize> {
        let p = match &self.current {
            None => self.space.sample(&mut self.rng),
            Some((cur, _)) => {
                let cur = cur.clone();
                self.neighbor(&cur)
            }
        };
        self.proposal = Some(p.clone());
        p
    }

    fn observe(&mut self, point: Vec<usize>, value: f64) {
        self.proposal = None;
        let accept = match &self.current {
            None => true,
            Some((_, cur_v)) => {
                if value <= *cur_v {
                    true
                } else if !value.is_finite() {
                    false
                } else {
                    let delta = (value - cur_v) / cur_v.abs().max(1e-12);
                    let prob = (-delta / self.temperature.max(1e-9)).exp();
                    self.rng.gen_bool(prob.clamp(0.0, 1.0))
                }
            }
        };
        if accept {
            self.current = Some((point, value));
        }
        self.temperature *= self.cooling;
    }
}

// ---------------------------------------------------------------------------
// Transcripts: serializable optimizer state via deterministic replay
// ---------------------------------------------------------------------------

/// Why a [`Transcript`] could not be applied to an optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranscriptError {
    /// During replay the optimizer proposed a different batch than the
    /// transcript recorded — the seed, space, or optimizer kind differs
    /// from the recording run.
    Diverged {
        /// 0-based generation where the first mismatch appeared.
        gen: usize,
    },
    /// A serialized transcript line did not parse.
    Parse {
        /// The offending line.
        line: String,
    },
}

impl std::fmt::Display for TranscriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranscriptError::Diverged { gen } => write!(
                f,
                "transcript replay diverged at generation {gen}: the optimizer \
                 (seed/space/kind) does not match the recording run"
            ),
            TranscriptError::Parse { line } => {
                write!(f, "bad transcript line {line:?}")
            }
        }
    }
}

impl std::error::Error for TranscriptError {}

/// A recorded ask/tell history: the exact `(point, value)` batches an
/// optimizer was fed, one entry per generation.
///
/// Optimizers here own an `StdRng`, whose internal state has no stable
/// serialized form — so checkpoints do not store optimizer state at all.
/// They store the transcript, and [`Transcript::replay`] rebuilds the
/// optimizer by re-running the recorded ask/tell rounds against a fresh
/// instance with the same seed: `suggest_batch` deterministically re-draws
/// the recorded suggestions (advancing the RNG to the same stream
/// position) and `observe_batch` re-feeds the recorded values. Replay
/// *verifies* each re-asked batch against the recording and reports
/// [`TranscriptError::Diverged`] on any mismatch, so a checkpoint from a
/// different seed or search space cannot silently resume the wrong run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Transcript {
    gens: Vec<Vec<(Vec<usize>, f64)>>,
}

impl Transcript {
    /// An empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one completed generation (the batch as observed).
    pub fn push_gen(&mut self, gen: Vec<(Vec<usize>, f64)>) {
        self.gens.push(gen);
    }

    /// Number of recorded generations.
    pub fn gens(&self) -> usize {
        self.gens.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.gens.is_empty()
    }

    /// Total recorded evaluations across all generations.
    pub fn evals(&self) -> usize {
        self.gens.iter().map(Vec::len).sum()
    }

    /// Re-runs the recorded generations against `opt` (a fresh optimizer
    /// constructed exactly as the recording run constructed its own),
    /// restoring its RNG stream position and observation history.
    pub fn replay(&self, opt: &mut dyn Optimizer) -> Result<(), TranscriptError> {
        for (g, gen) in self.gens.iter().enumerate() {
            let asked = opt.suggest_batch(gen.len());
            let recorded: Vec<&Vec<usize>> = gen.iter().map(|(p, _)| p).collect();
            if asked.iter().collect::<Vec<_>>() != recorded {
                return Err(TranscriptError::Diverged { gen: g });
            }
            opt.observe_batch(gen.clone());
        }
        Ok(())
    }

    /// Serializes to checkpoint lines: `gen <k>` opens a generation of
    /// `k` observations, each `ob <f64-bits-hex> <i0> <i1> ...`. Values
    /// round-trip bit-exactly (IEEE bits, not decimal).
    pub fn to_lines(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.gens.len() + self.evals());
        for gen in &self.gens {
            out.push(format!("gen {}", gen.len()));
            for (p, v) in gen {
                let mut line = format!("ob {:016x}", v.to_bits());
                for x in p {
                    line.push(' ');
                    line.push_str(&x.to_string());
                }
                out.push(line);
            }
        }
        out
    }

    /// Parses lines produced by [`Transcript::to_lines`].
    pub fn from_lines<'a, I: IntoIterator<Item = &'a str>>(
        lines: I,
    ) -> Result<Self, TranscriptError> {
        let bad = |line: &str| TranscriptError::Parse {
            line: line.to_string(),
        };
        let mut gens: Vec<Vec<(Vec<usize>, f64)>> = Vec::new();
        let mut remaining = 0usize;
        for line in lines {
            let mut parts = line.split_ascii_whitespace();
            match parts.next() {
                Some("gen") => {
                    if remaining != 0 {
                        return Err(bad(line));
                    }
                    let k: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad(line))?;
                    remaining = k;
                    gens.push(Vec::with_capacity(k));
                }
                Some("ob") => {
                    if remaining == 0 {
                        return Err(bad(line));
                    }
                    let bits = parts
                        .next()
                        .and_then(|s| u64::from_str_radix(s, 16).ok())
                        .ok_or_else(|| bad(line))?;
                    let mut point = Vec::new();
                    for tok in parts {
                        point.push(tok.parse::<usize>().map_err(|_| bad(line))?);
                    }
                    if point.is_empty() {
                        return Err(bad(line));
                    }
                    let gen = gens.last_mut().expect("remaining > 0 implies an open gen");
                    gen.push((point, f64::from_bits(bits)));
                    remaining -= 1;
                }
                _ => return Err(bad(line)),
            }
        }
        if remaining != 0 {
            return Err(TranscriptError::Parse {
                line: "<truncated: open generation>".to_string(),
            });
        }
        Ok(Self { gens })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad(p: &[usize]) -> f64 {
        let (x, y) = (p[0] as f64, p[1] as f64);
        (x - 20.0).powi(2) + (y - 5.0).powi(2)
    }

    #[test]
    fn random_search_finds_good_points() {
        let mut rs = RandomSearch::new(SearchSpace::new(vec![64, 64]), 7);
        let (_, v) = minimize(&mut rs, quad, 500);
        assert!(v < 50.0, "random best {v}");
    }

    #[test]
    fn tpe_finds_the_optimum_on_smooth_problems() {
        let mut tpe = Tpe::new(SearchSpace::new(vec![64, 64]), 7);
        let (p, v) = minimize(&mut tpe, quad, 400);
        assert!(v <= 2.0, "tpe best {v} at {p:?}");
    }

    #[test]
    fn tpe_beats_random_on_average() {
        // Averaged over seeds on a needle-ish function.
        let f = |p: &[usize]| {
            let x = p[0] as f64;
            let y = p[1] as f64;
            (x - 51.0).abs() + (y - 13.0).abs() + if p[0] == 51 && p[1] == 13 { -5.0 } else { 0.0 }
        };
        let mut tpe_total = 0.0;
        let mut rnd_total = 0.0;
        for seed in 0..8 {
            let space = SearchSpace::new(vec![96, 96]);
            let mut tpe = Tpe::new(space.clone(), seed);
            tpe_total += minimize(&mut tpe, f, 150).1;
            let mut rnd = RandomSearch::new(space, seed);
            rnd_total += minimize(&mut rnd, f, 150).1;
        }
        assert!(
            tpe_total < rnd_total,
            "tpe {tpe_total} vs random {rnd_total}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut tpe = Tpe::new(SearchSpace::new(vec![32, 32, 32]), seed);
            minimize(&mut tpe, |p| p.iter().sum::<usize>() as f64, 60)
        };
        assert_eq!(run(3), run(3));
        let a = run(3);
        let b = run(4);
        // Different seeds explore differently (same optimum may be found,
        // but the full trajectory differs; compare suggestion streams).
        let mut t1 = Tpe::new(SearchSpace::new(vec![32, 32, 32]), 3);
        let mut t2 = Tpe::new(SearchSpace::new(vec![32, 32, 32]), 4);
        assert_ne!(t1.suggest(), t2.suggest());
        let _ = (a, b);
    }

    #[test]
    fn annealing_converges_on_smooth_problems() {
        let mut sa = SimulatedAnnealing::new(SearchSpace::new(vec![64, 64]), 7);
        let (p, v) = minimize(&mut sa, quad, 600);
        assert!(v <= 10.0, "sa best {v} at {p:?}");
    }

    #[test]
    fn annealing_is_deterministic_and_beats_pure_walk_start() {
        let run = |seed| {
            let mut sa = SimulatedAnnealing::new(SearchSpace::new(vec![48, 48]), seed);
            minimize(&mut sa, quad, 200)
        };
        assert_eq!(run(5), run(5));
        // It must at least improve over its first (random) sample.
        let mut sa = SimulatedAnnealing::new(SearchSpace::new(vec![48, 48]), 5);
        let first = quad(&sa.suggest());
        let (_, best) = minimize(&mut sa, quad, 200);
        assert!(best <= first);
    }

    #[test]
    fn annealing_rejects_infinite_moves() {
        let f = |p: &[usize]| {
            if p[0] > 10 {
                f64::INFINITY
            } else {
                p[0] as f64
            }
        };
        let mut sa = SimulatedAnnealing::new(SearchSpace::new(vec![64]), 9);
        let (p, v) = minimize(&mut sa, f, 300);
        assert!(v.is_finite());
        assert!(p[0] <= 10);
    }

    #[test]
    fn handles_infeasible_points() {
        // Half the space is infeasible; the optimizer must still converge.
        let f = |p: &[usize]| {
            if p[0] % 2 == 1 {
                f64::INFINITY
            } else {
                (p[0] as f64 - 30.0).abs()
            }
        };
        let mut tpe = Tpe::new(SearchSpace::new(vec![64]), 11);
        let (p, v) = minimize(&mut tpe, f, 200);
        assert!(v.is_finite());
        assert_eq!(p[0] % 2, 0);
        assert!(v <= 4.0, "best {v}");
    }

    #[test]
    fn batched_ask_tell_is_deterministic() {
        // A fresh optimizer asked for one batch of k proposes exactly the
        // k points a clone would propose one at a time (no observations in
        // between either way).
        for seed in [1u64, 9, 23] {
            let space = SearchSpace::new(vec![32, 32]);
            let mut a = Tpe::new(space.clone(), seed);
            let mut b = Tpe::new(space.clone(), seed);
            let batch = a.suggest_batch(6);
            let singles: Vec<Vec<usize>> = (0..6).map(|_| b.suggest()).collect();
            assert_eq!(batch, singles);
            let mut ra = RandomSearch::new(space.clone(), seed);
            let mut rb = RandomSearch::new(space, seed);
            assert_eq!(ra.suggest_batch(4), rb.suggest_batch(4));
        }
    }

    #[test]
    fn batched_generations_still_optimize() {
        // Generation-batched TPE (ask k, tell k) converges on the smooth
        // quadratic just like the sequential loop.
        let mut tpe = Tpe::new(SearchSpace::new(vec![64, 64]), 7);
        let mut best = f64::INFINITY;
        for _ in 0..50 {
            let batch = tpe.suggest_batch(8);
            let scored: Vec<(Vec<usize>, f64)> =
                batch.into_iter().map(|p| { let v = quad(&p); (p, v) }).collect();
            for (_, v) in &scored {
                best = best.min(*v);
            }
            tpe.observe_batch(scored);
        }
        assert!(best <= 2.0, "batched tpe best {best}");
    }

    #[test]
    fn observe_batch_feeds_annealer_in_order() {
        let run_batched = |seed| {
            let mut sa = SimulatedAnnealing::new(SearchSpace::new(vec![48, 48]), seed);
            let mut best = f64::INFINITY;
            for _ in 0..40 {
                let batch = sa.suggest_batch(5);
                let scored: Vec<(Vec<usize>, f64)> =
                    batch.into_iter().map(|p| { let v = quad(&p); (p, v) }).collect();
                for (_, v) in &scored {
                    best = best.min(*v);
                }
                sa.observe_batch(scored);
            }
            best
        };
        assert_eq!(run_batched(5), run_batched(5));
        assert!(run_batched(5) < 200.0);
    }

    #[test]
    fn single_value_dimensions() {
        let mut rs = RandomSearch::new(SearchSpace::new(vec![1, 1, 5]), 0);
        let (p, _) = minimize(&mut rs, |p| p[2] as f64, 20);
        assert_eq!(&p[..2], &[0, 0]);
        assert_eq!(p[2], 0);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn rejects_empty_dimension() {
        SearchSpace::new(vec![4, 0]);
    }

    #[test]
    fn space_size_saturates() {
        let s = SearchSpace::new(vec![usize::MAX, 2]);
        assert_eq!(s.size(), usize::MAX);
    }

    /// Runs `gens` generation-batched rounds, recording a transcript.
    fn run_recorded(opt: &mut dyn Optimizer, gens: usize, k: usize) -> Transcript {
        let mut tr = Transcript::new();
        for _ in 0..gens {
            let batch = opt.suggest_batch(k);
            let scored: Vec<(Vec<usize>, f64)> = batch
                .into_iter()
                .map(|p| {
                    let v = quad(&p);
                    (p, v)
                })
                .collect();
            opt.observe_batch(scored.clone());
            tr.push_gen(scored);
        }
        tr
    }

    #[test]
    fn replay_restores_the_exact_suggestion_stream() {
        for seed in [1u64, 7, 42] {
            let space = SearchSpace::new(vec![48, 48]);
            // Uninterrupted: 9 generations straight through.
            let mut full = Tpe::new(space.clone(), seed);
            let tr_full = run_recorded(&mut full, 9, 6);
            // Interrupted after 5 generations, resumed via replay.
            let mut first = Tpe::new(space.clone(), seed);
            let tr_first = run_recorded(&mut first, 5, 6);
            let mut resumed = Tpe::new(space.clone(), seed);
            tr_first.replay(&mut resumed).expect("replay matches");
            let tr_rest = run_recorded(&mut resumed, 4, 6);
            // The resumed run's generations 5..9 are bit-identical to the
            // uninterrupted run's.
            let mut joined = tr_first.clone();
            for g in 0..tr_rest.gens() {
                joined.push_gen(tr_rest.gens[g].clone());
            }
            assert_eq!(joined, tr_full, "seed {seed}");
        }
    }

    #[test]
    fn replay_works_for_every_optimizer_kind() {
        let space = SearchSpace::new(vec![32, 32]);
        let fresh: [(&str, Box<dyn Fn() -> Box<dyn Optimizer>>); 3] = [
            ("random", {
                let s = space.clone();
                Box::new(move || Box::new(RandomSearch::new(s.clone(), 3)))
            }),
            ("tpe", {
                let s = space.clone();
                Box::new(move || Box::new(Tpe::new(s.clone(), 3)))
            }),
            ("anneal", {
                let s = space.clone();
                Box::new(move || Box::new(SimulatedAnnealing::new(s.clone(), 3)))
            }),
        ];
        for (name, mk) in &fresh {
            let mut a = mk();
            let tr = run_recorded(a.as_mut(), 6, 4);
            let mut b = mk();
            tr.replay(b.as_mut()).expect(name);
            // Both must now propose the same next batch.
            assert_eq!(a.suggest_batch(4), b.suggest_batch(4), "{name}");
        }
    }

    #[test]
    fn replay_detects_wrong_seed() {
        let space = SearchSpace::new(vec![32, 32]);
        let mut a = Tpe::new(space.clone(), 1);
        let tr = run_recorded(&mut a, 3, 5);
        let mut wrong = Tpe::new(space, 2);
        assert_eq!(tr.replay(&mut wrong), Err(TranscriptError::Diverged { gen: 0 }));
    }

    #[test]
    fn transcript_lines_round_trip_bit_exactly() {
        let mut tr = Transcript::new();
        tr.push_gen(vec![
            (vec![1, 2, 3], 0.1 + 0.2), // not exactly representable
            (vec![0, 0, 31], f64::INFINITY),
        ]);
        tr.push_gen(vec![(vec![7], -0.0)]);
        let lines = tr.to_lines();
        let owned: Vec<&str> = lines.iter().map(String::as_str).collect();
        let back = Transcript::from_lines(owned).expect("parses");
        assert_eq!(back, tr);
        assert_eq!(back.evals(), 3);
        assert_eq!(
            back.gens[0][1].1,
            f64::INFINITY,
            "infeasible markers survive"
        );
        assert!(back.gens[1][0].1.to_bits() == (-0.0f64).to_bits());
    }

    #[test]
    fn transcript_parse_errors_are_typed() {
        for bad in [
            vec!["ob 0 1"],            // observation outside a generation
            vec!["gen 1", "gen 1"],    // generation opened while one is short
            vec!["gen 1", "ob zz 1"],  // bad value bits
            vec!["gen 1", "ob 0"],     // empty point
            vec!["gen 1"],             // truncated
            vec!["bogus"],             // unknown tag
        ] {
            assert!(
                matches!(
                    Transcript::from_lines(bad.clone()),
                    Err(TranscriptError::Parse { .. })
                ),
                "{bad:?}"
            );
        }
        assert_eq!(Transcript::from_lines([]), Ok(Transcript::new()));
    }
}
