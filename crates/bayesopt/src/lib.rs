//! Discrete black-box optimization used by the co-design baselines of
//! Section VI-G ("MIP-Random", "MIP-Baye", "Baye-Heuristic", "Baye-Baye").
//!
//! Two seeded, deterministic optimizers over integer-indexed search spaces:
//!
//! * [`RandomSearch`] — uniform sampling;
//! * [`Tpe`] — a tree-structured Parzen estimator: past observations are
//!   split into a good quantile and the rest, candidates are drawn from a
//!   smoothed per-dimension model of the good set and ranked by the
//!   likelihood ratio `P(x | good) / P(x | bad)`.
//!
//! # Example
//!
//! ```
//! use bayesopt::{minimize, SearchSpace, Tpe};
//!
//! // Minimize (x - 7)^2 + (y - 3)^2 over a 32 x 32 grid.
//! let space = SearchSpace::new(vec![32, 32]);
//! let f = |p: &[usize]| {
//!     let (x, y) = (p[0] as f64, p[1] as f64);
//!     (x - 7.0).powi(2) + (y - 3.0).powi(2)
//! };
//! let mut tpe = Tpe::new(space, 42);
//! let (best, value) = minimize(&mut tpe, f, 200);
//! assert_eq!(best, vec![7, 3]);
//! assert_eq!(value, 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A discrete search space: dimension `d` takes values `0..cardinality[d]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    cardinality: Vec<usize>,
}

impl SearchSpace {
    /// Creates a space from per-dimension cardinalities.
    ///
    /// # Panics
    ///
    /// Panics if any dimension has zero values.
    pub fn new(cardinality: Vec<usize>) -> Self {
        assert!(
            !cardinality.is_empty() && cardinality.iter().all(|&c| c > 0),
            "every dimension needs at least one value"
        );
        Self { cardinality }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.cardinality.len()
    }

    /// Cardinality of dimension `d`.
    pub fn card(&self, d: usize) -> usize {
        self.cardinality[d]
    }

    /// Total number of points (saturating).
    pub fn size(&self) -> usize {
        self.cardinality
            .iter()
            .fold(1usize, |a, &c| a.saturating_mul(c))
    }

    fn sample(&self, rng: &mut StdRng) -> Vec<usize> {
        self.cardinality
            .iter()
            .map(|&c| rng.gen_range(0..c))
            .collect()
    }
}

/// A sequential optimizer: propose a point, observe its value.
pub trait Optimizer {
    /// The space being searched.
    fn space(&self) -> &SearchSpace;
    /// Proposes the next point to evaluate.
    fn suggest(&mut self) -> Vec<usize>;
    /// Records an evaluation (`f64::INFINITY` marks infeasible points).
    fn observe(&mut self, point: Vec<usize>, value: f64);

    /// Proposes `k` points at once for batched (e.g. parallel) evaluation.
    ///
    /// The default draws `k` consecutive suggestions without intermediate
    /// observations — the model state is frozen for the generation, so the
    /// batch is deterministic and independent of how its members are later
    /// evaluated (serially or across worker threads).
    fn suggest_batch(&mut self, k: usize) -> Vec<Vec<usize>> {
        (0..k).map(|_| self.suggest()).collect()
    }

    /// Records a batch of evaluations, in order. Pairs with
    /// [`Optimizer::suggest_batch`]: one ask/tell round per generation.
    fn observe_batch(&mut self, batch: Vec<(Vec<usize>, f64)>) {
        for (point, value) in batch {
            self.observe(point, value);
        }
    }
}

/// Runs `iters` evaluations of `f` under `opt` and returns the best
/// `(point, value)` found.
///
/// # Panics
///
/// Panics if `iters == 0`.
pub fn minimize<F>(opt: &mut dyn Optimizer, mut f: F, iters: usize) -> (Vec<usize>, f64)
where
    F: FnMut(&[usize]) -> f64,
{
    assert!(iters > 0, "need at least one iteration");
    let _span = obs::span!("bayesopt.minimize", iters = iters);
    let mut best: Option<(Vec<usize>, f64)> = None;
    for i in 0..iters {
        let p = opt.suggest();
        let v = f(&p);
        if best.as_ref().is_none_or(|(_, bv)| v < *bv) {
            best = Some((p.clone(), v));
            obs::event(
                "bayesopt.best",
                &[("iter", i.into()), ("value", v.into())],
            );
        }
        opt.observe(p, v);
    }
    obs::add("bayesopt.evals", iters as u64);
    best.expect("at least one iteration ran")
}

/// Uniform random search.
#[derive(Debug)]
pub struct RandomSearch {
    space: SearchSpace,
    rng: StdRng,
}

impl RandomSearch {
    /// Creates a seeded random searcher.
    pub fn new(space: SearchSpace, seed: u64) -> Self {
        Self {
            space,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Optimizer for RandomSearch {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn suggest(&mut self) -> Vec<usize> {
        self.space.sample(&mut self.rng)
    }

    fn observe(&mut self, _point: Vec<usize>, _value: f64) {}
}

/// Tree-structured Parzen estimator over discrete dimensions.
#[derive(Debug)]
pub struct Tpe {
    space: SearchSpace,
    rng: StdRng,
    history: Vec<(Vec<usize>, f64)>,
    /// Fraction of history treated as "good".
    gamma: f64,
    /// Random candidates scored per suggestion.
    n_candidates: usize,
    /// Pure-random warmup length.
    n_startup: usize,
}

impl Tpe {
    /// Creates a seeded TPE optimizer with standard settings (gamma 0.25,
    /// 24 candidates per step, 10 random warmup steps).
    pub fn new(space: SearchSpace, seed: u64) -> Self {
        Self {
            space,
            rng: StdRng::seed_from_u64(seed),
            history: Vec::new(),
            gamma: 0.25,
            n_candidates: 24,
            n_startup: 10,
        }
    }

    /// Per-dimension smoothed categorical distribution of a set of points.
    fn model(&self, points: &[&Vec<usize>]) -> Vec<Vec<f64>> {
        (0..self.space.dims())
            .map(|d| {
                let c = self.space.card(d);
                let mut w = vec![1.0f64; c]; // Laplace smoothing
                for p in points {
                    w[p[d]] += 1.0;
                }
                let total: f64 = w.iter().sum();
                w.into_iter().map(|x| x / total).collect()
            })
            .collect()
    }

    fn sample_from(&mut self, model: &[Vec<f64>]) -> Vec<usize> {
        model
            .iter()
            .map(|probs| {
                let mut r: f64 = self.rng.gen();
                for (i, &p) in probs.iter().enumerate() {
                    r -= p;
                    if r <= 0.0 {
                        return i;
                    }
                }
                probs.len() - 1
            })
            .collect()
    }

    fn likelihood(model: &[Vec<f64>], p: &[usize]) -> f64 {
        model
            .iter()
            .zip(p)
            .map(|(probs, &x)| probs[x].ln())
            .sum::<f64>()
    }
}

impl Optimizer for Tpe {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn suggest(&mut self) -> Vec<usize> {
        let finite: Vec<&(Vec<usize>, f64)> =
            self.history.iter().filter(|(_, v)| v.is_finite()).collect();
        if self.history.len() < self.n_startup || finite.len() < 4 {
            return self.space.sample(&mut self.rng);
        }
        let mut sorted: Vec<&(Vec<usize>, f64)> = finite;
        sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let n_good = ((sorted.len() as f64 * self.gamma).ceil() as usize).max(2);
        let good: Vec<&Vec<usize>> = sorted[..n_good].iter().map(|(p, _)| p).collect();
        let bad: Vec<&Vec<usize>> = sorted[n_good..].iter().map(|(p, _)| p).collect();
        let good_model = self.model(&good);
        let bad_model = self.model(&bad);

        let mut best: Option<(Vec<usize>, f64)> = None;
        for _ in 0..self.n_candidates {
            let cand = self.sample_from(&good_model);
            let score =
                Self::likelihood(&good_model, &cand) - Self::likelihood(&bad_model, &cand);
            if best.as_ref().is_none_or(|(_, s)| score > *s) {
                best = Some((cand, score));
            }
        }
        best.expect("candidates sampled").0
    }

    fn observe(&mut self, point: Vec<usize>, value: f64) {
        self.history.push((point, value));
    }
}

/// Simulated annealing over the discrete space: a single walker perturbs
/// one dimension at a time and accepts worsening moves with a
/// geometrically cooling probability. A classic local-search baseline to
/// contrast with TPE's model-based sampling.
#[derive(Debug)]
pub struct SimulatedAnnealing {
    space: SearchSpace,
    rng: StdRng,
    current: Option<(Vec<usize>, f64)>,
    proposal: Option<Vec<usize>>,
    temperature: f64,
    cooling: f64,
}

impl SimulatedAnnealing {
    /// A seeded annealer with initial temperature 1.0 and cooling factor
    /// 0.98 per observation.
    pub fn new(space: SearchSpace, seed: u64) -> Self {
        Self {
            space,
            rng: StdRng::seed_from_u64(seed),
            current: None,
            proposal: None,
            temperature: 1.0,
            cooling: 0.98,
        }
    }

    fn neighbor(&mut self, p: &[usize]) -> Vec<usize> {
        let mut q = p.to_vec();
        let d = self.rng.gen_range(0..self.space.dims());
        let c = self.space.card(d);
        if c > 1 {
            // Step +-1 (wrapping) or jump uniformly, half the time each.
            q[d] = if self.rng.gen_bool(0.5) {
                let step: isize = if self.rng.gen_bool(0.5) { 1 } else { -1 };
                ((q[d] as isize + step).rem_euclid(c as isize)) as usize
            } else {
                self.rng.gen_range(0..c)
            };
        }
        q
    }
}

impl Optimizer for SimulatedAnnealing {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn suggest(&mut self) -> Vec<usize> {
        let p = match &self.current {
            None => self.space.sample(&mut self.rng),
            Some((cur, _)) => {
                let cur = cur.clone();
                self.neighbor(&cur)
            }
        };
        self.proposal = Some(p.clone());
        p
    }

    fn observe(&mut self, point: Vec<usize>, value: f64) {
        self.proposal = None;
        let accept = match &self.current {
            None => true,
            Some((_, cur_v)) => {
                if value <= *cur_v {
                    true
                } else if !value.is_finite() {
                    false
                } else {
                    let delta = (value - cur_v) / cur_v.abs().max(1e-12);
                    let prob = (-delta / self.temperature.max(1e-9)).exp();
                    self.rng.gen_bool(prob.clamp(0.0, 1.0))
                }
            }
        };
        if accept {
            self.current = Some((point, value));
        }
        self.temperature *= self.cooling;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad(p: &[usize]) -> f64 {
        let (x, y) = (p[0] as f64, p[1] as f64);
        (x - 20.0).powi(2) + (y - 5.0).powi(2)
    }

    #[test]
    fn random_search_finds_good_points() {
        let mut rs = RandomSearch::new(SearchSpace::new(vec![64, 64]), 7);
        let (_, v) = minimize(&mut rs, quad, 500);
        assert!(v < 50.0, "random best {v}");
    }

    #[test]
    fn tpe_finds_the_optimum_on_smooth_problems() {
        let mut tpe = Tpe::new(SearchSpace::new(vec![64, 64]), 7);
        let (p, v) = minimize(&mut tpe, quad, 400);
        assert!(v <= 2.0, "tpe best {v} at {p:?}");
    }

    #[test]
    fn tpe_beats_random_on_average() {
        // Averaged over seeds on a needle-ish function.
        let f = |p: &[usize]| {
            let x = p[0] as f64;
            let y = p[1] as f64;
            (x - 51.0).abs() + (y - 13.0).abs() + if p[0] == 51 && p[1] == 13 { -5.0 } else { 0.0 }
        };
        let mut tpe_total = 0.0;
        let mut rnd_total = 0.0;
        for seed in 0..8 {
            let space = SearchSpace::new(vec![96, 96]);
            let mut tpe = Tpe::new(space.clone(), seed);
            tpe_total += minimize(&mut tpe, f, 150).1;
            let mut rnd = RandomSearch::new(space, seed);
            rnd_total += minimize(&mut rnd, f, 150).1;
        }
        assert!(
            tpe_total < rnd_total,
            "tpe {tpe_total} vs random {rnd_total}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut tpe = Tpe::new(SearchSpace::new(vec![32, 32, 32]), seed);
            minimize(&mut tpe, |p| p.iter().sum::<usize>() as f64, 60)
        };
        assert_eq!(run(3), run(3));
        let a = run(3);
        let b = run(4);
        // Different seeds explore differently (same optimum may be found,
        // but the full trajectory differs; compare suggestion streams).
        let mut t1 = Tpe::new(SearchSpace::new(vec![32, 32, 32]), 3);
        let mut t2 = Tpe::new(SearchSpace::new(vec![32, 32, 32]), 4);
        assert_ne!(t1.suggest(), t2.suggest());
        let _ = (a, b);
    }

    #[test]
    fn annealing_converges_on_smooth_problems() {
        let mut sa = SimulatedAnnealing::new(SearchSpace::new(vec![64, 64]), 7);
        let (p, v) = minimize(&mut sa, quad, 600);
        assert!(v <= 10.0, "sa best {v} at {p:?}");
    }

    #[test]
    fn annealing_is_deterministic_and_beats_pure_walk_start() {
        let run = |seed| {
            let mut sa = SimulatedAnnealing::new(SearchSpace::new(vec![48, 48]), seed);
            minimize(&mut sa, quad, 200)
        };
        assert_eq!(run(5), run(5));
        // It must at least improve over its first (random) sample.
        let mut sa = SimulatedAnnealing::new(SearchSpace::new(vec![48, 48]), 5);
        let first = quad(&sa.suggest());
        let (_, best) = minimize(&mut sa, quad, 200);
        assert!(best <= first);
    }

    #[test]
    fn annealing_rejects_infinite_moves() {
        let f = |p: &[usize]| {
            if p[0] > 10 {
                f64::INFINITY
            } else {
                p[0] as f64
            }
        };
        let mut sa = SimulatedAnnealing::new(SearchSpace::new(vec![64]), 9);
        let (p, v) = minimize(&mut sa, f, 300);
        assert!(v.is_finite());
        assert!(p[0] <= 10);
    }

    #[test]
    fn handles_infeasible_points() {
        // Half the space is infeasible; the optimizer must still converge.
        let f = |p: &[usize]| {
            if p[0] % 2 == 1 {
                f64::INFINITY
            } else {
                (p[0] as f64 - 30.0).abs()
            }
        };
        let mut tpe = Tpe::new(SearchSpace::new(vec![64]), 11);
        let (p, v) = minimize(&mut tpe, f, 200);
        assert!(v.is_finite());
        assert_eq!(p[0] % 2, 0);
        assert!(v <= 4.0, "best {v}");
    }

    #[test]
    fn batched_ask_tell_is_deterministic() {
        // A fresh optimizer asked for one batch of k proposes exactly the
        // k points a clone would propose one at a time (no observations in
        // between either way).
        for seed in [1u64, 9, 23] {
            let space = SearchSpace::new(vec![32, 32]);
            let mut a = Tpe::new(space.clone(), seed);
            let mut b = Tpe::new(space.clone(), seed);
            let batch = a.suggest_batch(6);
            let singles: Vec<Vec<usize>> = (0..6).map(|_| b.suggest()).collect();
            assert_eq!(batch, singles);
            let mut ra = RandomSearch::new(space.clone(), seed);
            let mut rb = RandomSearch::new(space, seed);
            assert_eq!(ra.suggest_batch(4), rb.suggest_batch(4));
        }
    }

    #[test]
    fn batched_generations_still_optimize() {
        // Generation-batched TPE (ask k, tell k) converges on the smooth
        // quadratic just like the sequential loop.
        let mut tpe = Tpe::new(SearchSpace::new(vec![64, 64]), 7);
        let mut best = f64::INFINITY;
        for _ in 0..50 {
            let batch = tpe.suggest_batch(8);
            let scored: Vec<(Vec<usize>, f64)> =
                batch.into_iter().map(|p| { let v = quad(&p); (p, v) }).collect();
            for (_, v) in &scored {
                best = best.min(*v);
            }
            tpe.observe_batch(scored);
        }
        assert!(best <= 2.0, "batched tpe best {best}");
    }

    #[test]
    fn observe_batch_feeds_annealer_in_order() {
        let run_batched = |seed| {
            let mut sa = SimulatedAnnealing::new(SearchSpace::new(vec![48, 48]), seed);
            let mut best = f64::INFINITY;
            for _ in 0..40 {
                let batch = sa.suggest_batch(5);
                let scored: Vec<(Vec<usize>, f64)> =
                    batch.into_iter().map(|p| { let v = quad(&p); (p, v) }).collect();
                for (_, v) in &scored {
                    best = best.min(*v);
                }
                sa.observe_batch(scored);
            }
            best
        };
        assert_eq!(run_batched(5), run_batched(5));
        assert!(run_batched(5) < 200.0);
    }

    #[test]
    fn single_value_dimensions() {
        let mut rs = RandomSearch::new(SearchSpace::new(vec![1, 1, 5]), 0);
        let (p, _) = minimize(&mut rs, |p| p[2] as f64, 20);
        assert_eq!(&p[..2], &[0, 0]);
        assert_eq!(p[2], 0);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn rejects_empty_dimension() {
        SearchSpace::new(vec![4, 0]);
    }

    #[test]
    fn space_size_saturates() {
        let s = SearchSpace::new(vec![usize::MAX, 2]);
        assert_eq!(s.size(), usize::MAX);
    }
}
