//! Deterministic fault injection for the DSE stack.
//!
//! Production code plants named *fault points* ([`hit`] / [`hit_at`]) at
//! the places where the search interacts with shared state or the outside
//! world — a worker evaluating candidate K, a cache shard insert, a
//! checkpoint file write, an observability sink flush. A fault point is a
//! no-op (`false`, one relaxed atomic load) unless a *fault plan* has been
//! armed, so the hooks are safe to leave in release builds.
//!
//! Tests and the `verify.sh` smoke stage arm a plan — via [`arm`] or the
//! `FAULT_PLAN` environment variable ([`arm_from_env`]) — that scripts an
//! exact failure schedule. The grammar (one or more comma-separated
//! specs):
//!
//! ```text
//! plan  := spec ("," spec)*
//! spec  := name "#" K        fire when hit_at(name, idx) is called with idx == K
//!        | name "@" N        fire on the N-th arrival at this point (1-based)
//!        | name "@" N "+"    fire on the N-th and every later arrival
//!        | name "@" "*"      fire on every arrival
//! name  := [A-Za-z0-9._-]+   e.g. "dse.worker", "ckpt.torn", "obs.sink"
//! ```
//!
//! `#K` triggers on the candidate *index*, which is derived from the work
//! item and never from scheduling, so index-scripted faults fire on the
//! same candidate at any thread count. `@N` triggers on arrival order and
//! is meant for serial sites (checkpoint writes, sink writes) where
//! arrival order is itself deterministic.
//!
//! Every firing is recorded; [`injected`] returns the log so tests and
//! smoke stages can assert that the scripted faults actually happened.
//! This crate is dependency-free (even of `obs` — `obs` injects its own
//! sink faults through it); callers emit their own observability events
//! on injection and recovery.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// How one plan spec decides whether an arrival fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trigger {
    /// `name#K`: fires when [`hit_at`] is called with index `K`.
    AtIndex(u64),
    /// `name@N`: fires on the N-th arrival (1-based).
    Nth(u64),
    /// `name@N+`: fires on the N-th and every later arrival.
    From(u64),
    /// `name@*`: fires on every arrival.
    Always,
}

/// One parsed `name⟨trigger⟩` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Spec {
    name: String,
    trigger: Trigger,
}

/// A malformed `FAULT_PLAN` string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// The offending spec text.
    pub spec: String,
    /// What was wrong with it.
    pub reason: &'static str,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec {:?}: {}", self.spec, self.reason)
    }
}

impl std::error::Error for PlanError {}

#[derive(Debug, Default)]
struct State {
    specs: Vec<Spec>,
    /// Arrival counters per fault-point name (BTreeMap: deterministic
    /// iteration for the `status` dump).
    arrivals: BTreeMap<String, u64>,
    /// Log of every firing, e.g. `"dse.worker#3"` / `"obs.sink@2"`.
    injected: Vec<String>,
}

/// Fast-path flag: `false` means every fault point is a single relaxed
/// load. Only set while a non-empty plan is armed.
static ARMED: AtomicBool = AtomicBool::new(false);

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::default()))
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

fn parse_spec(spec: &str) -> Result<Spec, PlanError> {
    let err = |reason| PlanError {
        spec: spec.to_string(),
        reason,
    };
    if let Some((name, idx)) = spec.split_once('#') {
        if !valid_name(name) {
            return Err(err("fault-point name must be [A-Za-z0-9._-]+"));
        }
        let k = idx
            .parse::<u64>()
            .map_err(|_| err("`#` must be followed by a candidate index"))?;
        return Ok(Spec {
            name: name.to_string(),
            trigger: Trigger::AtIndex(k),
        });
    }
    if let Some((name, occ)) = spec.split_once('@') {
        if !valid_name(name) {
            return Err(err("fault-point name must be [A-Za-z0-9._-]+"));
        }
        let trigger = if occ == "*" {
            Trigger::Always
        } else if let Some(n) = occ.strip_suffix('+') {
            let n = n
                .parse::<u64>()
                .map_err(|_| err("`@N+` needs a 1-based arrival number"))?;
            if n == 0 {
                return Err(err("arrival numbers are 1-based"));
            }
            Trigger::From(n)
        } else {
            let n = occ
                .parse::<u64>()
                .map_err(|_| err("`@` must be followed by an arrival number, `N+`, or `*`"))?;
            if n == 0 {
                return Err(err("arrival numbers are 1-based"));
            }
            Trigger::Nth(n)
        };
        return Ok(Spec {
            name: name.to_string(),
            trigger,
        });
    }
    Err(err("spec needs `#index`, `@N`, `@N+`, or `@*`"))
}

/// Parses and arms a fault plan, replacing any previously armed plan and
/// clearing arrival counters and the injection log. An empty / whitespace
/// plan disarms (equivalent to [`disarm`]).
pub fn arm(plan: &str) -> Result<(), PlanError> {
    let mut specs = Vec::new();
    for raw in plan.split(',') {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        specs.push(parse_spec(raw)?);
    }
    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    st.arrivals.clear();
    st.injected.clear();
    let armed = !specs.is_empty();
    st.specs = specs;
    ARMED.store(armed, Ordering::Release);
    Ok(())
}

/// Arms from the `FAULT_PLAN` environment variable. Unset means disarm;
/// a malformed plan is returned as the error (callers decide whether to
/// abort — the library never panics on a bad plan).
pub fn arm_from_env() -> Result<bool, PlanError> {
    match std::env::var("FAULT_PLAN") {
        Ok(plan) => {
            let trimmed = plan.trim().to_string();
            arm(&trimmed)?;
            Ok(!trimmed.is_empty())
        }
        Err(_) => {
            disarm();
            Ok(false)
        }
    }
}

/// Disarms all fault points and clears counters and the injection log.
pub fn disarm() {
    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    st.specs.clear();
    st.arrivals.clear();
    st.injected.clear();
    ARMED.store(false, Ordering::Release);
}

/// `true` while a non-empty plan is armed (one relaxed load).
pub fn armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// Serializes sections that arm process-global fault plans — hold the
/// returned guard for the whole arm → exercise → disarm sequence.
/// Primarily for tests: two tests arming plans in the same process would
/// otherwise clobber each other's schedules. Poisoning is ignored (a
/// panicked holder leaves no state behind beyond what [`arm`] resets).
pub fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn fire(st: &mut State, name: &str, idx: Option<u64>) -> bool {
    let arrival = {
        let c = st.arrivals.entry(name.to_string()).or_insert(0);
        *c += 1;
        *c
    };
    let mut fired = false;
    for spec in &st.specs {
        if spec.name != name {
            continue;
        }
        fired |= match spec.trigger {
            Trigger::AtIndex(k) => idx == Some(k),
            Trigger::Nth(n) => arrival == n,
            Trigger::From(n) => arrival >= n,
            Trigger::Always => true,
        };
    }
    if fired {
        let entry = match idx {
            Some(i) => format!("{name}#{i}"),
            None => format!("{name}@{arrival}"),
        };
        st.injected.push(entry);
    }
    fired
}

/// Observer called after a scripted fault actually fires (outside the
/// plan lock, so the observer may itself reach other fault points).
/// Set once per process; later calls are ignored. `obs` registers its
/// flight recorder here so every injection leaves a black-box record.
static HIT_HOOK: OnceLock<fn(&str)> = OnceLock::new();

/// Registers the injection observer. First caller wins; the hook must
/// not panic and must tolerate re-entrant injections (it runs outside
/// the plan lock, so fault points it reaches behave normally).
pub fn set_hit_hook(hook: fn(&str)) {
    let _ = HIT_HOOK.set(hook);
}

fn notify(name: &str) {
    if let Some(h) = HIT_HOOK.get() {
        h(name);
    }
}

/// Arrival-ordered fault point: returns `true` when the armed plan says
/// this arrival at `name` should fail. Meant for serial sites where
/// arrival order is deterministic (checkpoint writes, sink writes).
pub fn hit(name: &str) -> bool {
    if !armed() {
        return false;
    }
    let fired = {
        let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
        fire(&mut st, name, None)
    };
    if fired {
        notify(name);
    }
    fired
}

/// Index-keyed fault point: returns `true` when the armed plan scripts a
/// fault for work item `idx` at `name` (`name#K` specs), or for this
/// arrival (`@` specs). `#K` matching depends only on `idx`, so it is
/// deterministic at any thread count.
pub fn hit_at(name: &str, idx: u64) -> bool {
    if !armed() {
        return false;
    }
    let fired = {
        let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
        fire(&mut st, name, Some(idx))
    };
    if fired {
        notify(name);
    }
    fired
}

/// The log of every fault fired since the last [`arm`] / [`disarm`],
/// in firing order: `"name#idx"` for index-keyed hits, `"name@arrival"`
/// for arrival-ordered hits.
pub fn injected() -> Vec<String> {
    state()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .injected
        .clone()
}

/// Number of faults fired since the last [`arm`] / [`disarm`].
pub fn injected_count() -> usize {
    state()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .injected
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Fault-plan state is process-global; tests that arm plans must not
    /// interleave. Each test holds this guard for its whole body.
    fn serial() -> MutexGuard<'static, ()> {
        exclusive()
    }

    #[test]
    fn disarmed_points_never_fire() {
        let _g = serial();
        disarm();
        assert!(!armed());
        assert!(!hit("x"));
        assert!(!hit_at("x", 0));
        assert!(injected().is_empty());
    }

    #[test]
    fn index_spec_fires_on_exact_index_only() {
        let _g = serial();
        arm("dse.worker#3").expect("plan parses");
        assert!(!hit_at("dse.worker", 0));
        assert!(!hit_at("dse.worker", 2));
        assert!(hit_at("dse.worker", 3));
        assert!(!hit_at("dse.worker", 4));
        assert!(!hit_at("other", 3), "name must match");
        assert_eq!(injected(), vec!["dse.worker#3"]);
        disarm();
    }

    #[test]
    fn nth_arrival_spec() {
        let _g = serial();
        arm("ckpt.torn@2").expect("plan parses");
        assert!(!hit("ckpt.torn"));
        assert!(hit("ckpt.torn"));
        assert!(!hit("ckpt.torn"));
        assert_eq!(injected(), vec!["ckpt.torn@2"]);
        disarm();
    }

    #[test]
    fn from_and_always_specs() {
        let _g = serial();
        arm("a@2+,b@*").expect("plan parses");
        assert!(!hit("a"));
        assert!(hit("a"));
        assert!(hit("a"));
        assert!(hit("b"));
        assert!(hit("b"));
        assert_eq!(injected_count(), 4);
        disarm();
    }

    #[test]
    fn multiple_specs_same_name_combine() {
        let _g = serial();
        arm("p@1,p@3").expect("plan parses");
        assert!(hit("p"));
        assert!(!hit("p"));
        assert!(hit("p"));
        disarm();
    }

    #[test]
    fn arrival_counting_spans_hit_and_hit_at() {
        let _g = serial();
        arm("q@2").expect("plan parses");
        assert!(!hit_at("q", 10));
        assert!(hit("q"), "second arrival, regardless of entry point");
        disarm();
    }

    #[test]
    fn rearm_resets_counters_and_log() {
        let _g = serial();
        arm("r@1").expect("plan parses");
        assert!(hit("r"));
        arm("r@1").expect("plan parses");
        assert!(injected().is_empty(), "rearm clears the log");
        assert!(hit("r"), "counters restarted");
        disarm();
    }

    #[test]
    fn empty_plan_disarms() {
        let _g = serial();
        arm("x@*").expect("plan parses");
        assert!(armed());
        arm("  ").expect("empty plan is valid");
        assert!(!armed());
    }

    #[test]
    fn plan_parse_errors_are_typed() {
        let _g = serial();
        disarm();
        for bad in ["name", "x@0", "x@0+", "x#k", "x@", "sp ace@1", "@1", "#2"] {
            let e = arm(bad).expect_err(bad);
            assert_eq!(e.spec, bad.trim());
            assert!(!e.to_string().is_empty());
        }
        // A bad spec anywhere rejects the whole plan and leaves it disarmed.
        assert!(arm("ok@1,name").is_err());
        assert!(!armed());
        disarm();
    }

    #[test]
    fn env_arming() {
        let _g = serial();
        std::env::remove_var("FAULT_PLAN");
        assert_eq!(arm_from_env(), Ok(false));
        std::env::set_var("FAULT_PLAN", "e.point@1");
        assert_eq!(arm_from_env(), Ok(true));
        assert!(hit("e.point"));
        std::env::set_var("FAULT_PLAN", "broken");
        assert!(arm_from_env().is_err());
        std::env::remove_var("FAULT_PLAN");
        assert_eq!(arm_from_env(), Ok(false));
        assert!(!armed());
    }
}
