//! Negative fixtures for the Layer 3 concurrency rules: each seeded
//! hazard must be caught, and each must be waivable with a
//! `lint: allow(<rule>)` comment at the natural site. Fixtures are
//! synthetic crates fed through `lint::scan_sources`, so they exercise
//! the same symbol-extraction / call-graph / liveness pipeline as the
//! real workspace scan.

use lint::rules::FileCtx;
use lint::{scan_sources, Report};
use std::path::PathBuf;

/// Runs the full analysis over one synthetic `src/lib.rs`.
fn scan_one(crate_name: &str, src: &str) -> Report {
    scan_sources(vec![(
        PathBuf::from(format!("crates/{crate_name}/src/lib.rs")),
        src.to_string(),
        FileCtx {
            crate_name: crate_name.into(),
            is_bin: false,
        },
    )])
}

/// Unwaived findings for `rule`.
fn denied(report: &Report, rule: &str) -> Vec<String> {
    report
        .denied()
        .filter(|f| f.rule == rule)
        .map(|f| f.to_string())
        .collect()
}

/// Waived findings for `rule`.
fn waived(report: &Report, rule: &str) -> usize {
    report
        .findings
        .iter()
        .filter(|f| f.waived && f.rule == rule)
        .count()
}

// ---------------------------------------------------------------- cycles

const DEADLOCK_AB_BA: &str = "\
struct S { a: Mutex<u8>, b: Mutex<u8> }
impl S {
    fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }
    fn ba(&self) { let g = self.b.lock(); let h = self.a.lock(); }
}
";

#[test]
fn seeded_deadlock_cycle_is_caught() {
    let r = scan_one("fx", DEADLOCK_AB_BA);
    let hits = denied(&r, "lock-order-cycle");
    assert!(
        hits.len() >= 2,
        "both conflicting acquisitions must be reported: {hits:?}"
    );
    assert!(!r.graph.cycles.is_empty(), "cycle missing from the graph");
    assert!(r.locks_txt.contains("fx::S::a -> fx::S::b"));
    assert!(!r.locks_txt.contains("cycles: none"));
}

#[test]
fn nested_same_lock_acquisition_is_a_cycle_finding() {
    // Self-deadlock: re-locking the lock you hold, in one function.
    let src = "\
struct S { a: Mutex<u8> }
impl S {
    fn twice(&self) { let g = self.a.lock(); let h = self.a.lock(); }
}
";
    let r = scan_one("fx", src);
    assert!(
        !denied(&r, "lock-order-cycle").is_empty(),
        "nested same-lock acquisition must be flagged"
    );
}

#[test]
fn consistent_order_is_clean() {
    // Same locks, both functions acquire a -> b: an edge but no cycle.
    let src = "\
struct S { a: Mutex<u8>, b: Mutex<u8> }
impl S {
    fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }
    fn ab2(&self) { let g = self.a.lock(); let h = self.b.lock(); }
}
";
    let r = scan_one("fx", src);
    assert!(denied(&r, "lock-order-cycle").is_empty());
    assert!(r.graph.cycles.is_empty());
    assert!(r.locks_txt.contains("cycles: none"));
}

#[test]
fn deadlock_cycle_is_waivable() {
    let src = "\
struct S { a: Mutex<u8>, b: Mutex<u8> }
impl S {
    // Startup-only path, single-threaded by construction.
    // lint: allow(lock-order-cycle)
    fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }
    // lint: allow(lock-order-cycle)
    fn ba(&self) { let g = self.b.lock(); let h = self.a.lock(); }
}
";
    let r = scan_one("fx", src);
    assert!(denied(&r, "lock-order-cycle").is_empty());
    assert!(waived(&r, "lock-order-cycle") >= 2);
}

#[test]
fn guard_drop_ends_liveness() {
    // Explicit drop() between the two acquisitions: no edge, no cycle.
    let src = "\
struct S { a: Mutex<u8>, b: Mutex<u8> }
impl S {
    fn ab(&self) { let g = self.a.lock(); drop(g); let h = self.b.lock(); }
    fn ba(&self) { let g = self.b.lock(); drop(g); let h = self.a.lock(); }
}
";
    let r = scan_one("fx", src);
    assert!(
        denied(&r, "lock-order-cycle").is_empty(),
        "drop(g) must end guard liveness: {:?}",
        denied(&r, "lock-order-cycle")
    );
}

// ------------------------------------------------------ blocking-in-lock

const SLEEP_UNDER_LOCK: &str = "\
struct S { a: Mutex<u8> }
impl S {
    fn slow(&self) { let g = self.a.lock(); std::thread::sleep(d); }
}
";

#[test]
fn sleep_under_lock_is_caught() {
    let r = scan_one("fx", SLEEP_UNDER_LOCK);
    assert!(!denied(&r, "blocking-while-locked").is_empty());
}

#[test]
fn channel_recv_under_lock_is_caught() {
    let src = "\
struct S { a: Mutex<u8> }
impl S {
    fn wait_for(&self, rx: &Receiver<u8>) { let g = self.a.lock(); let v = rx.recv(); }
}
";
    let r = scan_one("fx", src);
    assert!(!denied(&r, "blocking-while-locked").is_empty());
}

#[test]
fn blocking_reached_through_a_call_is_caught() {
    // Interprocedural: the guard region calls a helper that sleeps.
    let src = "\
struct S { a: Mutex<u8> }
impl S {
    fn slow(&self) { let g = self.a.lock(); nap(); }
}
fn nap() { std::thread::sleep(d); }
";
    let r = scan_one("fx", src);
    let hits = denied(&r, "blocking-while-locked");
    assert!(
        hits.iter().any(|h| h.contains("nap")),
        "call into a sleeping helper must be flagged: {hits:?}"
    );
}

#[test]
fn condvar_wait_is_exempt() {
    let src = "\
struct S { q: Mutex<u8>, cv: Condvar }
impl S {
    fn pump(&self) { let g = self.q.lock(); let g = self.cv.wait(g); }
}
";
    let r = scan_one("fx", src);
    assert!(
        denied(&r, "blocking-while-locked").is_empty(),
        "Condvar::wait is the protocol, not a hazard: {:?}",
        denied(&r, "blocking-while-locked")
    );
}

#[test]
fn sleep_under_lock_is_waivable_mid_statement() {
    // The waiver rides the statement span: the comment trails the second
    // physical line of the offending statement.
    let src = "\
struct S { a: Mutex<u8> }
impl S {
    fn slow(&self) { let g = self.a.lock(); std::thread::sleep(
        d); // drains in tests only; lint: allow(blocking-while-locked)
    }
}
";
    let r = scan_one("fx", src);
    assert!(denied(&r, "blocking-while-locked").is_empty());
    assert!(waived(&r, "blocking-while-locked") >= 1);
}

#[test]
fn blocking_after_guard_scope_is_clean() {
    let src = "\
struct S { a: Mutex<u8> }
impl S {
    fn ok(&self) { { let g = self.a.lock(); } std::thread::sleep(d); }
}
";
    let r = scan_one("fx", src);
    assert!(denied(&r, "blocking-while-locked").is_empty());
}

// ----------------------------------------------------------- reentrancy

const REENTRANT_PROBE: &str = "\
struct Cache { shard: Mutex<u8> }
impl Cache {
    fn outer(&self) { let g = self.shard.lock(); self.probe(); }
    fn probe(&self) { let g = self.shard.lock(); }
}
";

#[test]
fn reentrant_shard_probe_is_caught() {
    let r = scan_one("fx", REENTRANT_PROBE);
    let hits = denied(&r, "reentrant-lock");
    assert!(
        hits.iter().any(|h| h.contains("probe")),
        "call back into the same lock must be flagged: {hits:?}"
    );
}

#[test]
fn transitive_reentry_is_caught() {
    // outer -> middle -> inner, inner re-locks what outer holds.
    let src = "\
struct Cache { shard: Mutex<u8> }
impl Cache {
    fn outer(&self) { let g = self.shard.lock(); self.middle(); }
    fn middle(&self) { self.inner(); }
    fn inner(&self) { let g = self.shard.lock(); }
}
";
    let r = scan_one("fx", src);
    let hits = denied(&r, "reentrant-lock");
    assert!(
        hits.iter().any(|h| h.contains("middle")),
        "transitive re-entry must be flagged at the call site: {hits:?}"
    );
}

#[test]
fn reentrant_probe_is_waivable() {
    let src = "\
struct Cache { shard: Mutex<u8> }
impl Cache {
    // Recursion is bounded to depth 1 by the probe protocol.
    // lint: allow(reentrant-lock)
    fn outer(&self) { let g = self.shard.lock(); self.probe(); }
    fn probe(&self) { let g = self.shard.lock(); }
}
";
    let r = scan_one("fx", src);
    assert!(denied(&r, "reentrant-lock").is_empty());
    assert!(waived(&r, "reentrant-lock") >= 1);
}

#[test]
fn disjoint_locks_are_not_reentrant() {
    let src = "\
struct Cache { a: Mutex<u8>, b: Mutex<u8> }
impl Cache {
    fn outer(&self) { let g = self.a.lock(); self.probe(); }
    fn probe(&self) { let g = self.b.lock(); }
}
";
    let r = scan_one("fx", src);
    assert!(denied(&r, "reentrant-lock").is_empty());
}

// -------------------------------------------------------- untraced spawn

const UNTRACED_SPAWN: &str = "\
fn fan_out() {
    std::thread::spawn(move || { work(); });
}
fn work() {}
";

#[test]
fn untraced_spawn_in_tracing_crate_is_caught() {
    // `serve` is a tracing-aware crate.
    let r = scan_one("serve", UNTRACED_SPAWN);
    assert!(!denied(&r, "untraced-spawn").is_empty());
}

#[test]
fn scoped_spawn_is_also_checked() {
    let src = "\
fn par_map(scope: &Scope) {
    scope.spawn(|| { work(); });
}
fn work() {}
";
    let r = scan_one("autoseg", src);
    assert!(!denied(&r, "untraced-spawn").is_empty());
}

#[test]
fn spawn_with_set_trace_is_clean() {
    let src = "\
fn fan_out(trace: u64) {
    std::thread::spawn(move || { obs::set_trace(trace); work(); });
}
fn work() {}
";
    let r = scan_one("serve", src);
    assert!(denied(&r, "untraced-spawn").is_empty());
}

#[test]
fn spawn_outside_tracing_crates_is_exempt() {
    let r = scan_one("spa-arch", UNTRACED_SPAWN);
    assert!(denied(&r, "untraced-spawn").is_empty());
}

#[test]
fn untraced_spawn_is_waivable() {
    let src = "\
fn fan_out() {
    // Reader thread forwards raw bytes; no telemetry of its own.
    // lint: allow(untraced-spawn)
    std::thread::spawn(move || { work(); });
}
fn work() {}
";
    let r = scan_one("serve", src);
    assert!(denied(&r, "untraced-spawn").is_empty());
    assert!(waived(&r, "untraced-spawn") >= 1);
}

// ----------------------------------------------------------- aggregates

#[test]
fn lock_rules_appear_in_json_schema() {
    let r = scan_one("fx", DEADLOCK_AB_BA);
    let json = r.to_json(None);
    assert!(json.contains("\"schema\": 2"));
    assert!(json.contains("\"concurrency\""));
    for rule in lint::locks::LOCK_RULE_NAMES {
        assert!(json.contains(rule), "{rule} missing from JSON");
    }
    assert!(json.contains("\"graph_cycles\": 1"));
}
