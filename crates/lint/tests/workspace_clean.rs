//! The CI gate as a test: the workspace must have zero unwaived lint
//! findings and a clean semantic report, so plain `cargo test` catches
//! regressions without running the binary.

use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate sits two levels below the workspace root")
}

#[test]
fn workspace_has_no_unwaived_findings() {
    let report = lint::scan_workspace(workspace_root()).expect("workspace scans");
    let denied: Vec<String> = report.denied().map(|f| f.to_string()).collect();
    assert!(
        denied.is_empty(),
        "unwaived lint findings:\n{}",
        denied.join("\n")
    );
    assert!(report.files_scanned > 50, "scan looks truncated");
    assert!(
        report.graph.cycles.is_empty(),
        "workspace lock-order graph has cycles: {:?}",
        report.graph.cycles
    );
    assert!(
        !report.graph.nodes.is_empty(),
        "Layer 3 found no locks at all — symbol extraction looks broken"
    );
}

#[test]
fn semantic_validators_pass() {
    let sem = lint::semantic::run();
    assert!(sem.clean(), "semantic failures: {:?}", sem.failures);
    assert_eq!(sem.models_checked, 10);
    assert_eq!(sem.budgets_checked, 7);
}
