//! Negative fixtures: every rule D1–D5 must fire on crafted bad source,
//! and the waiver comment must suppress exactly the named rule.

use lint::rules::FileCtx;
use lint::scan_source;
use std::path::Path;

fn scan(src: &str, crate_name: &str) -> Vec<(&'static str, bool)> {
    let ctx = FileCtx {
        crate_name: crate_name.into(),
        is_bin: false,
    };
    scan_source(src, Path::new("fixture.rs"), &ctx)
        .into_iter()
        .map(|f| (f.rule, f.waived))
        .collect()
}

fn fired(src: &str, crate_name: &str) -> Vec<&'static str> {
    scan(src, crate_name)
        .into_iter()
        .filter(|&(_, waived)| !waived)
        .map(|(rule, _)| rule)
        .collect()
}

#[test]
fn d1_nondet_time_fires() {
    let src = "fn f() { let t = std::time::SystemTime::now(); }";
    assert_eq!(fired(src, "autoseg"), vec!["nondet-time"]);
    let src = "fn f() { let t = std::time::Instant::now(); }";
    assert_eq!(fired(src, "pucost"), vec!["nondet-time"]);
    // `obs` owns timing; the experiment harness measures on purpose.
    assert!(fired(src, "obs").is_empty());
    assert!(fired(src, "experiments").is_empty());
}

#[test]
fn d1_nondet_iter_fires() {
    let src = "use std::collections::HashMap;\nfn f() { for (k, v) in m.iter() {} }";
    assert_eq!(fired(src, "autoseg"), vec!["nondet-iter"]);
    let src = "fn f() { let s: HashSet<u32> = HashSet::new(); }";
    assert_eq!(fired(src, "nnmodel"), vec!["nondet-iter", "nondet-iter"]);
    assert!(fired(src, "obs").is_empty());
}

#[test]
fn d2_lock_unwrap_fires() {
    for src in [
        "pub fn f(s: &S) { s.inner.lock().unwrap().push(1); }",
        "fn g(s: &S) { let r = s.table.read().unwrap(); }",
        "fn h(s: &S) { s.table.write().expect(\"poisoned\"); }",
    ] {
        assert_eq!(fired(src, "spa-sim"), vec!["lock-unwrap"], "{src}");
    }
    // The poison-recovery idiom is the sanctioned form.
    let ok = "fn f(s: &S) { s.m.lock().unwrap_or_else(|e| e.into_inner()); }";
    assert!(fired(ok, "spa-sim").is_empty());
    // io::Read::read(&mut buf) takes an argument: not a guard chain.
    let io = "fn f(mut r: impl std::io::Read) { r.read(&mut buf).unwrap(); }";
    assert!(!fired(io, "spa-codegen").contains(&"lock-unwrap"));
}

#[test]
fn d3_as_cast_fires_in_cost_model_crates() {
    let src = "fn f(x: usize) -> u64 { x as u64 + 1 }";
    for c in ["pucost", "spa-sim", "mip"] {
        assert_eq!(fired(src, c), vec!["as-cast"], "{c}");
    }
    // Everywhere else `as` stays legal.
    for c in ["nnmodel", "autoseg", "benes", "obs"] {
        assert!(fired(src, c).is_empty(), "{c}");
    }
    // `as` for non-numeric targets (imports, trait casts) never fires.
    let import = "use std::fmt::Debug as D;\nfn f(x: &dyn Debug) {}";
    assert!(fired(import, "pucost").is_empty());
}

#[test]
fn d4_float_eq_fires() {
    assert_eq!(
        fired("fn f(x: f64) -> bool { x == 1.5 }", "benes"),
        vec!["float-eq"]
    );
    assert_eq!(
        fired("fn f(x: f64) -> bool { 0.0 != x }", "autoseg"),
        vec!["float-eq"]
    );
    // Integer comparisons and range patterns stay legal.
    assert!(fired("fn f(x: u64) -> bool { x == 10 }", "benes").is_empty());
    assert!(fired("fn f(x: usize) { for i in 0..x {} }", "benes").is_empty());
}

#[test]
fn d5_panic_path_fires() {
    assert_eq!(
        fired("pub fn api() { panic!(\"boom\"); }", "nnmodel"),
        vec!["panic-path"]
    );
    assert_eq!(
        fired("pub fn api(x: Option<u32>) -> u32 { x.unwrap() }", "mip"),
        vec!["panic-path"]
    );
    assert_eq!(
        fired("pub fn api() { todo!() }", "spa-arch"),
        vec!["panic-path"]
    );
    // Private helpers, `.expect` with a documented invariant, and
    // `unreachable!` are all allowed.
    assert!(fired("fn helper(x: Option<u32>) -> u32 { x.unwrap() }", "nnmodel").is_empty());
    assert!(fired(
        "pub fn api(x: Option<u32>) -> u32 { x.expect(\"set in new()\") }",
        "nnmodel"
    )
    .is_empty());
    assert!(fired("pub fn api() { unreachable!() }", "nnmodel").is_empty());
    // Leaf programs may abort.
    assert!(fired("pub fn api() { panic!(\"usage\"); }", "experiments").is_empty());
}

#[test]
fn waivers_suppress_only_the_named_rule() {
    let src = "// shard-local map, never iterated; lint: allow(nondet-iter)\n\
               fn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
    let all = scan(src, "autoseg");
    assert_eq!(all.len(), 2);
    assert!(all.iter().all(|&(rule, waived)| rule == "nondet-iter" && waived));

    // A waiver for a different rule does not apply.
    let src = "// lint: allow(float-eq)\nfn f() { let m = HashMap::new(); }";
    assert_eq!(fired(src, "autoseg"), vec!["nondet-iter"]);
}

#[test]
fn strings_and_comments_never_fire() {
    let src = r#"fn f() { let s = "HashMap and panic! and 1.0 == 2.0"; }
// HashMap in a comment, x as u64, Instant
/* SystemTime::now() in a block comment */
"#;
    assert!(fired(src, "pucost").is_empty());
}
