//! Layer 3 rules: workspace concurrency analysis.
//!
//! Four deny-by-default rules over the symbol table ([`crate::symbols`])
//! and the approximate call graph ([`crate::callgraph`]):
//!
//! | rule                    | invariant                                        |
//! |-------------------------|--------------------------------------------------|
//! | `lock-order-cycle`      | the global lock-order graph is acyclic           |
//! | `blocking-while-locked` | no blocking op reachable while a guard is held   |
//! | `reentrant-lock`        | no call path re-acquires a lock already held     |
//! | `untraced-spawn`        | spawn closures re-propagate the obs trace id     |
//!
//! Guard liveness is tracked lexically: a `let`-bound guard lives to the
//! end of its binding block (or an explicit `drop(name)`); a temporary
//! guard lives to the end of its statement, extended through the first
//! attached block (`if let`/`while let`/`for` scrutinee temporaries live
//! through the body, matching Rust's drop rules). `Condvar::wait*` is
//! exempt from the blocking rule — waiting *is* its protocol and it
//! releases the mutex. Known approximations (closures analyzed inline,
//! `match` with multiple arms ending guard liveness at the first arm
//! block, name-heuristic call resolution) are documented in DESIGN.md §7
//! and each rule supports `// lint: allow(<rule>)` waivers.

use crate::callgraph::{self, CallGraph};
use crate::lexer::{Tok, Token};
use crate::symbols::{self, SourceFile, Symbols};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Names of the Layer 3 rules, in documentation order.
pub const LOCK_RULE_NAMES: &[&str] = &[
    "lock-order-cycle",
    "blocking-while-locked",
    "reentrant-lock",
    "untraced-spawn",
];

/// Crates whose spawns must re-propagate the request trace id
/// (`obs::set_trace` / `obs::TraceGuard`): everywhere PR 7's trace-id
/// invariant applies. `obs` itself is the mechanism, `bench` is
/// criterion-driven, and the remaining crates never spawn.
const TRACING_CRATES: &[&str] = &["autoseg", "pucost", "serve", "experiments"];

/// Blocking operations flagged while a guard is held. `join` only with
/// empty parens (so `Path::join(..)` stays out); `wait`/`wait_timeout`/
/// `wait_while` are deliberately absent (Condvar protocol).
const BLOCKING_METHODS: &[&str] = &[
    "join",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "read_line",
    "read_to_string",
    "read_to_end",
    "read_exact",
    "write_all",
    "flush",
    "sync_all",
    "accept",
    "connect",
];

/// Blocking free/qualified calls (`thread::sleep`, `thread::park`).
const BLOCKING_FREE: &[&str] = &["sleep", "park"];

/// One Layer 3 diagnostic (pre-waiver).
#[derive(Debug, Clone)]
pub struct LockFinding {
    /// Rule id (one of [`LOCK_RULE_NAMES`]).
    pub rule: &'static str,
    /// File index into the analysis file list.
    pub file: usize,
    /// 1-based line.
    pub line: u32,
    /// Diagnostic text.
    pub message: String,
}

/// One acquired-while-held observation.
#[derive(Debug, Clone)]
pub struct OrderEdge {
    /// Lock already held.
    pub held: String,
    /// Lock acquired while `held` was live.
    pub acquired: String,
    /// File index of the acquisition site.
    pub file: usize,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Line the held guard was acquired on (same function).
    pub held_line: u32,
    /// Qualified name of the function containing both.
    pub func: String,
}

/// The global lock-order graph plus its cycle analysis.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    /// Every named lock that participates in the analysis:
    /// id -> (kind, indexed, "file:line" definition site).
    pub nodes: BTreeMap<String, (String, bool, String)>,
    /// Order edges with their observation sites.
    pub edges: Vec<OrderEdge>,
    /// Cycles found (each a closed node path `A -> .. -> A`).
    pub cycles: Vec<Vec<String>>,
}

/// Full Layer 3 output.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// All findings, pre-waiver, in (file, line, rule) order.
    pub findings: Vec<LockFinding>,
    /// The lock-order graph (rendered into `results/LOCKS.txt`).
    pub graph: LockGraph,
}

/// A live guard during the body walk.
#[derive(Debug, Clone)]
struct Guard {
    /// Resolved lock id; `None` when the receiver could not be named
    /// (still counts as "a guard is held" for the blocking rule).
    lock: Option<String>,
    indexed: bool,
    line: u32,
    mode: Hold,
}

#[derive(Debug, Clone)]
enum Hold {
    /// `let name = ..lock()..;` — lives to the end of the binding block.
    Let { name: String, depth: usize },
    /// Temporary — lives to the end of the statement / first attached
    /// block.
    Temp { depth: usize, entered: bool },
}

/// Per-function facts from the walk (pass 1).
#[derive(Debug, Default)]
struct FnFacts {
    /// lock id -> first acquisition line.
    acquires: BTreeMap<String, u32>,
    /// blocking op -> first line.
    blocks: BTreeMap<String, u32>,
    /// (call-site index into `CallGraph::sites`, live guards snapshot).
    guarded_calls: Vec<(usize, Vec<Guard>)>,
}

/// Runs the whole Layer 3 analysis.
pub fn analyze(files: &[SourceFile], syms: &Symbols, graph: &CallGraph) -> Analysis {
    let mut out = Analysis::default();
    let mut facts: Vec<FnFacts> = Vec::with_capacity(syms.fns.len());
    // Call sites grouped per caller for the walk.
    let mut sites_by_fn: Vec<Vec<usize>> = vec![Vec::new(); syms.fns.len()];
    for (si, s) in graph.sites.iter().enumerate() {
        sites_by_fn[s.caller].push(si);
    }
    for (fi, f) in syms.fns.iter().enumerate() {
        facts.push(walk_fn(files, syms, graph, &sites_by_fn[fi], f, &mut out));
    }

    // Pass 2: propagate lock sets and blocking sets over the call graph.
    let acq_seed: Vec<BTreeMap<String, String>> = facts
        .iter()
        .map(|f| {
            f.acquires
                .keys()
                .map(|k| (k.clone(), "directly".to_string()))
                .collect()
        })
        .collect();
    let blk_seed: Vec<BTreeMap<String, String>> = facts
        .iter()
        .map(|f| {
            f.blocks
                .keys()
                .map(|k| (k.clone(), "directly".to_string()))
                .collect()
        })
        .collect();
    let acquires_all = callgraph::propagate(syms, &graph.edges, &acq_seed, |_| true);
    // Blocking is not propagated into `obs`: emission helpers guard
    // their own short critical sections and sinks, and treating every
    // obs call as I/O would flag every instrumented critical section.
    // The policy is documented in DESIGN.md §7; obs's own sites are
    // linted directly in the obs crate.
    let blocks_all = callgraph::propagate(syms, &graph.edges, &blk_seed, |c| {
        syms.fns[c].crate_name != "obs"
    });

    // Pass 3: interprocedural findings at guarded call sites.
    for (fi, ffacts) in facts.iter().enumerate() {
        let caller = &syms.fns[fi];
        for (si, live) in &ffacts.guarded_calls {
            let site = &graph.sites[*si];
            let held_named: Vec<&Guard> = live.iter().filter(|g| g.lock.is_some()).collect();
            let mut reported_reentry = false;
            let mut reported_block = false;
            for &callee in &site.callees {
                if callee == fi {
                    continue;
                }
                let cd = &syms.fns[callee];
                if !reported_reentry {
                    if let Some((g, via)) = held_named.iter().find_map(|g| {
                        let id = g.lock.as_deref().unwrap_or_default();
                        acquires_all[callee].get(id).map(|via| (*g, via.clone()))
                    }) {
                        let lock = g.lock.clone().unwrap_or_default();
                        out.findings.push(LockFinding {
                            rule: "reentrant-lock",
                            file: caller.file,
                            line: site.line,
                            message: format!(
                                "call to `{}` can re-acquire `{lock}` ({via}) while the guard \
                                 from line {} is still held — self-deadlock on a std Mutex",
                                cd.qualified(),
                                g.line
                            ),
                        });
                        reported_reentry = true;
                    }
                }
                if !reported_block && cd.crate_name != "obs" {
                    if let Some((op, via)) = blocks_all[callee].iter().next() {
                        let held = held_named
                            .first()
                            .and_then(|g| g.lock.clone())
                            .unwrap_or_else(|| "a lock".into());
                        let via = if via == "directly" {
                            String::new()
                        } else {
                            format!(" {via}")
                        };
                        out.findings.push(LockFinding {
                            rule: "blocking-while-locked",
                            file: caller.file,
                            line: site.line,
                            message: format!(
                                "call to `{}` reaches blocking `{op}(..)`{via} while `{held}` \
                                 (acquired line {}) is held — stalls every contender",
                                cd.qualified(),
                                held_named.first().map_or(0, |g| g.line)
                            ),
                        });
                        reported_block = true;
                    }
                }
            }
        }
    }

    // The global lock-order graph: nodes, merged edges, cycles.
    for e in &out.graph.edges {
        for id in [&e.held, &e.acquired] {
            if !out.graph.nodes.contains_key(id) {
                out.graph.nodes.insert(id.clone(), node_info(files, syms, id));
            }
        }
    }
    // Locks that are acquired anywhere also appear as (edge-less) nodes
    // so LOCKS.txt is a complete inventory.
    for facts in &facts {
        for id in facts.acquires.keys() {
            if !out.graph.nodes.contains_key(id) {
                out.graph.nodes.insert(id.clone(), node_info(files, syms, id));
            }
        }
    }
    let cycles = find_cycles(&out.graph);
    for cyc in &cycles {
        // Report every edge that sits on the cycle, at its site.
        for e in &out.graph.edges {
            let on_cycle = cyc
                .windows(2)
                .any(|w| w[0] == e.held && w[1] == e.acquired);
            if on_cycle {
                out.findings.push(LockFinding {
                    rule: "lock-order-cycle",
                    file: e.file,
                    line: e.line,
                    message: format!(
                        "acquiring `{}` while `{}` is held (line {}, in `{}`) completes the \
                         lock-order cycle {}",
                        e.acquired,
                        e.held,
                        e.held_line,
                        e.func,
                        cyc.join(" -> ")
                    ),
                });
            }
        }
    }
    out.graph.cycles = cycles;
    out.findings.sort_by(|a, b| {
        (a.file, a.line, a.rule, &a.message).cmp(&(b.file, b.line, b.rule, &b.message))
    });
    out.findings.dedup_by(|a, b| {
        (a.file, a.line, a.rule, &a.message) == (b.file, b.line, b.rule, &b.message)
    });
    out
}

fn node_info(files: &[SourceFile], syms: &Symbols, id: &str) -> (String, bool, String) {
    match syms.locks.get(id) {
        Some(d) => (
            d.kind.name().to_string(),
            d.indexed,
            format!("{}:{}", files[d.file].path.display(), d.line),
        ),
        None => ("Mutex".to_string(), id.ends_with("()"), "inferred".to_string()),
    }
}

/// Walks one function body: guard liveness, direct rule events, facts.
fn walk_fn(
    files: &[SourceFile],
    syms: &Symbols,
    graph: &CallGraph,
    fn_sites: &[usize],
    f: &symbols::FnDef,
    out: &mut Analysis,
) -> FnFacts {
    let mut facts = FnFacts::default();
    if f.is_test {
        return facts;
    }
    let Some(body) = f.body.clone() else {
        return facts;
    };
    let file = &files[f.file];
    let toks = &file.lexed.tokens;
    let nested: Vec<std::ops::Range<usize>> = syms
        .fns
        .iter()
        .filter(|n| n.file == f.file)
        .filter_map(|n| n.body.clone())
        .filter(|r| r.start > body.start && r.end <= body.end)
        .collect();

    let tracing = TRACING_CRATES.contains(&f.crate_name.as_str());
    let mut guards: Vec<Guard> = Vec::new();
    // Aliases: local name -> (lock id, indexed) from `let x = &self.f;`
    // or `let x = self.getter(..);`.
    let mut aliases: BTreeMap<String, (String, bool)> = BTreeMap::new();
    let mut depth = 0usize;
    // Pending `let` binding name per depth level.
    let mut let_stack: Vec<Option<String>> = vec![None];
    let mut site_iter = fn_sites.iter().peekable();

    let mut i = body.start;
    while i < body.end.min(toks.len()) {
        if let Some(r) = nested.iter().find(|r| r.contains(&i)) {
            i = r.end;
            continue;
        }
        // Interprocedural events are snapshotted at the callee ident.
        while let Some(&&si) = site_iter.peek() {
            let t = graph.sites[si].tok;
            if t < i {
                site_iter.next();
            } else if t == i {
                if !guards.is_empty() {
                    facts.guarded_calls.push((si, guards.clone()));
                }
                site_iter.next();
            } else {
                break;
            }
        }
        match &toks[i].kind {
            Tok::Punct("{") => {
                depth += 1;
                let_stack.push(None);
                for g in &mut guards {
                    if let Hold::Temp { entered, .. } = &mut g.mode {
                        *entered = true;
                    }
                }
            }
            Tok::Punct("}") => {
                guards.retain(|g| match &g.mode {
                    Hold::Let { depth: d, .. } => *d < depth,
                    Hold::Temp { depth: d, entered } => {
                        *d < depth && !(*entered && *d + 1 == depth)
                    }
                });
                depth = depth.saturating_sub(1);
                let_stack.pop();
                if let_stack.is_empty() {
                    let_stack.push(None);
                }
            }
            Tok::Punct(";") => {
                guards.retain(|g| !matches!(&g.mode, Hold::Temp { depth: d, .. } if *d >= depth));
                if let Some(top) = let_stack.last_mut() {
                    *top = None;
                }
            }
            Tok::Ident(kw) if kw == "let" => {
                // Binding name: `let [mut] name =` (patterns -> None).
                let mut j = i + 1;
                if matches!(toks.get(j).map(|t| &t.kind), Some(Tok::Ident(m)) if m == "mut") {
                    j += 1;
                }
                let name = match toks.get(j).map(|t| &t.kind) {
                    Some(Tok::Ident(n))
                        if matches!(toks.get(j + 1).map(|t| &t.kind), Some(Tok::Punct("=" | ":"))) =>
                    {
                        Some(n.clone())
                    }
                    _ => None,
                };
                if let Some(top) = let_stack.last_mut() {
                    *top = name.clone();
                }
                // Alias: `let x = [&] self.field ..;` / `let x = [&] recv.getter(..)`.
                if let Some(name) = name {
                    if let Some(eq) = find_eq(toks, j, body.end) {
                        if let Some((id, indexed)) = forward_lock_path(toks, eq + 1, f, syms) {
                            aliases.insert(name, (id, indexed));
                        }
                    }
                }
            }
            Tok::Ident(kw) if kw == "drop" => {
                // `drop(name)` releases a let-bound guard early.
                if toks.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct("(")) {
                    if let Some(Tok::Ident(victim)) = toks.get(i + 2).map(|t| &t.kind) {
                        if toks.get(i + 3).map(|t| &t.kind) == Some(&Tok::Punct(")")) {
                            guards.retain(|g| {
                                !matches!(&g.mode, Hold::Let { name, .. } if name == victim)
                            });
                        }
                    }
                }
            }
            Tok::Ident(name) if name == "spawn" && tracing => {
                if let Some(finding) = check_spawn(toks, i, f, file) {
                    out.findings.push(finding);
                }
            }
            Tok::Ident(_) => {
                // Acquisition?
                if let Some(acq) = acquisition_at(toks, i, f, syms, &aliases) {
                    let line = toks[i].line;
                    record_acquisition(&mut facts, &mut guards, &let_stack, depth, acq, line, f, out);
                    // Skip past the `( )` so `lock` isn't also a call.
                    i += 1;
                    continue;
                }
                // Blocking op?
                if !guards.is_empty() {
                    if let Some(op) = blocking_at(toks, i) {
                        let held = guards
                            .iter()
                            .find_map(|g| g.lock.clone())
                            .unwrap_or_else(|| "a lock".into());
                        let held_line = guards.first().map_or(0, |g| g.line);
                        out.findings.push(LockFinding {
                            rule: "blocking-while-locked",
                            file: f.file,
                            line: toks[i].line,
                            message: format!(
                                "blocking `{op}(..)` while `{held}` (acquired line {held_line}) \
                                 is held — every contender stalls behind this call"
                            ),
                        });
                    }
                }
                if let Some(op) = blocking_at(toks, i) {
                    facts.blocks.entry(op.to_string()).or_insert(toks[i].line);
                }
            }
            _ => {}
        }
        i += 1;
    }
    facts
}

/// Finds the `=` of a `let` statement (same statement, before `;`).
fn find_eq(toks: &[Token], from: usize, end: usize) -> Option<usize> {
    let mut i = from;
    while i < end {
        match &toks[i].kind {
            Tok::Punct("=") => return Some(i),
            Tok::Punct(";" | "{") => return None,
            _ => i += 1,
        }
    }
    None
}

/// A resolved acquisition candidate at an ident token.
struct Acq {
    lock: Option<String>,
    indexed: bool,
}

/// Records an acquisition: order edges vs. every live guard, self-edge
/// findings, the facts entry, and the new guard itself.
#[allow(clippy::too_many_arguments)]
fn record_acquisition(
    facts: &mut FnFacts,
    guards: &mut Vec<Guard>,
    let_stack: &[Option<String>],
    depth: usize,
    acq: Acq,
    line: u32,
    f: &symbols::FnDef,
    out: &mut Analysis,
) {
    if let Some(id) = &acq.lock {
        facts.acquires.entry(id.clone()).or_insert(line);
        for g in guards.iter() {
            let Some(held) = &g.lock else { continue };
            if held == id {
                let what = if acq.indexed || g.indexed {
                    "two elements of the indexed lock"
                } else {
                    "the already-held lock"
                };
                out.findings.push(LockFinding {
                    rule: "lock-order-cycle",
                    file: f.file,
                    line,
                    message: format!(
                        "acquiring {what} `{id}` while the guard from line {} is live in \
                         `{}` — nested same-name acquisition deadlocks unless globally \
                         index-ordered",
                        g.line,
                        f.qualified()
                    ),
                });
            } else {
                out.graph.edges.push(OrderEdge {
                    held: held.clone(),
                    acquired: id.clone(),
                    file: f.file,
                    line,
                    held_line: g.line,
                    func: f.qualified(),
                });
            }
        }
    }
    let mode = match let_stack.last().and_then(|n| n.clone()) {
        Some(name) => Hold::Let { name, depth },
        None => Hold::Temp {
            depth,
            entered: false,
        },
    };
    guards.push(Guard {
        lock: acq.lock,
        indexed: acq.indexed,
        line,
        mode,
    });
}

/// Is token `i` a lock acquisition? Handles `.lock()`, `.read()`,
/// `.write()` (RwLock fields only), and the bare `lock(&expr)` helper
/// idiom (a same-crate fn named `lock` returning a guard).
fn acquisition_at(
    toks: &[Token],
    i: usize,
    f: &symbols::FnDef,
    syms: &Symbols,
    aliases: &BTreeMap<String, (String, bool)>,
) -> Option<Acq> {
    let Tok::Ident(name) = &toks[i].kind else {
        return None;
    };
    let prev_dot = i > 0 && toks[i - 1].kind == Tok::Punct(".");
    match name.as_str() {
        "lock" | "read" | "write" if prev_dot => {
            // Empty parens: `io::Read::read(&mut buf)` etc. stay out.
            if toks.get(i + 1).map(|t| &t.kind) != Some(&Tok::Punct("("))
                || toks.get(i + 2).map(|t| &t.kind) != Some(&Tok::Punct(")"))
            {
                return None;
            }
            let (segs, mut indexed, getter) = receiver_path(toks, i - 2);
            let resolved = resolve_lock_path(&segs, getter, f, syms, aliases);
            if let Some((_, idx)) = &resolved {
                indexed |= *idx;
            }
            match (name.as_str(), &resolved) {
                // `.read()`/`.write()` only count on known RwLocks.
                ("read" | "write", Some((id, _)))
                    if syms
                        .locks
                        .get(id)
                        .is_some_and(|d| d.kind == symbols::LockKind::RwLock)
                        || id.ends_with("()") =>
                {
                    Some(Acq {
                        lock: Some(id.clone()),
                        indexed,
                    })
                }
                ("read" | "write", _) => None,
                ("lock", Some((id, _))) => Some(Acq {
                    lock: Some(id.clone()),
                    indexed,
                }),
                ("lock", None) => Some(Acq {
                    lock: None,
                    indexed,
                }),
                _ => None,
            }
        }
        "lock" if !prev_dot && i > 0 && toks[i - 1].kind != Tok::Punct("::") => {
            // Bare helper call `lock(&expr)` — only when the crate
            // defines a guard-returning `lock` fn.
            if toks.get(i + 1).map(|t| &t.kind) != Some(&Tok::Punct("(")) {
                return None;
            }
            let helper_exists = syms.by_name.get("lock").is_some_and(|c| {
                c.iter().any(|&k| {
                    let d = &syms.fns[k];
                    d.crate_name == f.crate_name && d.returns_lock && !d.is_test
                })
            });
            if !helper_exists {
                return None;
            }
            let resolved = forward_lock_path(toks, i + 2, f, syms)
                .or_else(|| forward_alias(toks, i + 2, aliases));
            match resolved {
                Some((id, indexed)) => Some(Acq {
                    lock: Some(id),
                    indexed,
                }),
                None => Some(Acq {
                    lock: None,
                    indexed: false,
                }),
            }
        }
        _ => None,
    }
}

/// Walks a receiver chain *backwards* from `j` (the token before the
/// `.`): returns (segments in source order, saw-index, trailing call).
fn receiver_path(toks: &[Token], j: usize) -> (Vec<String>, bool, bool) {
    let mut segs: Vec<String> = Vec::new();
    let mut indexed = false;
    let mut getter = false;
    let mut j = j as isize;
    let mut first = true;
    while j >= 0 {
        match &toks[j as usize].kind {
            Tok::Punct("]") => {
                indexed = true;
                j = match_open(toks, j as usize) as isize - 1;
            }
            Tok::Punct(")") => {
                let open = match_open(toks, j as usize);
                if open == 0 {
                    break;
                }
                if let Tok::Ident(n) = &toks[open - 1].kind {
                    if first {
                        getter = true;
                    }
                    segs.push(n.clone());
                    j = open as isize - 2;
                    if j >= 0 && !matches!(&toks[j as usize + 1].kind, Tok::Punct("." | "::")) {
                        break;
                    }
                } else {
                    break;
                }
            }
            Tok::Ident(n) => {
                segs.push(n.clone());
                j -= 1;
                if j < 0 || !matches!(&toks[j as usize].kind, Tok::Punct("." | "::")) {
                    break;
                }
                j -= 1;
            }
            _ => break,
        }
        first = false;
    }
    segs.reverse();
    (segs, indexed, getter)
}

/// Backwards bracket match: index of the `[`/`(` opening the bracket
/// closed at `close`.
fn match_open(toks: &[Token], close: usize) -> usize {
    let (o, c) = match &toks[close].kind {
        Tok::Punct("]") => ("[", "]"),
        Tok::Punct(")") => ("(", ")"),
        _ => return close,
    };
    let mut depth = 0usize;
    let mut i = close as isize;
    while i >= 0 {
        match &toks[i as usize].kind {
            Tok::Punct(p) if *p == c => depth += 1,
            Tok::Punct(p) if *p == o => {
                depth -= 1;
                if depth == 0 {
                    return i as usize;
                }
            }
            _ => {}
        }
        i -= 1;
    }
    0
}

/// Walks a lock path *forwards* from `i` (after `=` or an opening
/// paren): `[&] [mut] self.field[..]` / `recv.getter(..)` / `IDENT`.
/// Returns the resolved lock id.
fn forward_lock_path(
    toks: &[Token],
    mut i: usize,
    f: &symbols::FnDef,
    syms: &Symbols,
) -> Option<(String, bool)> {
    while matches!(
        toks.get(i).map(|t| &t.kind),
        Some(Tok::Punct("&") | Tok::Ident(_))
    ) {
        match &toks[i].kind {
            Tok::Punct("&") => i += 1,
            Tok::Ident(m) if m == "mut" => i += 1,
            _ => break,
        }
    }
    let mut segs: Vec<String> = Vec::new();
    let mut indexed = false;
    let mut getter = false;
    loop {
        match toks.get(i).map(|t| &t.kind) {
            Some(Tok::Ident(n)) => {
                segs.push(n.clone());
                i += 1;
                match toks.get(i).map(|t| &t.kind) {
                    Some(Tok::Punct("." | "::")) => i += 1,
                    Some(Tok::Punct("[")) => {
                        indexed = true;
                        i = symbols::match_close(toks, i) + 1;
                        if matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Punct("."))) {
                            i += 1;
                        } else {
                            break;
                        }
                    }
                    Some(Tok::Punct("(")) => {
                        getter = true;
                        break;
                    }
                    _ => break,
                }
            }
            _ => break,
        }
    }
    if segs.is_empty() {
        return None;
    }
    resolve_lock_path(&segs, getter, f, syms, &BTreeMap::new())
        .map(|(id, idx)| (id, idx || indexed))
}

/// Forward path that is just a local alias name.
fn forward_alias(
    toks: &[Token],
    mut i: usize,
    aliases: &BTreeMap<String, (String, bool)>,
) -> Option<(String, bool)> {
    while matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Punct("&"))) {
        i += 1;
    }
    match toks.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(n)) => aliases.get(n.as_str()).cloned(),
        _ => None,
    }
}

/// Resolves a receiver path to a canonical lock id.
///
/// * `self.field` -> `crate::Owner::field` (via the impl owner);
/// * `x.field` -> the unique lock def whose field name matches;
/// * `recv.getter(..)` (trailing call) -> `crate::Owner::getter()` when
///   the getter's return type mentions a lock;
/// * a bare local/param -> alias table, else unresolved (`None`).
fn resolve_lock_path(
    segs: &[String],
    getter: bool,
    f: &symbols::FnDef,
    syms: &Symbols,
    aliases: &BTreeMap<String, (String, bool)>,
) -> Option<(String, bool)> {
    if segs.is_empty() {
        return None;
    }
    let last = segs.last().expect("nonempty").as_str();
    if getter {
        // Acquisition method names are never getters: `x.lock(..)` seen
        // as a trailing call (e.g. while aliasing `let g = s.lock()..`)
        // must not resolve to a guard-returning helper fn.
        if matches!(last, "lock" | "read" | "write") {
            return None;
        }
        // `..shard_of(k)` — resolve the getter fn.
        let cands = syms.by_name.get(last)?;
        let best = cands
            .iter()
            .map(|&c| &syms.fns[c])
            .find(|d| d.returns_lock && !d.is_test && d.crate_name == f.crate_name)
            .or_else(|| {
                cands
                    .iter()
                    .map(|&c| &syms.fns[c])
                    .find(|d| d.returns_lock && !d.is_test)
            })?;
        let owner = best.owner.clone().unwrap_or_else(|| "fn".into());
        return Some((format!("{}::{owner}::{last}()", best.crate_name), true));
    }
    if segs.len() == 1 {
        // Bare name: alias, else unresolved local/param.
        return aliases.get(last).cloned();
    }
    // `self.field` / `x.field` / `x.y.field`: match by field name.
    let suffix = format!("::{last}");
    let defs: Vec<&symbols::LockDef> = syms
        .locks
        .values()
        .filter(|d| d.id.ends_with(&suffix))
        .collect();
    if segs.first().map(String::as_str) == Some("self") {
        if let Some(owner) = &f.owner {
            let id = format!("{}::{owner}::{last}", f.crate_name);
            if let Some(d) = syms.locks.get(&id) {
                return Some((d.id.clone(), d.indexed));
            }
        }
    }
    match defs.as_slice() {
        [one] => Some((one.id.clone(), one.indexed)),
        many => {
            let same_crate: Vec<_> = many
                .iter()
                .filter(|d| d.id.starts_with(&format!("{}::", f.crate_name)))
                .collect();
            match same_crate.as_slice() {
                [one] => Some((one.id.clone(), one.indexed)),
                _ => None,
            }
        }
    }
}

/// Is token `i` a blocking call head?
fn blocking_at(toks: &[Token], i: usize) -> Option<&'static str> {
    let Tok::Ident(name) = &toks[i].kind else {
        return None;
    };
    let prev_dot = i > 0 && toks[i - 1].kind == Tok::Punct(".");
    if let Some(op) = BLOCKING_METHODS.iter().find(|m| **m == name.as_str()) {
        if !prev_dot {
            return None;
        }
        if toks.get(i + 1).map(|t| &t.kind) != Some(&Tok::Punct("(")) {
            return None;
        }
        // `join` must be argument-free: `Path::join(p)` is not blocking.
        if *op == "join" && toks.get(i + 2).map(|t| &t.kind) != Some(&Tok::Punct(")")) {
            return None;
        }
        return Some(op);
    }
    if let Some(op) = BLOCKING_FREE.iter().find(|m| **m == name.as_str()) {
        if toks.get(i + 1).map(|t| &t.kind) != Some(&Tok::Punct("(")) {
            return None;
        }
        // Free or `thread::sleep`-style qualified, not `.sleep()`.
        if prev_dot {
            return None;
        }
        return Some(op);
    }
    None
}

/// `spawn(..)` in a tracing crate: the closure must mention
/// `set_trace`/`TraceGuard`. Process spawns (`Command::spawn()`, no
/// closure argument) are exempt by the closure check.
fn check_spawn(
    toks: &[Token],
    i: usize,
    f: &symbols::FnDef,
    file: &SourceFile,
) -> Option<LockFinding> {
    if file.test_mask.get(i).copied().unwrap_or(false) {
        return None;
    }
    if toks.get(i + 1).map(|t| &t.kind) != Some(&Tok::Punct("(")) {
        return None;
    }
    let close = symbols::match_close(toks, i + 1);
    let args = &toks[i + 2..close.min(toks.len())];
    // `||` (empty arg list) lexes as one token, `|x|` as two `|`.
    let has_closure = args.iter().any(|t| {
        matches!(&t.kind, Tok::Punct("|" | "||"))
            || matches!(&t.kind, Tok::Ident(m) if m == "move")
    });
    if !has_closure {
        return None;
    }
    let propagates = args.iter().any(
        |t| matches!(&t.kind, Tok::Ident(n) if n == "set_trace" || n == "TraceGuard"),
    );
    if propagates {
        return None;
    }
    Some(LockFinding {
        rule: "untraced-spawn",
        file: f.file,
        line: toks[i].line,
        message: format!(
            "spawned closure in `{}` does not re-propagate the request trace id — call \
             `obs::set_trace(obs::current_trace())` (or hold an `obs::TraceGuard`) inside \
             the closure so telemetry stays attributed",
            f.qualified()
        ),
    })
}

/// All elementary cycles are overkill; for a lint, any node reachable
/// from itself is a cycle to report. DFS per edge: if `acquired` can
/// reach `held`, the closed path is a cycle. Deduped by node set.
fn find_cycles(graph: &LockGraph) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in &graph.edges {
        adj.entry(e.held.as_str()).or_default().push(e.acquired.as_str());
    }
    for v in adj.values_mut() {
        v.sort_unstable();
        v.dedup();
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut seen_sets: Vec<Vec<String>> = Vec::new();
    for e in &graph.edges {
        if let Some(mut path) = dfs_path(&adj, &e.acquired, &e.held) {
            // Close the loop: held -> acquired -> .. -> held.
            let mut cyc = vec![e.held.clone()];
            cyc.append(&mut path);
            let mut set: Vec<String> = cyc.clone();
            set.sort();
            set.dedup();
            if !seen_sets.contains(&set) {
                seen_sets.push(set);
                cycles.push(cyc);
            }
        }
    }
    cycles
}

/// Shortest-ish DFS path from `from` to `to` (inclusive of both).
fn dfs_path(adj: &BTreeMap<&str, Vec<&str>>, from: &str, to: &str) -> Option<Vec<String>> {
    let mut stack = vec![vec![from.to_string()]];
    let mut visited: Vec<String> = Vec::new();
    while let Some(path) = stack.pop() {
        let last = path.last().expect("nonempty path").clone();
        if last == to {
            return Some(path);
        }
        if visited.contains(&last) {
            continue;
        }
        visited.push(last.clone());
        if let Some(nexts) = adj.get(last.as_str()) {
            for n in nexts {
                let mut p = path.clone();
                p.push((*n).to_string());
                stack.push(p);
            }
        }
    }
    None
}

/// Renders the reviewable `results/LOCKS.txt` artifact.
pub fn render_graph(files: &[SourceFile], graph: &LockGraph) -> String {
    let mut s = String::new();
    s.push_str("# Workspace lock-order graph — generated by `cargo run -p lint`; do not edit.\n");
    s.push_str("# Nodes are named locks (fields/statics); an edge A -> B means B was\n");
    s.push_str("# acquired somewhere while a guard on A was live. The CI gate requires\n");
    s.push_str("# this graph to be acyclic.\n\n");
    let _ = writeln!(s, "nodes ({}):", graph.nodes.len());
    for (id, (kind, indexed, site)) in &graph.nodes {
        let idx = if *indexed { "[indexed] " } else { "" };
        let _ = writeln!(s, "  {id}  ({kind}) {idx}defined {site}");
    }
    // Merge parallel edges for the listing.
    let mut merged: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
    for e in &graph.edges {
        merged
            .entry((e.held.clone(), e.acquired.clone()))
            .or_default()
            .push(format!(
                "{}:{} in `{}`",
                files[e.file].path.display(),
                e.line,
                e.func
            ));
    }
    let _ = writeln!(s, "\nedges ({}):", merged.len());
    for ((held, acquired), sites) in &merged {
        let mut sites = sites.clone();
        sites.sort();
        sites.dedup();
        let _ = writeln!(s, "  {held} -> {acquired}");
        for site in sites {
            let _ = writeln!(s, "      at {site}");
        }
    }
    if graph.cycles.is_empty() {
        s.push_str("\ncycles: none\n");
    } else {
        let _ = writeln!(s, "\ncycles ({}):", graph.cycles.len());
        for c in &graph.cycles {
            let _ = writeln!(s, "  {}", c.join(" -> "));
        }
    }
    s
}
