//! Layer 2: domain semantic validation.
//!
//! Where [`crate::rules`] checks source text, this layer checks the
//! *artifacts* the workspace ships: every model in the `nnmodel` zoo must
//! pass [`nnmodel::validate`] and lower through `Workload::try_from_graph`,
//! and every Table II/III hardware budget preset must pass
//! [`spa_arch::HwBudget::validate`]. Running these in the lint binary (and
//! CI) means a zoo or preset edit that breaks a structural invariant fails
//! the gate with a named diagnostic instead of panicking inside the
//! engine during some later experiment.

use nnmodel::{zoo, Workload};
use spa_arch::HwBudget;

/// The ten models the repo's experiments and figures draw from: the nine
/// evaluation models of the paper plus EfficientNet-B0 (motivation
/// figures).
pub const ZOO_MODELS: &[&str] = &[
    "alexnet",
    "vgg16",
    "mobilenet_v1",
    "mobilenet_v2",
    "resnet18",
    "resnet50",
    "resnet152",
    "squeezenet1_0",
    "inception_v1",
    "efficientnet_b0",
];

/// One semantic-validation failure.
#[derive(Debug, Clone)]
pub struct SemanticFailure {
    /// What was validated (model or budget name).
    pub subject: String,
    /// The diagnostic.
    pub message: String,
}

/// Outcome of the semantic pass.
#[derive(Debug, Clone, Default)]
pub struct SemanticReport {
    /// Zoo models validated.
    pub models_checked: usize,
    /// Zoo models that failed.
    pub models_failed: usize,
    /// Budget presets validated.
    pub budgets_checked: usize,
    /// Budget presets that failed.
    pub budgets_failed: usize,
    /// Every failure, in check order.
    pub failures: Vec<SemanticFailure>,
}

impl SemanticReport {
    /// `true` if everything validated.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Validates the whole zoo and every budget preset.
pub fn run() -> SemanticReport {
    let mut report = SemanticReport::default();
    for name in ZOO_MODELS {
        report.models_checked += 1;
        let Some(graph) = zoo::by_name(name) else {
            report.models_failed += 1;
            report.failures.push(SemanticFailure {
                subject: (*name).to_string(),
                message: "model missing from zoo::by_name".to_string(),
            });
            continue;
        };
        let outcome = nnmodel::validate(&graph)
            .map_err(|e| e.to_string())
            .and_then(|()| {
                Workload::try_from_graph(&graph)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            });
        if let Err(message) = outcome {
            report.models_failed += 1;
            report.failures.push(SemanticFailure {
                subject: (*name).to_string(),
                message,
            });
        }
    }
    for budget in HwBudget::asic_suite()
        .into_iter()
        .chain(HwBudget::fpga_suite())
    {
        report.budgets_checked += 1;
        if let Err(e) = budget.validate() {
            report.budgets_failed += 1;
            report.failures.push(SemanticFailure {
                subject: budget.name.clone(),
                message: e.to_string(),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_artifacts_are_clean() {
        let r = run();
        assert!(r.clean(), "semantic failures: {:?}", r.failures);
        assert_eq!(r.models_checked, 10);
        assert_eq!(r.budgets_checked, 7);
    }
}
