//! Approximate intra-workspace call graph (the middle of Layer 3).
//!
//! Call sites are token patterns (`ident (` with an optional `::`/`.`
//! qualifier chain); resolution is by name with path heuristics, not by
//! types. The graph deliberately over-approximates in places (an
//! ambiguous method name may resolve to several same-crate candidates)
//! and under-approximates in others (trait-object dispatch, names on the
//! common-method blacklist). Both directions are acceptable for the lock
//! rules: over-approximation produces waivable findings, and the
//! blacklist keeps `len`/`get`/`clone`-grade noise out entirely.

use crate::lexer::{Tok, Token};
use crate::symbols::{SourceFile, Symbols};
use std::collections::BTreeMap;

/// Method/function names never resolved across the graph: they are
/// overwhelmingly std methods, and a workspace function with one of
/// these names would drown the lock rules in false edges.
const COMMON_NAMES: &[&str] = &[
    "new", "default", "len", "is_empty", "push", "pop", "get", "get_mut", "insert", "remove",
    "contains", "contains_key", "clone", "iter", "iter_mut", "into_iter", "next", "collect",
    "map", "filter", "filter_map", "flat_map", "fold", "for_each", "zip", "enumerate", "rev",
    "chain", "find", "any", "all", "position", "count", "sum", "product", "unwrap", "expect",
    "unwrap_or", "unwrap_or_else", "unwrap_or_default", "ok", "err", "ok_or", "ok_or_else",
    "and_then", "or_else", "take", "replace", "clear", "extend", "append", "drain", "split",
    "sort", "sort_by", "sort_by_key", "sort_unstable", "dedup", "binary_search", "cmp", "eq",
    "ne", "hash", "fmt", "from", "into", "try_from", "try_into", "to_string", "to_owned",
    "as_str", "as_ref", "as_mut", "as_slice", "as_bytes", "parse", "drop", "min", "max", "abs",
    "floor", "ceil", "round", "sqrt", "powi", "powf", "load", "store", "swap", "fetch_add",
    "fetch_sub", "compare_exchange", "saturating_add", "saturating_sub", "saturating_mul",
    "checked_add", "checked_sub", "checked_mul", "checked_div", "wrapping_add", "is_some",
    "is_none", "is_ok", "is_err", "is_dir", "is_file", "exists", "display", "to_path_buf",
    "starts_with", "ends_with", "trim", "trim_end", "trim_start", "split_whitespace", "lines",
    "chars", "bytes", "first", "last", "keys", "values", "values_mut", "entry", "or_default",
    "or_insert", "or_insert_with", "get_or_insert_with", "resize", "truncate", "reserve",
    "copied", "cloned", "then", "then_some", "map_err", "map_or", "map_or_else", "retain",
    "windows", "chunks", "concat", "repeat", "format", "write_fmt", "finish", "field", "leak",
];

/// Rust keywords that look like call heads (`if (..)`, `while (..)`,
/// `match (..)`, `return (..)`, ...).
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "mut", "ref", "move", "in", "as", "use", "pub", "mod", "impl", "trait", "struct", "enum",
    "static", "const", "unsafe", "extern", "where", "dyn", "type", "self", "Self", "super",
    "crate", "async", "await", "box", "yield",
];

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the *calling* function in `Symbols::fns`.
    pub caller: usize,
    /// Token index of the callee name ident.
    pub tok: usize,
    /// 1-based line of the call.
    pub line: u32,
    /// Candidate callee indices into `Symbols::fns` (deduped, sorted;
    /// empty when the name resolved to nothing in the workspace).
    pub callees: Vec<usize>,
    /// Callee name as written (diagnostics).
    pub name: String,
}

/// The resolved call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Every call site, grouped by caller in token order.
    pub sites: Vec<CallSite>,
    /// Adjacency: caller fn index -> sorted deduped callee fn indices.
    pub edges: Vec<Vec<usize>>,
}

/// Builds the call graph over every non-test function body.
pub fn build(files: &[SourceFile], syms: &Symbols) -> CallGraph {
    let mut g = CallGraph {
        sites: Vec::new(),
        edges: vec![Vec::new(); syms.fns.len()],
    };
    for (fi, f) in syms.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let Some(body) = f.body.clone() else { continue };
        let file = &files[f.file];
        let toks = &file.lexed.tokens;
        // Skip nested fn bodies: they are analyzed as their own fns.
        let nested: Vec<std::ops::Range<usize>> = syms
            .fns
            .iter()
            .filter(|n| n.file == f.file && !std::ptr::eq(*n, f))
            .filter_map(|n| n.body.clone())
            .filter(|r| r.start > body.start && r.end <= body.end)
            .collect();
        let mut i = body.start;
        while i < body.end.min(toks.len()) {
            if let Some(r) = nested.iter().find(|r| r.contains(&i)) {
                i = r.end;
                continue;
            }
            if let Some(site) = call_at(toks, i, fi, syms) {
                for c in &site.callees {
                    g.edges[fi].push(*c);
                }
                g.sites.push(site);
            }
            i += 1;
        }
    }
    for e in &mut g.edges {
        e.sort_unstable();
        e.dedup();
    }
    g
}

/// If token `i` heads a call (`name (`), resolves candidates.
fn call_at(toks: &[Token], i: usize, caller: usize, syms: &Symbols) -> Option<CallSite> {
    let Tok::Ident(name) = &toks[i].kind else {
        return None;
    };
    if toks.get(i + 1).map(|t| &t.kind) != Some(&Tok::Punct("(")) {
        return None;
    }
    if KEYWORDS.contains(&name.as_str()) || COMMON_NAMES.contains(&name.as_str()) {
        return None;
    }
    // Macro invocation `name!(..)` never reaches here (the `!` sits
    // between), but `name ! (` does — the `(` check above already
    // excludes it since `!` follows the ident.
    let caller_def = &syms.fns[caller];
    let candidates = syms.by_name.get(name.as_str())?;
    let prev = i.checked_sub(1).map(|j| &toks[j].kind);
    let mut out: Vec<usize> = Vec::new();
    match prev {
        // `path :: name (` — walk the qualifier back.
        Some(Tok::Punct("::")) => {
            let mut segs: Vec<String> = Vec::new();
            let mut j = i - 1;
            while j >= 1 && toks[j].kind == Tok::Punct("::") {
                if let Tok::Ident(s) = &toks[j - 1].kind {
                    segs.push(s.clone());
                    if j < 2 {
                        break;
                    }
                    j -= 2;
                } else {
                    break;
                }
            }
            segs.reverse();
            let head = segs.first().map(String::as_str).unwrap_or("");
            let tail = segs.last().map(String::as_str).unwrap_or("");
            for &c in candidates {
                let cd = &syms.fns[c];
                if cd.is_test {
                    continue;
                }
                let crate_norm = cd.crate_name.replace('-', "_");
                let ok = if head == "crate" || head == "self" || head.is_empty() {
                    cd.crate_name == caller_def.crate_name
                } else if head == "Self" {
                    cd.crate_name == caller_def.crate_name && cd.owner == caller_def.owner
                } else if crate_norm == head {
                    // `obs::set_trace`, `pucost::util::f64_of`.
                    true
                } else {
                    // `Type::assoc(..)` — match the owner type.
                    cd.owner.as_deref() == Some(tail)
                };
                if ok {
                    out.push(c);
                }
            }
        }
        // `.name(` — method call on an arbitrary receiver.
        Some(Tok::Punct(".")) => {
            let workspace_defs: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&c| !syms.fns[c].is_test)
                .collect();
            // Unambiguous names resolve across crates; ambiguous ones
            // only within the caller's crate (documented approximation).
            if workspace_defs.len() <= 2 {
                out.extend(workspace_defs);
            } else {
                out.extend(
                    workspace_defs
                        .iter()
                        .copied()
                        .filter(|&c| syms.fns[c].crate_name == caller_def.crate_name),
                );
            }
        }
        // Bare `name(` — same-crate free fn (or same-owner method via
        // implicit `self.` — Rust has none, so free fns only).
        _ => {
            out.extend(
                candidates
                    .iter()
                    .copied()
                    .filter(|&c| {
                        let cd = &syms.fns[c];
                        !cd.is_test && cd.crate_name == caller_def.crate_name
                    }),
            );
        }
    }
    out.sort_unstable();
    out.dedup();
    if out.is_empty() {
        return None;
    }
    Some(CallSite {
        caller,
        tok: i,
        line: toks[i].line,
        callees: out,
        name: name.clone(),
    })
}

/// Propagates a per-function fact transitively over the call graph:
/// `seed[f]` maps keys (lock ids, blocking-op names) to a provenance
/// string; the result maps every key reachable from `f` through calls to
/// a `via `-chain provenance. `cross_into` filters edges: an edge into
/// callee `c` is followed only when `cross_into(c)` is true.
pub fn propagate(
    syms: &Symbols,
    edges: &[Vec<usize>],
    seed: &[BTreeMap<String, String>],
    cross_into: impl Fn(usize) -> bool,
) -> Vec<BTreeMap<String, String>> {
    let mut all: Vec<BTreeMap<String, String>> = seed.to_vec();
    // Fixed point: small graph (hundreds of fns), terminates because the
    // key sets only grow and are bounded.
    loop {
        let mut changed = false;
        for f in 0..all.len() {
            for &c in &edges[f] {
                if c == f || !cross_into(c) {
                    continue;
                }
                let adds: Vec<(String, String)> = all[c]
                    .iter()
                    .filter(|(k, _)| !all[f].contains_key(*k))
                    .map(|(k, _)| (k.clone(), format!("via `{}`", syms.fns[c].qualified())))
                    .collect();
                if !adds.is_empty() {
                    changed = true;
                    all[f].extend(adds);
                }
            }
        }
        if !changed {
            break;
        }
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::{self, FileCtx};
    use crate::symbols;
    use std::path::PathBuf;

    fn files(srcs: &[(&str, &str)]) -> Vec<SourceFile> {
        srcs.iter()
            .map(|(crate_name, src)| {
                let lexed = lex(src);
                let test_mask = rules::test_region_mask(&lexed.tokens);
                SourceFile {
                    path: PathBuf::from(format!("{crate_name}.rs")),
                    ctx: FileCtx {
                        crate_name: (*crate_name).into(),
                        is_bin: false,
                    },
                    lexed,
                    test_mask,
                }
            })
            .collect()
    }

    fn graph(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, Symbols, CallGraph) {
        let fs = files(srcs);
        let syms = symbols::extract(&fs);
        let g = build(&fs, &syms);
        (fs, syms, g)
    }

    fn edge(syms: &Symbols, g: &CallGraph, from: &str, to: &str) -> bool {
        let fi = syms.fns.iter().position(|f| f.qualified() == from).unwrap();
        let ti = syms.fns.iter().position(|f| f.qualified() == to).unwrap();
        g.edges[fi].contains(&ti)
    }

    #[test]
    fn same_crate_free_call_resolves() {
        let (_, syms, g) = graph(&[("a", "fn f() { helper(); } fn helper() {}")]);
        assert!(edge(&syms, &g, "a::f", "a::helper"));
    }

    #[test]
    fn crate_qualified_call_crosses_crates() {
        let (_, syms, g) = graph(&[
            ("serve", "fn f() { obs::set_trace(1); }"),
            ("obs", "pub fn set_trace(id: u64) {}"),
        ]);
        assert!(edge(&syms, &g, "serve::f", "obs::set_trace"));
    }

    #[test]
    fn unambiguous_method_crosses_crates_ambiguous_does_not() {
        let (_, syms, g) = graph(&[
            ("serve", "fn f(c: &C) { c.probe_batch(); c.common(); }"),
            ("pucost", "impl C { pub fn probe_batch(&self) {} }"),
            ("x1", "impl A { pub fn common(&self) {} }"),
            ("x2", "impl B { pub fn common(&self) {} }"),
            ("x3", "impl D { pub fn common(&self) {} }"),
        ]);
        assert!(edge(&syms, &g, "serve::f", "pucost::C::probe_batch"));
        assert!(!edge(&syms, &g, "serve::f", "x1::A::common"));
    }

    #[test]
    fn common_names_are_never_edges() {
        let (_, syms, g) = graph(&[("a", "fn f(v: &V) { v.get(); } impl V { pub fn get(&self) {} }")]);
        let fi = syms.fns.iter().position(|f| f.qualified() == "a::f").unwrap();
        assert!(g.edges[fi].is_empty());
    }

    #[test]
    fn propagate_reaches_transitively() {
        let (_, syms, g) = graph(&[(
            "a",
            "fn top() { mid(); } fn mid() { leaf(); } fn leaf() {}",
        )]);
        let leaf = syms.fns.iter().position(|f| f.name == "leaf").unwrap();
        let top = syms.fns.iter().position(|f| f.name == "top").unwrap();
        let mut seed = vec![BTreeMap::new(); syms.fns.len()];
        seed[leaf].insert("recv".to_string(), "direct".to_string());
        let all = propagate(&syms, &g.edges, &seed, |_| true);
        assert!(all[top].contains_key("recv"));
        assert!(all[top]["recv"].contains("a::mid"));
    }

    #[test]
    fn propagate_respects_crossing_filter() {
        let (_, syms, g) = graph(&[
            ("a", "fn top() { obs::emit(); }"),
            ("obs", "pub fn emit() { flush_sink(); } fn flush_sink() {}"),
        ]);
        let emit = syms.fns.iter().position(|f| f.name == "emit").unwrap();
        let top = syms.fns.iter().position(|f| f.name == "top").unwrap();
        let mut seed = vec![BTreeMap::new(); syms.fns.len()];
        seed[emit].insert("flush".to_string(), "direct".to_string());
        let all = propagate(&syms, &g.edges, &seed, |c| syms.fns[c].crate_name != "obs");
        assert!(!all[top].contains_key("flush"));
    }
}
