//! The deny-by-default source rules (Layer 1 of the checker).
//!
//! Every rule guards an invariant the repo's tests pin globally but
//! nothing enforced at the source level before this crate existed:
//! `dse_equiv`/`obs_equiv` prove bit-identical DSE results across thread
//! counts and `OBS_LEVEL`s, and one stray wall-clock read or hash-order
//! iteration in a result-affecting path silently breaks that contract.
//!
//! | rule          | invariant                                            |
//! |---------------|------------------------------------------------------|
//! | `nondet-time` | no `SystemTime`/`Instant` in deterministic crates    |
//! | `nondet-iter` | no `HashMap`/`HashSet` in deterministic crates       |
//! | `lock-unwrap` | poison-recovery idiom on every lock guard            |
//! | `as-cast`     | no bare `as` numeric casts in cost-model arithmetic  |
//! | `float-eq`    | no float literal `==`/`!=`                           |
//! | `panic-path`  | no `panic!`/`.unwrap()` in public library API bodies |
//!
//! Rules are lexical approximations by design (no type information), so
//! each supports the `// lint: allow(<rule>)` waiver for sites where the
//! flagged construct is deliberate and documented.

use crate::lexer::{Lexed, Tok, Token};

/// Names of every rule, in documentation order.
pub const RULE_NAMES: &[&str] = &[
    "nondet-time",
    "nondet-iter",
    "lock-unwrap",
    "as-cast",
    "float-eq",
    "panic-path",
];

/// Crates whose arithmetic must avoid bare `as` casts (the analytical
/// cost model and everything that feeds the MILP objective).
const AS_CAST_CRATES: &[&str] = &["pucost", "spa-sim", "mip"];

/// Crates exempt from the wall-clock rule: `obs` owns monotonic timing,
/// the experiment/bench harnesses measure wall time on purpose, and the
/// serving layer (`serve`) owns per-request deadlines and queue-wait
/// metrics — wall time there decides *when* work stops (typed Partial),
/// never what any completed generation computes.
const TIME_EXEMPT_CRATES: &[&str] = &["obs", "experiments", "bench", "serve"];

/// Crates exempt from the hash-collection rule: `obs` aggregates across
/// threads behind a sort-on-report, and the criterion harness in `bench`
/// never feeds deterministic output.
const ITER_EXEMPT_CRATES: &[&str] = &["obs", "bench"];

/// Crates exempt from the public-API panic rule: experiment binaries and
/// benches are leaf programs where aborting with a message is the
/// intended failure mode.
const PANIC_EXEMPT_CRATES: &[&str] = &["experiments", "bench"];

/// Primitive numeric type names for the `as-cast` rule.
const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Where a file sits in the workspace — determines rule applicability.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Package name (`pucost`, `spa-sim`, ..., `deepburning-seg` for the
    /// facade crate at the workspace root).
    pub crate_name: String,
    /// `true` for binary sources (`src/bin/*`, `src/main.rs`).
    pub is_bin: bool,
}

/// One rule violation before waiver matching.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Rule identifier (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-oriented diagnostic.
    pub message: String,
}

/// Runs every applicable rule over a lexed file.
pub fn check(lexed: &Lexed, ctx: &FileCtx) -> Vec<RawFinding> {
    let toks = &lexed.tokens;
    let skipped = test_region_mask(toks);
    let in_pub_fn = pub_fn_mask(toks);
    let mut out = Vec::new();

    let time_on = !TIME_EXEMPT_CRATES.contains(&ctx.crate_name.as_str());
    let iter_on = !ITER_EXEMPT_CRATES.contains(&ctx.crate_name.as_str());
    let cast_on = AS_CAST_CRATES.contains(&ctx.crate_name.as_str());
    let panic_on = !ctx.is_bin && !PANIC_EXEMPT_CRATES.contains(&ctx.crate_name.as_str());

    for i in 0..toks.len() {
        if skipped[i] {
            continue;
        }
        let line = toks[i].line;
        match &toks[i].kind {
            Tok::Ident(name) => match name.as_str() {
                "SystemTime" if time_on => out.push(RawFinding {
                    rule: "nondet-time",
                    line,
                    message: "`SystemTime` reads the wall clock; deterministic paths must \
                              derive timing from the cost model (or waive with rationale)"
                        .into(),
                }),
                "Instant" if time_on => out.push(RawFinding {
                    rule: "nondet-time",
                    line,
                    message: "`Instant` outside `obs` taints deterministic paths; time via \
                              `obs::span!` or waive with rationale"
                        .into(),
                }),
                "HashMap" | "HashSet" if iter_on => out.push(RawFinding {
                    rule: "nondet-iter",
                    line,
                    message: format!(
                        "`{name}` iteration order is nondeterministic; use \
                         `BTreeMap`/`BTreeSet` or sort before iterating (waive \
                         lookup-only uses with rationale)"
                    ),
                }),
                "as" if cast_on => {
                    if let Some(Tok::Ident(ty)) = toks.get(i + 1).map(|t| &t.kind) {
                        if NUMERIC_TYPES.contains(&ty.as_str()) {
                            out.push(RawFinding {
                                rule: "as-cast",
                                line,
                                message: format!(
                                    "bare `as {ty}` can truncate or lose precision silently; \
                                     use `From`/`try_from` or the blessed util helpers"
                                ),
                            });
                        }
                    }
                }
                "panic" | "todo" | "unimplemented"
                    if panic_on
                        && in_pub_fn[i]
                        && matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Punct("!"))) =>
                {
                    out.push(RawFinding {
                        rule: "panic-path",
                        line,
                        message: format!(
                            "`{name}!` in a public library API; return the crate's typed \
                             error instead"
                        ),
                    });
                }
                "unwrap"
                    if panic_on
                        && in_pub_fn[i]
                        && i > 0
                        && matches!(&toks[i - 1].kind, Tok::Punct("."))
                        && !is_lock_guard_chain(toks, i) =>
                {
                    // Guard unwraps are lock-unwrap's domain (reported with
                    // the poison-recovery fix, not the typed-error one).
                    out.push(RawFinding {
                        rule: "panic-path",
                        line,
                        message: "`.unwrap()` in a public library API; return the crate's \
                                  typed error (or `.expect` a documented invariant)"
                            .into(),
                    });
                }
                "lock" | "read" | "write" => {
                    // `.lock().unwrap()` / `.read().expect(...)` — empty
                    // parens keep io::Read::read(&mut buf) out.
                    let chain = i > 0
                        && matches!(&toks[i - 1].kind, Tok::Punct("."))
                        && matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Punct("(")))
                        && matches!(toks.get(i + 2).map(|t| &t.kind), Some(Tok::Punct(")")))
                        && matches!(toks.get(i + 3).map(|t| &t.kind), Some(Tok::Punct(".")));
                    if chain {
                        if let Some(Tok::Ident(m)) = toks.get(i + 4).map(|t| &t.kind) {
                            if m == "unwrap" || m == "expect" {
                                out.push(RawFinding {
                                    rule: "lock-unwrap",
                                    line: toks[i + 4].line,
                                    message: format!(
                                        "`.{name}().{m}(..)` panics on poisoned locks and \
                                         cascades; recover with \
                                         `.unwrap_or_else(|e| e.into_inner())`"
                                    ),
                                });
                            }
                        }
                    }
                }
                _ => {}
            },
            Tok::Punct(op @ ("==" | "!=")) => {
                let prev_float = i > 0 && toks[i - 1].kind == Tok::Float;
                let next_float = toks.get(i + 1).is_some_and(|t| t.kind == Tok::Float);
                if prev_float || next_float {
                    out.push(RawFinding {
                        rule: "float-eq",
                        line,
                        message: format!(
                            "float literal `{op}` is brittle; compare with a tolerance or \
                             restructure on integers (waive exact-representation checks \
                             with rationale)"
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// `true` at indices inside a lock-guard chain ending in unwrap/expect —
/// used to keep `lock-unwrap` and `panic-path` from double-reporting.
fn is_lock_guard_chain(toks: &[Token], unwrap_idx: usize) -> bool {
    // Pattern behind the `.` before unwrap: `lock ( )` (idx-4..idx-2).
    if unwrap_idx < 4 {
        return false;
    }
    matches!(&toks[unwrap_idx - 2].kind, Tok::Punct(")"))
        && matches!(&toks[unwrap_idx - 3].kind, Tok::Punct("("))
        && matches!(&toks[unwrap_idx - 4].kind,
            Tok::Ident(n) if n == "lock" || n == "read" || n == "write")
}

/// Marks every token inside a `#[cfg(test)]`-gated item (and the
/// attribute itself). Handles stacked attributes between the cfg and the
/// item, items ending in `;`, and nested braces in the body. Shared with
/// Layer 3, which must skip the same regions.
pub(crate) fn test_region_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if let Some(close) = match_cfg_test_attr(toks, i) {
            // Walk from the end of the attribute to the end of the item.
            let start = i;
            let mut j = close + 1;
            // Skip further attributes.
            while j < toks.len() && toks[j].kind == Tok::Punct("#") {
                let mut depth = 0usize;
                j += 1; // onto `[`
                while j < toks.len() {
                    match &toks[j].kind {
                        Tok::Punct("[") => depth += 1,
                        Tok::Punct("]") => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            // Consume the item: to matching `}` of its first brace, or to
            // a `;` that appears before any brace.
            let mut depth = 0usize;
            let mut saw_brace = false;
            while j < toks.len() {
                match &toks[j].kind {
                    Tok::Punct("{") => {
                        depth += 1;
                        saw_brace = true;
                    }
                    Tok::Punct("}") => {
                        depth = depth.saturating_sub(1);
                        if saw_brace && depth == 0 {
                            break;
                        }
                    }
                    Tok::Punct(";") if !saw_brace => break,
                    _ => {}
                }
                j += 1;
            }
            for m in mask.iter_mut().take((j + 1).min(toks.len())).skip(start) {
                *m = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// If `toks[i..]` starts a `#[cfg(...test...)]` attribute, returns the
/// index of its closing `]`.
fn match_cfg_test_attr(toks: &[Token], i: usize) -> Option<usize> {
    if toks.get(i)?.kind != Tok::Punct("#") || toks.get(i + 1)?.kind != Tok::Punct("[") {
        return None;
    }
    if !matches!(&toks.get(i + 2)?.kind, Tok::Ident(n) if n == "cfg") {
        return None;
    }
    if toks.get(i + 3)?.kind != Tok::Punct("(") {
        return None;
    }
    let mut depth = 0usize;
    let mut saw_test = false;
    let mut j = i + 3;
    while j < toks.len() {
        match &toks[j].kind {
            Tok::Punct("(") => depth += 1,
            Tok::Punct(")") => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Ident(n) if n == "test" => saw_test = true,
            _ => {}
        }
        j += 1;
    }
    if !saw_test {
        return None;
    }
    // Expect the closing `]` right after.
    match toks.get(j + 1) {
        Some(t) if t.kind == Tok::Punct("]") => Some(j + 1),
        _ => None,
    }
}

/// Marks tokens inside the body of a `pub fn` (lexical approximation of
/// "public library API path": direct bodies only, not private helpers a
/// public function calls into).
fn pub_fn_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut depth = 0usize;
    let mut body_stack: Vec<usize> = Vec::new();
    let mut pending = false; // saw `pub ... fn`, waiting for `{`
    let mut i = 0;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Ident(n) if n == "pub" => {
                // Skip a visibility scope `(crate)` / `(super)` / `(in x)`.
                let mut j = i + 1;
                if toks.get(j).map(|t| &t.kind) == Some(&Tok::Punct("(")) {
                    let mut d = 0usize;
                    while j < toks.len() {
                        match &toks[j].kind {
                            Tok::Punct("(") => d += 1,
                            Tok::Punct(")") => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    j += 1;
                }
                // Skip qualifiers before `fn`.
                while let Some(Tok::Ident(q)) = toks.get(j).map(|t| &t.kind) {
                    match q.as_str() {
                        "const" | "async" | "unsafe" | "extern" => j += 1,
                        "fn" => {
                            pending = true;
                            break;
                        }
                        _ => break,
                    }
                }
                if matches!(toks.get(j).map(|t| &t.kind), Some(Tok::Literal)) {
                    // `pub unsafe extern "C" fn`.
                    if matches!(toks.get(j + 1).map(|t| &t.kind),
                        Some(Tok::Ident(n)) if n == "fn")
                    {
                        pending = true;
                    }
                }
            }
            Tok::Punct("{") => {
                depth += 1;
                if pending {
                    body_stack.push(depth);
                    pending = false;
                }
            }
            Tok::Punct("}") => {
                if body_stack.last() == Some(&depth) {
                    body_stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            // Trait method declaration without a body.
            Tok::Punct(";") if pending => pending = false,
            _ => {}
        }
        if !body_stack.is_empty() {
            mask[i] = true;
        }
        i += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lib_ctx(name: &str) -> FileCtx {
        FileCtx {
            crate_name: name.into(),
            is_bin: false,
        }
    }

    fn rules_fired(src: &str, crate_name: &str) -> Vec<&'static str> {
        check(&lex(src), &lib_ctx(crate_name))
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn a() { let m = HashMap::new(); }\n\
                   #[cfg(test)]\nmod tests { fn b() { let m = HashMap::new(); } }";
        assert_eq!(rules_fired(src, "pucost"), vec!["nondet-iter"]);
    }

    #[test]
    fn as_cast_scoped_to_cost_model_crates() {
        let src = "fn f(x: usize) -> u64 { x as u64 }";
        assert_eq!(rules_fired(src, "pucost"), vec!["as-cast"]);
        assert!(rules_fired(src, "nnmodel").is_empty());
    }

    #[test]
    fn lock_unwrap_not_doubled_as_panic_path() {
        let src = "pub fn f() { s.lock().unwrap(); }";
        assert_eq!(rules_fired(src, "autoseg"), vec!["lock-unwrap"]);
    }

    #[test]
    fn pub_fn_bodies_only_for_panic_path() {
        let src = "fn private() { x.unwrap(); }\npub fn api() { y.unwrap(); }";
        assert_eq!(rules_fired(src, "nnmodel"), vec!["panic-path"]);
    }

    #[test]
    fn expect_is_not_flagged_by_panic_path() {
        let src = "pub fn api() { y.expect(\"documented invariant\"); }";
        assert!(rules_fired(src, "nnmodel").is_empty());
    }

    #[test]
    fn float_eq_catches_literal_comparisons() {
        assert_eq!(rules_fired("fn f(x: f64) -> bool { x == 0.0 }", "benes"), vec!["float-eq"]);
        assert!(rules_fired("fn f(x: u64) -> bool { x == 0 }", "benes").is_empty());
    }
}
