//! Symbol extraction (the front half of Layer 3).
//!
//! Layer 3 needs just enough structure to reason about locks across
//! function boundaries: which functions exist (and which `impl` block
//! owns them), which struct fields and statics are locks, and which
//! functions are lock *getters* (return a `&Mutex<..>`/`&RwLock<..>`,
//! like `EvalCache::shard_of`). Everything is recovered from the
//! [`crate::lexer`] token stream with bracket matching — no parser, no
//! type information. The approximations are deliberate and documented in
//! DESIGN.md §7; every downstream rule supports waivers.

use crate::lexer::{Lexed, Tok, Token};
use crate::rules::FileCtx;
use std::collections::BTreeMap;
use std::ops::Range;
use std::path::PathBuf;

/// One source file handed to the workspace analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root (diagnostics).
    pub path: PathBuf,
    /// Crate / binary classification.
    pub ctx: FileCtx,
    /// Lexed token stream + comments.
    pub lexed: Lexed,
    /// `true` per token inside a `#[cfg(test)]` region (rule-exempt).
    pub test_mask: Vec<bool>,
}

/// Which synchronization primitive a lock definition is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `std::sync::Mutex`.
    Mutex,
    /// `std::sync::RwLock`.
    RwLock,
    /// `std::sync::Condvar` (tracked so `.wait` is recognized; never an
    /// order-graph node itself).
    Condvar,
}

impl LockKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LockKind::Mutex => "Mutex",
            LockKind::RwLock => "RwLock",
            LockKind::Condvar => "Condvar",
        }
    }
}

/// A named lock: a struct field or a static whose type mentions
/// `Mutex`/`RwLock`/`Condvar`.
#[derive(Debug, Clone)]
pub struct LockDef {
    /// Canonical id: `crate::Owner::field` or `crate::STATIC`.
    pub id: String,
    /// Primitive kind.
    pub kind: LockKind,
    /// `true` when the declared type wraps the lock in a collection
    /// (`Vec<Mutex<..>>`, `[Mutex<..>; N]`, ...): one *name* covering
    /// many lock instances, so a self-edge means two elements nested.
    pub indexed: bool,
    /// Defining file (index into the analysis file list).
    pub file: usize,
    /// 1-based line of the field/static.
    pub line: u32,
}

/// One function (or method) definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare name (`worker_loop`, `probe_batch`).
    pub name: String,
    /// `impl`/`trait` owner type, if any (`Server`, `EvalCache`).
    pub owner: Option<String>,
    /// Crate the definition lives in.
    pub crate_name: String,
    /// File index into the analysis file list.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body *including* its braces; `None` for
    /// bodiless trait methods.
    pub body: Option<Range<usize>>,
    /// Parameter names (identifiers directly followed by `:` at the top
    /// paren level of the signature).
    pub params: Vec<String>,
    /// `true` when the return type mentions `Mutex`/`RwLock` — a lock
    /// getter: `recv.shard_of(k).lock()` resolves through it.
    pub returns_lock: bool,
    /// `true` inside a `#[cfg(test)]` region (excluded from analysis).
    pub is_test: bool,
}

impl FnDef {
    /// `crate::Owner::name` / `crate::name` — stable diagnostic label.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{}::{}::{}", self.crate_name, o, self.name),
            None => format!("{}::{}", self.crate_name, self.name),
        }
    }
}

/// The workspace symbol table.
#[derive(Debug, Clone, Default)]
pub struct Symbols {
    /// Every function definition, in (file, token) order.
    pub fns: Vec<FnDef>,
    /// Lock definitions keyed by canonical id.
    pub locks: BTreeMap<String, LockDef>,
    /// Function name -> indices into `fns` (resolution index).
    pub by_name: BTreeMap<String, Vec<usize>>,
}

/// Matches the `]`/`)`/`}` closing the bracket opened at `open` (which
/// must hold an opening token); returns the index of the closer, or
/// `toks.len()` when unterminated.
pub fn match_close(toks: &[Token], open: usize) -> usize {
    let (o, c) = match &toks[open].kind {
        Tok::Punct("(") => ("(", ")"),
        Tok::Punct("[") => ("[", "]"),
        Tok::Punct("{") => ("{", "}"),
        _ => return open,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct(p) if *p == o => depth += 1,
            Tok::Punct(p) if *p == c => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Skips a generic argument list starting at `<` (angle brackets are not
/// bracket tokens, so this counts `<`/`>` with a shift-token fixup).
/// Returns the index just past the matching `>`.
fn skip_generics(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct("<") => depth += 1,
            Tok::Punct(">") => depth -= 1,
            Tok::Punct("<<") => depth += 2,
            Tok::Punct(">>") => depth -= 2,
            Tok::Punct("->") => {}
            _ => {}
        }
        i += 1;
        if depth <= 0 {
            break;
        }
    }
    i
}

/// Extracts the symbol table from all files. Test-masked definitions are
/// recorded with `is_test` so the analysis can skip them without
/// re-deriving masks.
pub fn extract(files: &[SourceFile]) -> Symbols {
    let mut syms = Symbols::default();
    for (fidx, file) in files.iter().enumerate() {
        extract_file(fidx, file, &mut syms);
    }
    for (i, f) in syms.fns.iter().enumerate() {
        syms.by_name.entry(f.name.clone()).or_default().push(i);
    }
    syms
}

fn extract_file(fidx: usize, file: &SourceFile, syms: &mut Symbols) {
    let toks = &file.lexed.tokens;
    let crate_name = file.ctx.crate_name.clone();
    // Owner stack: (name, brace depth the impl/trait body opened at).
    let mut owners: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct("{") => depth += 1,
            Tok::Punct("}") => {
                depth = depth.saturating_sub(1);
                while owners.last().is_some_and(|(_, d)| *d > depth) {
                    owners.pop();
                }
            }
            Tok::Ident(kw) if kw == "impl" || kw == "trait" => {
                if let Some((name, body_open)) = parse_owner_target(toks, i, kw == "impl") {
                    // Body opens one level deeper than the current depth.
                    owners.push((name, depth + 1));
                    i = body_open; // the `{` is processed next iteration
                    continue;
                }
            }
            Tok::Ident(kw) if kw == "struct" => {
                if let Some(next) = parse_struct_locks(toks, i, fidx, file, &crate_name, syms) {
                    i = next;
                    continue;
                }
            }
            Tok::Ident(kw) if kw == "static" => {
                parse_static_lock(toks, i, fidx, file, &crate_name, syms);
            }
            Tok::Ident(kw) if kw == "fn" => {
                if let Some((def, next)) = parse_fn(
                    toks,
                    i,
                    fidx,
                    file,
                    &crate_name,
                    owners.last().map(|(n, _)| n.clone()),
                ) {
                    syms.fns.push(def);
                    // Do NOT skip the body: nested fns and inner items
                    // must still be discovered.
                    let _ = next;
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Parses the target type of `impl<..> [Trait for] Type<..> {` (or
/// `trait Name {`). Returns `(type_name, index_of_open_brace)`.
fn parse_owner_target(toks: &[Token], kw: usize, is_impl: bool) -> Option<(String, usize)> {
    let mut i = kw + 1;
    if matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Punct("<"))) {
        i = skip_generics(toks, i);
    }
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct("{") => {
                let name = if saw_for { after_for } else { last_ident };
                return name.map(|n| (n, i));
            }
            // `impl Trait for Type` / trait bounds / where clauses: a `;`
            // means a bodiless item (e.g. `impl Foo;` never happens, but
            // trait aliases could) — bail.
            Tok::Punct(";") => return None,
            Tok::Ident(n) if n == "for" && is_impl => saw_for = true,
            Tok::Ident(n) if n == "where" => {
                // The where clause runs to the `{`; idents inside it must
                // not override the target.
                while i < toks.len() && toks[i].kind != Tok::Punct("{") {
                    i += 1;
                }
                continue;
            }
            // `trait Name: Bound` — the first ident is the name; bounds
            // after `:` must not override it.
            Tok::Punct(":") if !is_impl => {
                while i < toks.len() && toks[i].kind != Tok::Punct("{") {
                    i += 1;
                }
                continue;
            }
            Tok::Ident(n) => {
                if saw_for {
                    after_for = Some(n.clone());
                } else if is_impl || last_ident.is_none() {
                    last_ident = Some(n.clone());
                }
            }
            Tok::Punct("<") => {
                i = skip_generics(toks, i);
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parses `struct Name { field: Type, .. }`, registering lock fields.
/// Returns the index of the struct body's closing `}` (so the caller can
/// skip it) or `None` for tuple/unit structs.
fn parse_struct_locks(
    toks: &[Token],
    kw: usize,
    fidx: usize,
    file: &SourceFile,
    crate_name: &str,
    syms: &mut Symbols,
) -> Option<usize> {
    let Some(Tok::Ident(struct_name)) = toks.get(kw + 1).map(|t| &t.kind) else {
        return None;
    };
    let mut i = kw + 2;
    if matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Punct("<"))) {
        i = skip_generics(toks, i);
    }
    // where-clause (no braces) then `{`, or `;`/`(` for unit/tuple.
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct("{") => break,
            Tok::Punct(";" | "(") => return None,
            _ => i += 1,
        }
    }
    if i >= toks.len() {
        return None;
    }
    let close = match_close(toks, i);
    // Fields: at paren-free brace depth 1 inside the body, `name :` then
    // type tokens to the `,` at depth 1 (or the closing brace).
    let mut j = i + 1;
    while j < close {
        match &toks[j].kind {
            Tok::Ident(field)
                if matches!(toks.get(j + 1).map(|t| &t.kind), Some(Tok::Punct(":")))
                    && !matches!(toks.get(j + 2).map(|t| &t.kind), Some(Tok::Punct(":"))) =>
            {
                let line = toks[j].line;
                // Type tokens run to the `,` at this nesting level.
                let mut k = j + 2;
                let mut kind: Option<LockKind> = None;
                let mut indexed = false;
                let mut nest = 0i32;
                while k < close {
                    match &toks[k].kind {
                        Tok::Punct("," | ";") if nest == 0 => break,
                        Tok::Punct("[") => {
                            // `[Mutex<..>; N]` — an array of locks, but
                            // only when the `[` wraps the lock (appears
                            // before it), not `Mutex<[u8; 4]>`.
                            indexed |= kind.is_none();
                            nest += 1;
                        }
                        Tok::Punct("<" | "(") => nest += 1,
                        Tok::Punct(">" | ")" | "]") => nest -= 1,
                        Tok::Punct(">>") => nest -= 2,
                        Tok::Ident(t) => match t.as_str() {
                            "Mutex" => kind = Some(kind.unwrap_or(LockKind::Mutex)),
                            "RwLock" => kind = Some(kind.unwrap_or(LockKind::RwLock)),
                            "Condvar" => kind = Some(kind.unwrap_or(LockKind::Condvar)),
                            // A collection *of* locks, not data inside one.
                            "Vec" | "VecDeque" => indexed |= kind.is_none(),
                            _ => {}
                        },
                        _ => {}
                    }
                    k += 1;
                }
                if let Some(kind) = kind {
                    if !file.test_mask.get(j).copied().unwrap_or(false) {
                        let id = format!("{crate_name}::{struct_name}::{field}");
                        syms.locks.entry(id.clone()).or_insert(LockDef {
                            id,
                            kind,
                            indexed,
                            file: fidx,
                            line,
                        });
                    }
                }
                j = k;
                continue;
            }
            _ => {}
        }
        j += 1;
    }
    Some(close)
}

/// Parses `static NAME: <type containing a lock> = ..`.
fn parse_static_lock(
    toks: &[Token],
    kw: usize,
    fidx: usize,
    file: &SourceFile,
    crate_name: &str,
    syms: &mut Symbols,
) {
    let mut i = kw + 1;
    if matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Ident(m)) if m == "mut") {
        i += 1;
    }
    let Some(Tok::Ident(name)) = toks.get(i).map(|t| &t.kind) else {
        return;
    };
    if toks.get(i + 1).map(|t| &t.kind) != Some(&Tok::Punct(":")) {
        return;
    }
    let line = toks[i].line;
    let mut kind: Option<LockKind> = None;
    let mut indexed = false;
    let mut k = i + 2;
    while k < toks.len() {
        match &toks[k].kind {
            Tok::Punct("=" | ";") => break,
            Tok::Ident(t) => match t.as_str() {
                "Mutex" => kind = Some(kind.unwrap_or(LockKind::Mutex)),
                "RwLock" => kind = Some(kind.unwrap_or(LockKind::RwLock)),
                "Condvar" => kind = Some(kind.unwrap_or(LockKind::Condvar)),
                "Vec" => indexed |= kind.is_none(),
                _ => {}
            },
            Tok::Punct("[") => indexed |= kind.is_none(),
            _ => {}
        }
        k += 1;
    }
    if let Some(kind) = kind {
        if !file.test_mask.get(i).copied().unwrap_or(false) {
            let id = format!("{crate_name}::{name}");
            syms.locks.entry(id.clone()).or_insert(LockDef {
                id,
                kind,
                indexed,
                file: fidx,
                line,
            });
        }
    }
}

/// Parses a `fn` definition at `kw`; returns the def and the index just
/// past the body (or the `;`).
fn parse_fn(
    toks: &[Token],
    kw: usize,
    fidx: usize,
    file: &SourceFile,
    crate_name: &str,
    owner: Option<String>,
) -> Option<(FnDef, usize)> {
    let Some(Tok::Ident(name)) = toks.get(kw + 1).map(|t| &t.kind) else {
        return None; // `fn(..)` pointer type or malformed
    };
    let line = toks[kw].line;
    let mut i = kw + 2;
    if matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Punct("<"))) {
        i = skip_generics(toks, i);
    }
    // Parameter list.
    let mut params = Vec::new();
    if matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Punct("("))) {
        let close = match_close(toks, i);
        let mut nest = 0i32;
        let mut j = i + 1;
        while j < close {
            match &toks[j].kind {
                Tok::Punct("(" | "[" | "{") => nest += 1,
                Tok::Punct(")" | "]" | "}") => nest -= 1,
                Tok::Punct("<") => nest += 1,
                Tok::Punct(">") => nest -= 1,
                Tok::Punct(">>") => nest -= 2,
                Tok::Ident(p)
                    if nest == 0
                        && matches!(toks.get(j + 1).map(|t| &t.kind), Some(Tok::Punct(":")))
                        && !matches!(toks.get(j + 2).map(|t| &t.kind), Some(Tok::Punct(":"))) =>
                {
                    params.push(p.clone());
                }
                Tok::Ident(p) if nest == 0 && p == "self" => params.push("self".into()),
                _ => {}
            }
            j += 1;
        }
        i = close + 1;
    }
    // Return type / where clause: scan to the body `{` or a `;`.
    let mut returns_lock = false;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct("{") => break,
            Tok::Punct(";") => {
                let def = FnDef {
                    name: name.clone(),
                    owner,
                    crate_name: crate_name.to_string(),
                    file: fidx,
                    line,
                    body: None,
                    params,
                    returns_lock,
                    is_test: file.test_mask.get(kw).copied().unwrap_or(false),
                };
                return Some((def, i + 1));
            }
            // `-> &Mutex<..>` getters and `-> MutexGuard<..>` helpers
            // both make the caller's `.lock()`/binding a real acquisition.
            Tok::Ident(t) if t.starts_with("Mutex") || t.starts_with("RwLock") => {
                returns_lock = true;
            }
            _ => {}
        }
        i += 1;
    }
    if i >= toks.len() {
        return None;
    }
    let close = match_close(toks, i);
    let def = FnDef {
        name: name.clone(),
        owner,
        crate_name: crate_name.to_string(),
        file: fidx,
        line,
        body: Some(i..close + 1),
        params,
        returns_lock,
        is_test: file.test_mask.get(kw).copied().unwrap_or(false),
    };
    Some((def, close + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules;

    fn file(src: &str, crate_name: &str) -> SourceFile {
        let lexed = lex(src);
        let test_mask = rules::test_region_mask(&lexed.tokens);
        SourceFile {
            path: PathBuf::from("x.rs"),
            ctx: FileCtx {
                crate_name: crate_name.into(),
                is_bin: false,
            },
            lexed,
            test_mask,
        }
    }

    #[test]
    fn lock_fields_and_statics_are_found() {
        let src = "struct Inner { queue: Mutex<Vec<u8>>, cv: Condvar, shards: Vec<Mutex<u64>> }\n\
                   static REG: RwLock<u8> = RwLock::new(0);";
        let syms = extract(&[file(src, "serve")]);
        let q = &syms.locks["serve::Inner::queue"];
        assert_eq!(q.kind, LockKind::Mutex);
        assert!(!q.indexed);
        assert!(syms.locks["serve::Inner::shards"].indexed);
        assert_eq!(syms.locks["serve::Inner::cv"].kind, LockKind::Condvar);
        assert_eq!(syms.locks["serve::REG"].kind, LockKind::RwLock);
    }

    #[test]
    fn fns_get_owners_params_and_getter_flag() {
        let src = "impl<K> Cache<K> { fn shard_of(&self, k: &K) -> &Mutex<u8> { &self.s }\n\
                   pub fn probe(&self, key: u64) { } }\nfn free(x: u8) {}";
        let syms = extract(&[file(src, "pucost")]);
        let names: Vec<_> = syms.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(
            names,
            vec!["pucost::Cache::shard_of", "pucost::Cache::probe", "pucost::free"]
        );
        assert!(syms.fns[0].returns_lock);
        assert_eq!(syms.fns[1].params, vec!["self", "key"]);
        assert!(!syms.fns[2].returns_lock);
    }

    #[test]
    fn impl_trait_for_type_targets_the_type() {
        let src = "impl Display for Wrapper { fn fmt(&self) {} }";
        let syms = extract(&[file(src, "obs")]);
        assert_eq!(syms.fns[0].qualified(), "obs::Wrapper::fmt");
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod t { fn helper() {} \
                   struct S { m: Mutex<u8> } }";
        let syms = extract(&[file(src, "serve")]);
        assert!(!syms.fns[0].is_test);
        assert!(syms.fns[1].is_test);
        assert!(syms.locks.is_empty(), "test-only lock leaked: {:?}", syms.locks);
    }

    #[test]
    fn nested_fns_are_both_recorded() {
        let src = "fn outer() { fn inner() {} inner(); }";
        let syms = extract(&[file(src, "mip")]);
        let names: Vec<_> = syms.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }
}
