//! A minimal comment/string-aware Rust lexer.
//!
//! The workspace invariant checker needs just enough lexical structure to
//! match token patterns (`HashMap`, `.lock().unwrap()`, `as u64`, float
//! `==`) without false positives from comments, doc comments, string
//! literals or raw strings. A full parser is deliberately out of scope:
//! the container has no cargo registry, so the checker is std-only, and a
//! token stream with line numbers is sufficient for every rule.
//!
//! Lexical subtleties handled here:
//! * line (`//`), doc (`///`, `//!`) and nested block (`/* /* */ */`)
//!   comments — captured separately so waiver comments can be matched;
//! * string, byte-string, raw-string (`r#"..."#`, any `#` depth) and char
//!   literals, including escapes;
//! * lifetimes vs char literals (`'a` vs `'a'`);
//! * raw identifiers (`r#type`);
//! * numeric literals with separators, hex/octal/binary prefixes,
//!   exponents and type suffixes — classified int vs float;
//! * multi-char operators (`==`, `!=`, `::`, `->`, `..=`, ...) as single
//!   tokens so `!=` never reads as `!` `=`.

/// One lexical token kind. Literal contents are dropped — rules only need
/// identifier text and operator identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`as`, `pub`, `fn` are plain idents here).
    Ident(String),
    /// A lifetime such as `'a` (label uses lex identically).
    Lifetime,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e9`, `3f64`).
    Float,
    /// String / raw string / byte string / char literal.
    Literal,
    /// Operator or punctuation; multi-char operators are one token.
    Punct(&'static str),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind.
    pub kind: Tok,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// A comment with its covered line range (block comments span lines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based first line.
    pub line: u32,
    /// 1-based last line (equals `line` for `//` comments).
    pub end_line: u32,
    /// Comment text without the delimiters.
    pub text: String,
}

/// Lexer output: the token stream plus all comments.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-char operators, longest first so greedy matching is correct.
const MULTI_OPS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "=>", "::",
    "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Single-char punctuation mapped to static strings.
fn single_op(c: char) -> Option<&'static str> {
    Some(match c {
        '(' => "(",
        ')' => ")",
        '{' => "{",
        '}' => "}",
        '[' => "[",
        ']' => "]",
        ';' => ";",
        ',' => ",",
        '.' => ".",
        ':' => ":",
        '#' => "#",
        '!' => "!",
        '?' => "?",
        '=' => "=",
        '<' => "<",
        '>' => ">",
        '+' => "+",
        '-' => "-",
        '*' => "*",
        '/' => "/",
        '%' => "%",
        '&' => "&",
        '|' => "|",
        '^' => "^",
        '~' => "~",
        '@' => "@",
        '$' => "$",
        _ => return None,
    })
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if pred(c) {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs are consumed to end of input (the checker lints code that
/// already compiles, so this only matters for robustness).
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let line = cur.line;
        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            cur.bump();
            cur.bump();
            let text = cur.eat_while(|c| c != '\n');
            out.comments.push(Comment {
                line,
                end_line: line,
                text,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            let mut text = String::new();
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                        text.push_str("/*");
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                        if depth > 0 {
                            text.push_str("*/");
                        }
                    }
                    (Some(_), _) => {
                        text.push(cur.bump().unwrap_or_default());
                    }
                    (None, _) => break,
                }
            }
            out.comments.push(Comment {
                line,
                end_line: cur.line,
                text,
            });
            continue;
        }
        // Raw strings / raw identifiers / byte strings starting at r or b.
        if c == 'r' || c == 'b' {
            if let Some(len) = raw_or_byte_prefix(&cur) {
                consume_prefixed_literal(&mut cur, len);
                out.tokens.push(Token {
                    kind: Tok::Literal,
                    line,
                });
                continue;
            }
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let name = cur.eat_while(is_ident_continue);
            out.tokens.push(Token {
                kind: Tok::Ident(name),
                line,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let kind = lex_number(&mut cur);
            out.tokens.push(Token { kind, line });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            lex_quote(&mut cur, &mut out, line);
            continue;
        }
        // Strings.
        if c == '"' {
            cur.bump();
            consume_string_body(&mut cur);
            out.tokens.push(Token {
                kind: Tok::Literal,
                line,
            });
            continue;
        }
        // Multi-char operators.
        if let Some(op) = MULTI_OPS.iter().find(|op| {
            op.chars()
                .enumerate()
                .all(|(i, oc)| cur.peek(i) == Some(oc))
        }) {
            for _ in 0..op.len() {
                cur.bump();
            }
            out.tokens.push(Token {
                kind: Tok::Punct(op),
                line,
            });
            continue;
        }
        // Single-char punctuation (or something exotic: skip it).
        if let Some(op) = single_op(c) {
            cur.bump();
            out.tokens.push(Token {
                kind: Tok::Punct(op),
                line,
            });
        } else {
            cur.bump();
        }
    }
    out
}

/// If the cursor sits on a raw-string (`r"`, `r#"`..), byte (`b"`, `b'`,
/// `br"`, `br#"`) or raw-identifier (`r#ident`) prefix, returns the prefix
/// length in chars, else `None`. Raw identifiers return `None` — they lex
/// as idents after the `r#` is consumed by the caller via this returning
/// `None` and the generic path seeing `r` — so this function only claims
/// prefixes that start a *literal*.
fn raw_or_byte_prefix(cur: &Cursor) -> Option<usize> {
    let first = cur.peek(0)?;
    let mut i = 1;
    if first == 'b' && cur.peek(1) == Some('r') {
        i = 2;
    }
    // Count `#`s (raw strings only).
    let mut hashes = 0;
    while cur.peek(i + hashes) == Some('#') {
        hashes += 1;
    }
    match cur.peek(i + hashes) {
        Some('"') => Some(i + hashes),
        // b'x' byte char (no hashes allowed).
        Some('\'') if first == 'b' && i == 1 && hashes == 0 => Some(1),
        // r#ident is a raw identifier, not a literal.
        _ => None,
    }
}

/// Consumes a literal whose prefix (`r##`, `br`, `b`, ...) is `plen` chars
/// long and whose body starts with `"` or `'`.
fn consume_prefixed_literal(cur: &mut Cursor, plen: usize) {
    let mut hashes = 0usize;
    for i in 0..plen {
        if cur.peek(i) == Some('#') {
            hashes += 1;
        }
    }
    let raw = hashes > 0 || cur.peek(0) == Some('r') || cur.peek(1) == Some('r');
    for _ in 0..plen {
        cur.bump();
    }
    match cur.bump() {
        Some('"') if raw => {
            // Raw string: ends at `"` followed by `hashes` hashes.
            loop {
                match cur.bump() {
                    None => break,
                    Some('"') => {
                        if (0..hashes).all(|i| cur.peek(i) == Some('#')) {
                            for _ in 0..hashes {
                                cur.bump();
                            }
                            break;
                        }
                    }
                    Some(_) => {}
                }
            }
        }
        Some('"') => consume_string_body(cur),
        Some('\'') => {
            // b'x' or b'\n'.
            if cur.peek(0) == Some('\\') {
                cur.bump();
                cur.bump();
            } else {
                cur.bump();
            }
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
        }
        _ => {}
    }
}

/// Consumes a (non-raw) string body after the opening quote.
fn consume_string_body(cur: &mut Cursor) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Lexes a numeric literal; the leading digit has not been consumed.
fn lex_number(cur: &mut Cursor) -> Tok {
    let mut is_float = false;
    let radix_prefix = cur.peek(0) == Some('0')
        && matches!(cur.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
    if radix_prefix {
        cur.bump();
        cur.bump();
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
        return Tok::Int;
    }
    cur.eat_while(|c| c.is_ascii_digit() || c == '_');
    // Decimal point: only if followed by a digit (so `0..n` and `1.max()`
    // lex as int + punct).
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        is_float = true;
        cur.bump();
        cur.eat_while(|c| c.is_ascii_digit() || c == '_');
    }
    // Exponent.
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let sign = matches!(cur.peek(1), Some('+' | '-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            cur.bump();
            if sign {
                cur.bump();
            }
            cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        }
    }
    // Type suffix (`u64`, `f32`, ...).
    let suffix = cur.eat_while(is_ident_continue);
    if suffix.starts_with('f') {
        is_float = true;
    }
    if is_float {
        Tok::Float
    } else {
        Tok::Int
    }
}

/// Lexes after a `'`: lifetime, label or char literal.
fn lex_quote(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    // cur is on the quote.
    let next = cur.peek(1);
    let after = cur.peek(2);
    match next {
        // Escape: definitely a char literal.
        Some('\\') => {
            cur.bump(); // '
            cur.bump(); // \
            cur.bump(); // escaped char
            // Consume to closing quote (handles '\u{...}').
            while let Some(c) = cur.bump() {
                if c == '\'' {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: Tok::Literal,
                line,
            });
        }
        // 'a' char vs 'a lifetime: closed by a quote right after one char?
        Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
            if after == Some('\'') {
                cur.bump();
                cur.bump();
                cur.bump();
                out.tokens.push(Token {
                    kind: Tok::Literal,
                    line,
                });
            } else {
                cur.bump(); // '
                cur.eat_while(is_ident_continue);
                out.tokens.push(Token {
                    kind: Tok::Lifetime,
                    line,
                });
            }
        }
        // '(' etc: char literal of punctuation.
        Some(_) => {
            cur.bump(); // '
            cur.bump(); // the char
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            out.tokens.push(Token {
                kind: Tok::Literal,
                line,
            });
        }
        None => {
            cur.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_hide_identifiers() {
        let src = r#"let x = "HashMap in a string"; let y = 1;"#;
        assert_eq!(idents(src), vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let src = "// HashMap here\nlet a = 1; /* SystemTime */\n";
        let l = lex(src);
        assert_eq!(idents(src), vec!["let", "a"]);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("HashMap"));
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still */ let z = 1;";
        assert_eq!(idents(src), vec!["let", "z"]);
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = r###"let s = r#"quote " inside, HashMap"#; let t = 2;"###;
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let l = lex(src);
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == Tok::Lifetime)
            .count();
        let chars = l.tokens.iter().filter(|t| t.kind == Tok::Literal).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn float_vs_int_literals() {
        let l = lex("let a = 1; let b = 2.5; let c = 1e9; let d = 3f64; let e = 0xFF;");
        let floats = l.tokens.iter().filter(|t| t.kind == Tok::Float).count();
        let ints = l.tokens.iter().filter(|t| t.kind == Tok::Int).count();
        assert_eq!(floats, 3);
        assert_eq!(ints, 2);
    }

    #[test]
    fn range_is_not_a_float() {
        let l = lex("for i in 0..10 {}");
        assert!(l.tokens.iter().any(|t| t.kind == Tok::Punct("..")));
        assert!(l.tokens.iter().all(|t| t.kind != Tok::Float));
    }

    #[test]
    fn multichar_ops_are_single_tokens() {
        let l = lex("a == b != c -> d :: e ..= f");
        let ops: Vec<&str> = l
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                Tok::Punct(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec!["==", "!=", "->", "::", "..="]);
    }

    #[test]
    fn nested_generics_lex_cleanly() {
        // `>>` closing nested generics is a shift token at lex level —
        // rules only need the idents, which must all surface.
        let src = "let m: BTreeMap<String, Vec<Option<u8>>> = BTreeMap::new();";
        let ids = idents(src);
        assert!(ids.contains(&"BTreeMap".to_string()));
        assert!(ids.contains(&"Option".to_string()));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        assert!(idents("let r#type = 1;").contains(&"type".to_string()));
    }

    #[test]
    fn line_numbers_track_newlines_in_literals() {
        let src = "let a = \"line\nbreak\";\nlet b = 1;";
        let l = lex(src);
        let b = l
            .tokens
            .iter()
            .find(|t| t.kind == Tok::Ident("b".into()))
            .map(|t| t.line);
        assert_eq!(b, Some(3));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"HashMap\"; let c = b'x'; let d = 1;";
        assert_eq!(idents(src), vec!["let", "a", "let", "c", "let", "d"]);
    }

    // The Layer 3 call-graph pass matches `ident (` patterns, so any
    // literal that desyncs the lexer would fabricate or hide call edges.
    // The fixtures below prove the tricky literal forms keep the stream
    // aligned: the call pattern after each one must survive intact.

    #[test]
    fn call_pattern_survives_raw_string_with_unbalanced_quote() {
        let src = r###"let s = r#"a " lock( inside"#; m.lock();"###;
        let l = lex(src);
        let lock_at = l
            .tokens
            .iter()
            .position(|t| t.kind == Tok::Ident("lock".into()))
            .expect("lock ident");
        assert_eq!(l.tokens[lock_at - 1].kind, Tok::Punct("."));
        assert_eq!(l.tokens[lock_at + 1].kind, Tok::Punct("("));
        // Exactly one `lock` — the one in the raw string stayed hidden.
        let n = l
            .tokens
            .iter()
            .filter(|t| t.kind == Tok::Ident("lock".into()))
            .count();
        assert_eq!(n, 1);
    }

    #[test]
    fn call_pattern_survives_nested_block_comment_with_paren() {
        let src = "/* outer ( /* inner ) */ still ( */ recv();";
        let l = lex(src);
        assert_eq!(idents(src), vec!["recv"]);
        assert_eq!(l.tokens[1].kind, Tok::Punct("("));
    }

    #[test]
    fn byte_string_with_escaped_quote_does_not_desync() {
        let src = "let a = b\"x\\\"y\"; spawn(f);";
        assert_eq!(idents(src), vec!["let", "a", "spawn", "f"]);
    }

    #[test]
    fn char_literal_escapes_do_not_desync() {
        // Escaped quote, backslash, newline, unicode escape — each is one
        // Literal and the trailing statement still tokenizes.
        for c in ["'\\''", "'\\\\'", "'\\n'", "'\\u{1F600}'"] {
            let src = format!("let a = {c}; join();");
            let l = lex(&src);
            assert_eq!(
                idents(&src),
                vec!["let", "a", "join"],
                "desync after {c}"
            );
            let lit = l.tokens.iter().filter(|t| t.kind == Tok::Literal).count();
            assert_eq!(lit, 1, "char {c} must be one literal");
        }
    }

    #[test]
    fn lifetime_tick_before_ident_is_not_a_char() {
        // `'a.lock()` inside a generic bound: the tick must lex as a
        // lifetime, never start a char literal that would swallow the
        // following tokens.
        let src = "fn f<'long>(x: &'long M) { x.lock(); }";
        let l = lex(src);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == Tok::Lifetime).count(),
            2
        );
        assert!(idents(src).contains(&"lock".to_string()));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == Tok::Literal).count(),
            0
        );
    }

    #[test]
    fn multiline_raw_string_keeps_line_numbers() {
        let src = "let s = r#\"line one\nline two\nline three\"#;\nm.lock();";
        let l = lex(src);
        let lock = l
            .tokens
            .iter()
            .find(|t| t.kind == Tok::Ident("lock".into()))
            .expect("lock ident");
        assert_eq!(lock.line, 4, "line tracking desynced across raw string");
    }
}
