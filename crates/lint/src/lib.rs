//! `spa-lint`: workspace invariant checker for the DeepBurning-SEG repo.
//!
//! Three layers, all std-only (the build environment has no registry):
//!
//! * **Layer 1 — source lints** ([`rules`]): a lightweight
//!   comment/string-aware Rust tokenizer ([`lexer`]) scans every
//!   workspace `.rs` source file and enforces the repo's determinism and
//!   robustness invariants as deny-by-default diagnostics with
//!   `file:line` output.
//! * **Layer 2 — semantic validators** ([`semantic`]): pre-flight domain
//!   checks — every zoo model passes `nnmodel::validate`, every budget
//!   preset passes `HwBudget::validate` — so malformed inputs fail fast
//!   with a diagnostic instead of panicking deep inside the engine.
//! * **Layer 3 — concurrency analysis** ([`locks`], over [`symbols`] and
//!   [`callgraph`]): a workspace-global pass that extracts every named
//!   lock and function, builds an approximate call graph, and enforces
//!   four rules: the lock-order graph is acyclic, no blocking operation
//!   is reachable while a guard is held, no call path re-acquires a lock
//!   it already holds, and spawned closures re-propagate the obs trace
//!   id. The lock-order graph itself is rendered into
//!   `results/LOCKS.txt` as a reviewable artifact.
//!
//! # Waivers
//!
//! A finding is waived by a line comment containing
//! `lint: allow(<rule>[, <rule>...])` trailing on the offending line, on
//! the line directly above it, or anywhere on the same *statement* (so a
//! finding anchored mid-way through a multi-line chained expression can
//! be waived at the natural site). Waivers must carry rationale in the
//! surrounding comment; waived counts are reported separately in
//! `results/LINT.json` so reviewers can diff them per PR.
//!
//! # Running
//!
//! ```text
//! cargo run -p lint -- --deny             # CI gate: nonzero exit on findings
//! cargo run -p lint -- --root <path>      # lint another checkout
//! cargo run -p lint -- --changed <ref>    # report only files changed vs <ref>
//! ```
//!
//! The workspace-clean guarantee is also pinned by an integration test
//! (`tests/workspace_clean.rs`) so plain `cargo test` catches regressions.

#![warn(missing_docs)]

pub mod callgraph;
pub mod lexer;
pub mod locks;
pub mod rules;
pub mod semantic;
pub mod symbols;

use rules::{FileCtx, RawFinding, RULE_NAMES};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use symbols::SourceFile;

/// One diagnostic after waiver resolution.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier.
    pub rule: &'static str,
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Diagnostic text.
    pub message: String,
    /// `true` if a `lint: allow(...)` comment covers this site.
    pub waived: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.waived { "waived" } else { "error" };
        write!(
            f,
            "{}:{}: {tag}[{}]: {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Per-rule finding/waived counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleCount {
    /// Unwaived (denied) findings.
    pub findings: usize,
    /// Waived findings.
    pub waived: usize,
}

/// Result of scanning a workspace.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every finding, waived or not, in path/line order.
    pub findings: Vec<Finding>,
    /// The Layer 3 lock-order graph (empty for single-source scans).
    pub graph: locks::LockGraph,
    /// Rendered `results/LOCKS.txt` content (empty for single-source
    /// scans).
    pub locks_txt: String,
}

/// Which analysis layer a rule belongs to (1 = token rules, 3 =
/// concurrency; Layer 2 has no per-line rules).
pub fn rule_layer(rule: &str) -> u8 {
    if locks::LOCK_RULE_NAMES.contains(&rule) {
        3
    } else {
        1
    }
}

impl Report {
    /// Findings that are not waived.
    pub fn denied(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Per-rule counts over every known rule — Layer 1 and Layer 3 —
    /// (zero entries included so the JSON is diffable across PRs).
    pub fn rule_counts(&self) -> BTreeMap<&'static str, RuleCount> {
        let mut m: BTreeMap<&'static str, RuleCount> = RULE_NAMES
            .iter()
            .chain(locks::LOCK_RULE_NAMES.iter())
            .map(|r| (*r, RuleCount::default()))
            .collect();
        for f in &self.findings {
            let e = m.entry(f.rule).or_default();
            if f.waived {
                e.waived += 1;
            } else {
                e.findings += 1;
            }
        }
        m
    }

    /// Aggregated (findings, waived) for one layer.
    fn layer_totals(&self, layer: u8) -> (usize, usize) {
        let mut found = 0;
        let mut waived = 0;
        for f in &self.findings {
            if rule_layer(f.rule) == layer {
                if f.waived {
                    waived += 1;
                } else {
                    found += 1;
                }
            }
        }
        (found, waived)
    }

    /// Renders the machine-readable JSON document (schema 2: totals,
    /// per-layer counts, rule -> counts) written to `results/LINT.json`.
    pub fn to_json(&self, semantic: Option<&semantic::SemanticReport>) -> String {
        let counts = self.rule_counts();
        let (l1f, l1w) = self.layer_totals(1);
        let (l3f, l3w) = self.layer_totals(3);
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": 2,\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!(
            "  \"total_findings\": {},\n",
            self.denied().count()
        ));
        s.push_str(&format!(
            "  \"total_waived\": {},\n",
            self.findings.iter().filter(|f| f.waived).count()
        ));
        s.push_str("  \"layers\": {\n");
        s.push_str(&format!(
            "    \"source\": {{\"findings\": {l1f}, \"waived\": {l1w}}},\n"
        ));
        s.push_str(&format!(
            "    \"concurrency\": {{\"findings\": {l3f}, \"waived\": {l3w}, \
             \"graph_nodes\": {}, \"graph_edges\": {}, \"graph_cycles\": {}}}\n",
            self.graph.nodes.len(),
            self.graph.edges.len(),
            self.graph.cycles.len()
        ));
        s.push_str("  },\n");
        s.push_str("  \"rules\": {\n");
        let n = counts.len();
        for (i, (rule, c)) in counts.iter().enumerate() {
            s.push_str(&format!(
                "    \"{rule}\": {{\"findings\": {}, \"waived\": {}}}{}\n",
                c.findings,
                c.waived,
                if i + 1 < n { "," } else { "" }
            ));
        }
        s.push_str("  }");
        if let Some(sem) = semantic {
            s.push_str(",\n  \"semantic\": {\n");
            s.push_str(&format!(
                "    \"models_checked\": {},\n    \"models_failed\": {},\n",
                sem.models_checked, sem.models_failed
            ));
            s.push_str(&format!(
                "    \"budgets_checked\": {},\n    \"budgets_failed\": {}\n",
                sem.budgets_checked, sem.budgets_failed
            ));
            s.push_str("  }");
        }
        s.push_str("\n}\n");
        s
    }
}

/// Per-file waiver context: parsed waiver comments plus the statement
/// spans the lexer sees, so a waiver anywhere on a multi-line statement
/// covers findings anchored on any of its lines.
struct WaiverCtx {
    /// `(line range, rules)` per waiver comment; the range already
    /// includes the "line directly above" extension (`E + 1`).
    waivers: Vec<(std::ops::RangeInclusive<u32>, Vec<String>)>,
    /// `(first line, last line)` per statement, in token order.
    stmts: Vec<(u32, u32)>,
}

impl WaiverCtx {
    fn new(lexed: &lexer::Lexed) -> Self {
        WaiverCtx {
            waivers: collect_waivers(&lexed.comments),
            stmts: statement_spans(&lexed.tokens),
        }
    }

    /// Does any waiver for `rule` cover a finding on `line`? Direct hit
    /// (waiver lines or the line below the comment) or statement-span
    /// hit: the waiver range intersects a statement containing `line`.
    fn covers(&self, rule: &str, line: u32) -> bool {
        self.waivers.iter().any(|(range, rules)| {
            if !rules.iter().any(|r| r == rule) {
                return false;
            }
            if range.contains(&line) {
                return true;
            }
            self.stmts.iter().any(|&(s, e)| {
                s <= line && line <= e && *range.start() <= e && *range.end() >= s
            })
        })
    }
}

/// Statement spans from the token stream: statements are delimited by
/// `;`, `{`, and `}` (good enough for waiver resolution — a chained
/// multi-line expression is one span).
fn statement_spans(toks: &[lexer::Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut start: Option<u32> = None;
    for t in toks {
        let line = t.line;
        if start.is_none() {
            start = Some(line);
        }
        if matches!(t.kind, lexer::Tok::Punct(";" | "{" | "}")) {
            if let Some(s) = start.take() {
                out.push((s, line));
            }
        }
    }
    if let Some(s) = start {
        if let Some(last) = toks.last() {
            out.push((s, last.line));
        }
    }
    out
}

/// Scans one source string as if it were `path` inside `ctx`'s crate.
/// Layer 1 only — exposed for rule tests; [`scan_workspace`] is the real
/// entry point.
pub fn scan_source(src: &str, path: &Path, ctx: &FileCtx) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let wctx = WaiverCtx::new(&lexed);
    let mut out: Vec<Finding> = rules::check(&lexed, ctx)
        .into_iter()
        .map(|RawFinding { rule, line, message }| Finding {
            rule,
            path: path.to_path_buf(),
            line,
            message,
            waived: wctx.covers(rule, line),
        })
        .collect();
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

/// `(line, rules)` pairs for every waiver comment. A waiver on lines
/// `L..=E` covers findings on any of those lines and on `E + 1` (the
/// "comment directly above" form); statement-span extension happens in
/// [`WaiverCtx::covers`].
fn collect_waivers(comments: &[lexer::Comment]) -> Vec<(std::ops::RangeInclusive<u32>, Vec<String>)> {
    let mut out = Vec::new();
    for c in comments {
        if let Some(rules) = parse_waiver(&c.text) {
            out.push((c.line..=c.end_line + 1, rules));
        }
    }
    out
}

/// Parses `lint: allow(a, b)` out of a comment body.
fn parse_waiver(text: &str) -> Option<Vec<String>> {
    let at = text.find("lint: allow(")?;
    let rest = &text[at + "lint: allow(".len()..];
    let close = rest.find(')')?;
    Some(
        rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect(),
    )
}

/// Runs the full analysis — Layer 1 per file plus workspace-global
/// Layer 3 — over pre-loaded sources. `files` must use workspace-relative
/// paths. This is the core [`scan_workspace`] delegates to; tests feed it
/// synthetic files.
pub fn scan_sources(sources: Vec<(PathBuf, String, FileCtx)>) -> Report {
    let files: Vec<SourceFile> = sources
        .into_iter()
        .map(|(path, src, ctx)| {
            let lexed = lexer::lex(&src);
            let test_mask = rules::test_region_mask(&lexed.tokens);
            SourceFile {
                path,
                ctx,
                lexed,
                test_mask,
            }
        })
        .collect();
    let wctxs: Vec<WaiverCtx> = files.iter().map(|f| WaiverCtx::new(&f.lexed)).collect();

    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    // Layer 1: per-file token rules.
    for (fi, file) in files.iter().enumerate() {
        for RawFinding { rule, line, message } in rules::check(&file.lexed, &file.ctx) {
            report.findings.push(Finding {
                rule,
                path: file.path.clone(),
                line,
                message,
                waived: wctxs[fi].covers(rule, line),
            });
        }
    }
    // Layer 3: workspace-global concurrency analysis.
    let syms = symbols::extract(&files);
    let graph = callgraph::build(&files, &syms);
    let analysis = locks::analyze(&files, &syms, &graph);
    for lf in analysis.findings {
        let file = &files[lf.file];
        report.findings.push(Finding {
            rule: lf.rule,
            path: file.path.clone(),
            line: lf.line,
            message: lf.message,
            waived: wctxs[lf.file].covers(lf.rule, lf.line),
        });
    }
    report.locks_txt = locks::render_graph(&files, &analysis.graph);
    report.graph = analysis.graph;
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
}

/// Scans every workspace source tree under `root`: `src/` of the facade
/// crate and `crates/*/src/`. Test trees (`tests/`, `benches/`,
/// `examples/`) are exempt by construction, as are `#[cfg(test)]` modules
/// inside `src/`.
///
/// # Errors
///
/// Returns an I/O error message if `root` is not a readable workspace.
pub fn scan_workspace(root: &Path) -> Result<Report, String> {
    let mut files: Vec<(PathBuf, FileCtx)> = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        collect_rs(&facade, &mut files, "deepburning-seg")?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates)
            .map_err(|e| format!("{}: {e}", crates.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for dir in entries {
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files, &name)?;
            }
        }
    }
    if files.is_empty() {
        return Err(format!("no workspace sources under {}", root.display()));
    }
    let mut sources: Vec<(PathBuf, String, FileCtx)> = Vec::with_capacity(files.len());
    for (path, ctx) in files {
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        sources.push((rel, src, ctx));
    }
    Ok(scan_sources(sources))
}

/// Recursively collects `.rs` files under `dir` (a crate's `src/`),
/// classifying binary sources by path.
fn collect_rs(
    dir: &Path,
    out: &mut Vec<(PathBuf, FileCtx)>,
    crate_name: &str,
) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out, crate_name)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let in_bin_dir = path
                .components()
                .any(|c| c.as_os_str() == "bin");
            let is_main = path.file_name().is_some_and(|n| n == "main.rs");
            out.push((
                path,
                FileCtx {
                    crate_name: crate_name.to_string(),
                    is_bin: in_bin_dir || is_main,
                },
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FileCtx {
        FileCtx {
            crate_name: "autoseg".into(),
            is_bin: false,
        }
    }

    #[test]
    fn waiver_on_same_line() {
        let src = "fn f() { let m = HashMap::new(); } // keyed lookup only; lint: allow(nondet-iter)\n";
        let fs = scan_source(src, Path::new("x.rs"), &ctx());
        assert_eq!(fs.len(), 1);
        assert!(fs[0].waived);
    }

    #[test]
    fn waiver_on_line_above() {
        let src = "// shard map, lookup only; lint: allow(nondet-iter)\nfn f() { let m = HashMap::new(); }\n";
        let fs = scan_source(src, Path::new("x.rs"), &ctx());
        assert_eq!(fs.len(), 1);
        assert!(fs[0].waived);
    }

    #[test]
    fn waiver_rule_must_match() {
        let src = "// lint: allow(float-eq)\nfn f() { let m = HashMap::new(); }\n";
        let fs = scan_source(src, Path::new("x.rs"), &ctx());
        assert_eq!(fs.len(), 1);
        assert!(!fs[0].waived);
    }

    #[test]
    fn waiver_covers_multiple_rules() {
        let src = "fn f(t: std::time::Instant) { let m = HashMap::new(); } // lint: allow(nondet-iter, nondet-time)\n";
        let fs = scan_source(src, Path::new("x.rs"), &ctx());
        assert_eq!(fs.len(), 2);
        assert!(fs.iter().all(|f| f.waived));
    }

    #[test]
    fn waiver_covers_full_statement_span() {
        // Finding anchors on the HashMap line (line 3), waiver trails the
        // statement's last line (line 4): same statement, so covered.
        let src = "fn f() {\n    let m =\n        HashMap::new()\n        .len(); // seeded; lint: allow(nondet-iter)\n}\n";
        let fs = scan_source(src, Path::new("x.rs"), &ctx());
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].line, 3);
        assert!(fs[0].waived, "statement-span waiver must cover line 3");
    }

    #[test]
    fn statement_waiver_does_not_leak_across_semicolons() {
        // Two statements; the waiver on the second must not cover the
        // first.
        let src = "fn f() {\n    let m = HashMap::new();\n    let n = 1; // lint: allow(nondet-iter)\n}\n";
        let fs = scan_source(src, Path::new("x.rs"), &ctx());
        assert_eq!(fs.len(), 1);
        assert!(!fs[0].waived);
    }

    #[test]
    fn json_report_shape() {
        let src = "fn f() { let m = HashMap::new(); }\n";
        let findings = scan_source(src, Path::new("x.rs"), &ctx());
        let report = Report {
            files_scanned: 1,
            findings,
            ..Report::default()
        };
        let json = report.to_json(None);
        assert!(json.contains("\"schema\": 2"));
        assert!(json.contains("\"nondet-iter\": {\"findings\": 1, \"waived\": 0}"));
        assert!(json.contains("\"total_findings\": 1"));
        assert!(json.contains("\"source\": {\"findings\": 1, \"waived\": 0}"));
        assert!(json.contains("\"concurrency\": {\"findings\": 0, \"waived\": 0"));
        // Every rule appears even at zero, so PRs can diff the document.
        for rule in RULE_NAMES.iter().chain(locks::LOCK_RULE_NAMES.iter()) {
            assert!(json.contains(*rule), "{rule} missing from JSON");
        }
    }

    #[test]
    fn scan_sources_runs_layer3() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
                   impl S {\n\
                   fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
                   fn ba(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n\
                   }\n";
        let report = scan_sources(vec![(
            PathBuf::from("crates/x/src/lib.rs"),
            src.to_string(),
            FileCtx {
                crate_name: "x".into(),
                is_bin: false,
            },
        )]);
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.rule == "lock-order-cycle"),
            "expected a lock-order cycle: {:?}",
            report.findings
        );
        assert!(!report.graph.cycles.is_empty());
        assert!(report.locks_txt.contains("x::S::a"));
    }
}
