//! `spa-lint`: workspace invariant checker for the DeepBurning-SEG repo.
//!
//! Two layers, both std-only (the build environment has no registry):
//!
//! * **Layer 1 — source lints** ([`rules`]): a lightweight
//!   comment/string-aware Rust tokenizer ([`lexer`]) scans every
//!   workspace `.rs` source file and enforces the repo's determinism and
//!   robustness invariants as deny-by-default diagnostics with
//!   `file:line` output.
//! * **Layer 2 — semantic validators** ([`semantic`]): pre-flight domain
//!   checks — every zoo model passes `nnmodel::validate`, every budget
//!   preset passes `HwBudget::validate` — so malformed inputs fail fast
//!   with a diagnostic instead of panicking deep inside the engine.
//!
//! # Waivers
//!
//! A finding is waived by a line comment containing
//! `lint: allow(<rule>[, <rule>...])` either trailing on the offending
//! line or on the line directly above it. Waivers must carry rationale in
//! the surrounding comment; waived counts are reported separately in
//! `results/LINT.json` so reviewers can diff them per PR.
//!
//! # Running
//!
//! ```text
//! cargo run -p lint -- --deny          # CI gate: nonzero exit on findings
//! cargo run -p lint -- --root <path>   # lint another checkout
//! ```
//!
//! The workspace-clean guarantee is also pinned by an integration test
//! (`tests/workspace_clean.rs`) so plain `cargo test` catches regressions.

#![warn(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod semantic;

use rules::{FileCtx, RawFinding, RULE_NAMES};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// One diagnostic after waiver resolution.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier.
    pub rule: &'static str,
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Diagnostic text.
    pub message: String,
    /// `true` if a `lint: allow(...)` comment covers this site.
    pub waived: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.waived { "waived" } else { "error" };
        write!(
            f,
            "{}:{}: {tag}[{}]: {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Per-rule finding/waived counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleCount {
    /// Unwaived (denied) findings.
    pub findings: usize,
    /// Waived findings.
    pub waived: usize,
}

/// Result of scanning a workspace.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every finding, waived or not, in path/line order.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Findings that are not waived.
    pub fn denied(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Per-rule counts over every known rule (zero entries included so
    /// the JSON is diffable across PRs).
    pub fn rule_counts(&self) -> BTreeMap<&'static str, RuleCount> {
        let mut m: BTreeMap<&'static str, RuleCount> =
            RULE_NAMES.iter().map(|r| (*r, RuleCount::default())).collect();
        for f in &self.findings {
            let e = m.entry(f.rule).or_default();
            if f.waived {
                e.waived += 1;
            } else {
                e.findings += 1;
            }
        }
        m
    }

    /// Renders the machine-readable JSON document (rule -> counts, plus
    /// totals) written to `results/LINT.json`.
    pub fn to_json(&self, semantic: Option<&semantic::SemanticReport>) -> String {
        let counts = self.rule_counts();
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!(
            "  \"total_findings\": {},\n",
            self.denied().count()
        ));
        s.push_str(&format!(
            "  \"total_waived\": {},\n",
            self.findings.iter().filter(|f| f.waived).count()
        ));
        s.push_str("  \"rules\": {\n");
        let n = counts.len();
        for (i, (rule, c)) in counts.iter().enumerate() {
            s.push_str(&format!(
                "    \"{rule}\": {{\"findings\": {}, \"waived\": {}}}{}\n",
                c.findings,
                c.waived,
                if i + 1 < n { "," } else { "" }
            ));
        }
        s.push_str("  }");
        if let Some(sem) = semantic {
            s.push_str(",\n  \"semantic\": {\n");
            s.push_str(&format!(
                "    \"models_checked\": {},\n    \"models_failed\": {},\n",
                sem.models_checked, sem.models_failed
            ));
            s.push_str(&format!(
                "    \"budgets_checked\": {},\n    \"budgets_failed\": {}\n",
                sem.budgets_checked, sem.budgets_failed
            ));
            s.push_str("  }");
        }
        s.push_str("\n}\n");
        s
    }
}

/// Scans one source string as if it were `path` inside `ctx`'s crate.
/// Exposed for rule tests; [`scan_workspace`] is the real entry point.
pub fn scan_source(src: &str, path: &Path, ctx: &FileCtx) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let waivers = collect_waivers(&lexed.comments);
    let mut out: Vec<Finding> = rules::check(&lexed, ctx)
        .into_iter()
        .map(|RawFinding { rule, line, message }| Finding {
            rule,
            path: path.to_path_buf(),
            line,
            message,
            waived: waiver_covers(&waivers, rule, line),
        })
        .collect();
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

/// `(line, rules)` pairs for every waiver comment. A waiver on lines
/// `L..=E` covers findings on any of those lines and on `E + 1` (the
/// "comment directly above" form).
fn collect_waivers(comments: &[lexer::Comment]) -> Vec<(std::ops::RangeInclusive<u32>, Vec<String>)> {
    let mut out = Vec::new();
    for c in comments {
        if let Some(rules) = parse_waiver(&c.text) {
            out.push((c.line..=c.end_line + 1, rules));
        }
    }
    out
}

/// Parses `lint: allow(a, b)` out of a comment body.
fn parse_waiver(text: &str) -> Option<Vec<String>> {
    let at = text.find("lint: allow(")?;
    let rest = &text[at + "lint: allow(".len()..];
    let close = rest.find(')')?;
    Some(
        rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect(),
    )
}

fn waiver_covers(
    waivers: &[(std::ops::RangeInclusive<u32>, Vec<String>)],
    rule: &str,
    line: u32,
) -> bool {
    waivers
        .iter()
        .any(|(range, rules)| range.contains(&line) && rules.iter().any(|r| r == rule))
}

/// Scans every workspace source tree under `root`: `src/` of the facade
/// crate and `crates/*/src/`. Test trees (`tests/`, `benches/`,
/// `examples/`) are exempt by construction, as are `#[cfg(test)]` modules
/// inside `src/`.
///
/// # Errors
///
/// Returns an I/O error message if `root` is not a readable workspace.
pub fn scan_workspace(root: &Path) -> Result<Report, String> {
    let mut files: Vec<(PathBuf, FileCtx)> = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        collect_rs(&facade, &mut files, "deepburning-seg")?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates)
            .map_err(|e| format!("{}: {e}", crates.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for dir in entries {
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files, &name)?;
            }
        }
    }
    if files.is_empty() {
        return Err(format!("no workspace sources under {}", root.display()));
    }
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    for (path, ctx) in files {
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        report.findings.extend(scan_source(&src, &rel, &ctx));
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

/// Recursively collects `.rs` files under `dir` (a crate's `src/`),
/// classifying binary sources by path.
fn collect_rs(
    dir: &Path,
    out: &mut Vec<(PathBuf, FileCtx)>,
    crate_name: &str,
) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out, crate_name)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let in_bin_dir = path
                .components()
                .any(|c| c.as_os_str() == "bin");
            let is_main = path.file_name().is_some_and(|n| n == "main.rs");
            out.push((
                path,
                FileCtx {
                    crate_name: crate_name.to_string(),
                    is_bin: in_bin_dir || is_main,
                },
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FileCtx {
        FileCtx {
            crate_name: "autoseg".into(),
            is_bin: false,
        }
    }

    #[test]
    fn waiver_on_same_line() {
        let src = "fn f() { let m = HashMap::new(); } // keyed lookup only; lint: allow(nondet-iter)\n";
        let fs = scan_source(src, Path::new("x.rs"), &ctx());
        assert_eq!(fs.len(), 1);
        assert!(fs[0].waived);
    }

    #[test]
    fn waiver_on_line_above() {
        let src = "// shard map, lookup only; lint: allow(nondet-iter)\nfn f() { let m = HashMap::new(); }\n";
        let fs = scan_source(src, Path::new("x.rs"), &ctx());
        assert_eq!(fs.len(), 1);
        assert!(fs[0].waived);
    }

    #[test]
    fn waiver_rule_must_match() {
        let src = "// lint: allow(float-eq)\nfn f() { let m = HashMap::new(); }\n";
        let fs = scan_source(src, Path::new("x.rs"), &ctx());
        assert_eq!(fs.len(), 1);
        assert!(!fs[0].waived);
    }

    #[test]
    fn waiver_covers_multiple_rules() {
        let src = "fn f(t: std::time::Instant) { let m = HashMap::new(); } // lint: allow(nondet-iter, nondet-time)\n";
        let fs = scan_source(src, Path::new("x.rs"), &ctx());
        assert_eq!(fs.len(), 2);
        assert!(fs.iter().all(|f| f.waived));
    }

    #[test]
    fn json_report_shape() {
        let src = "fn f() { let m = HashMap::new(); }\n";
        let findings = scan_source(src, Path::new("x.rs"), &ctx());
        let report = Report {
            files_scanned: 1,
            findings,
        };
        let json = report.to_json(None);
        assert!(json.contains("\"nondet-iter\": {\"findings\": 1, \"waived\": 0}"));
        assert!(json.contains("\"total_findings\": 1"));
        // Every rule appears even at zero, so PRs can diff the document.
        for rule in RULE_NAMES {
            assert!(json.contains(rule), "{rule} missing from JSON");
        }
    }
}
