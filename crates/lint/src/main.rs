//! Workspace lint driver: `cargo run -p lint -- [--deny] [--root <path>]`.
//!
//! Runs both analysis layers — source lints over every workspace `.rs`
//! file and the semantic validators over the model zoo and budget presets
//! — prints `file:line` diagnostics, and writes the machine-readable
//! summary to `results/LINT.json`. With `--deny` (the CI gate) the exit
//! code is nonzero when any unwaived finding or semantic failure exists.

use lint::semantic;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: lint [--deny] [--root <workspace>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &report.findings {
        if !f.waived {
            println!("{f}");
        }
    }
    let denied = report.denied().count();
    let waived = report.findings.len() - denied;
    println!(
        "lint: {} files, {denied} finding(s), {waived} waived",
        report.files_scanned
    );

    let sem = semantic::run();
    for f in &sem.failures {
        println!("semantic: {}: {}", f.subject, f.message);
    }
    println!(
        "semantic: {} models + {} budgets validated, {} failure(s)",
        sem.models_checked,
        sem.budgets_checked,
        sem.failures.len()
    );

    let results = root.join("results");
    let json_path = results.join("LINT.json");
    if let Err(e) = std::fs::create_dir_all(&results)
        .and_then(|()| std::fs::write(&json_path, report.to_json(Some(&sem))))
    {
        eprintln!("lint: cannot write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }

    if deny && (denied > 0 || !sem.clean()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Walks upward from the current directory (falling back to this crate's
/// manifest dir at compile time) to the first `Cargo.toml` declaring a
/// `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let starts = [
        std::env::current_dir().ok(),
        Some(PathBuf::from(env!("CARGO_MANIFEST_DIR"))),
    ];
    for start in starts.into_iter().flatten() {
        let mut dir: &Path = &start;
        loop {
            let manifest = dir.join("Cargo.toml");
            if manifest.is_file() {
                let text = std::fs::read_to_string(&manifest).unwrap_or_default();
                if text.contains("[workspace]") {
                    return Ok(dir.to_path_buf());
                }
            }
            match dir.parent() {
                Some(p) => dir = p,
                None => break,
            }
        }
    }
    Err("no workspace Cargo.toml found upward of the current directory".to_string())
}
