//! Workspace lint driver:
//! `cargo run -p lint -- [--deny] [--root <path>] [--changed <git-ref>]`.
//!
//! Runs all three analysis layers — source lints and the concurrency
//! analysis over every workspace `.rs` file, plus the semantic validators
//! over the model zoo and budget presets — prints `file:line`
//! diagnostics, and writes the machine-readable summary to
//! `results/LINT.json` and the lock-order graph to `results/LOCKS.txt`.
//! With `--deny` (the CI gate) the exit code is nonzero when any unwaived
//! finding or semantic failure exists.
//!
//! `--changed <git-ref>` is the incremental pre-commit mode: the whole
//! workspace is still analyzed (Layer 3 is global by nature), but only
//! findings in files that differ from `<git-ref>` are reported and
//! counted, the semantic layer is skipped, and no artifacts are written.

use lint::semantic;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut changed: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--changed" => match args.next() {
                Some(r) => changed = Some(r),
                None => {
                    eprintln!("--changed requires a git ref");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: lint [--deny] [--root <workspace>] [--changed <git-ref>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut report = match lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(git_ref) = &changed {
        let keep = match changed_files(&root, git_ref) {
            Ok(k) => k,
            Err(e) => {
                eprintln!("lint: {e}");
                return ExitCode::from(2);
            }
        };
        report.findings.retain(|f| keep.contains(&f.path));
        println!(
            "lint: incremental vs `{git_ref}`: {} changed .rs file(s) under src/",
            keep.len()
        );
    }
    for f in &report.findings {
        if !f.waived {
            println!("{f}");
        }
    }
    let denied = report.denied().count();
    let waived = report.findings.len() - denied;
    println!(
        "lint: {} files, {denied} finding(s), {waived} waived, lock graph: {} nodes / {} edges / {} cycle(s)",
        report.files_scanned,
        report.graph.nodes.len(),
        report.graph.edges.len(),
        report.graph.cycles.len()
    );

    // Incremental mode is a fast pre-commit filter: no semantic layer, no
    // artifact writes (those belong to full runs so results/ stays
    // canonical).
    if changed.is_some() {
        return if deny && denied > 0 {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let sem = semantic::run();
    for f in &sem.failures {
        println!("semantic: {}: {}", f.subject, f.message);
    }
    println!(
        "semantic: {} models + {} budgets validated, {} failure(s)",
        sem.models_checked,
        sem.budgets_checked,
        sem.failures.len()
    );

    let results = root.join("results");
    let json_path = results.join("LINT.json");
    let locks_path = results.join("LOCKS.txt");
    if let Err(e) = std::fs::create_dir_all(&results)
        .and_then(|()| std::fs::write(&json_path, report.to_json(Some(&sem))))
        .and_then(|()| std::fs::write(&locks_path, &report.locks_txt))
    {
        eprintln!("lint: cannot write under {}: {e}", results.display());
        return ExitCode::from(2);
    }

    if deny && (denied > 0 || !sem.clean() || !report.graph.cycles.is_empty()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Workspace-relative `.rs` paths that differ from `git_ref` (committed
/// diff plus working-tree changes), per `git diff --name-only`.
fn changed_files(root: &Path, git_ref: &str) -> Result<BTreeSet<PathBuf>, String> {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", git_ref, "--"])
        .output()
        .map_err(|e| format!("git diff failed to spawn: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "git diff --name-only {git_ref} failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::trim)
        .filter(|l| l.ends_with(".rs"))
        .map(PathBuf::from)
        .collect())
}

/// Walks upward from the current directory (falling back to this crate's
/// manifest dir at compile time) to the first `Cargo.toml` declaring a
/// `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let starts = [
        std::env::current_dir().ok(),
        Some(PathBuf::from(env!("CARGO_MANIFEST_DIR"))),
    ];
    for start in starts.into_iter().flatten() {
        let mut dir: &Path = &start;
        loop {
            let manifest = dir.join("Cargo.toml");
            if manifest.is_file() {
                let text = std::fs::read_to_string(&manifest).unwrap_or_default();
                if text.contains("[workspace]") {
                    return Ok(dir.to_path_buf());
                }
            }
            match dir.parent() {
                Some(p) => dir = p,
                None => break,
            }
        }
    }
    Err("no workspace Cargo.toml found upward of the current directory".to_string())
}
