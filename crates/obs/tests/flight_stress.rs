//! Multi-thread stress of the sharded `obs` collector and the flight
//! recorder: concurrent writers must lose nothing, tear nothing, and
//! drain into one deterministic total order once they have joined.
//!
//! These tests share the process-global collector and recorder, so they
//! serialize on one guard mutex (the suite may run with multiple test
//! threads).

use std::sync::{Mutex, MutexGuard, OnceLock};

fn guard() -> MutexGuard<'static, ()> {
    static G: OnceLock<Mutex<()>> = OnceLock::new();
    G.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

const THREADS: u64 = 8;
const EVENTS: u64 = 500;

#[test]
fn sharded_counters_and_hdr_survive_contention() {
    let _g = guard();
    obs::set_level(obs::Level::Summary);
    obs::reset();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..EVENTS {
                    obs::add("stress.counter", 1);
                    obs::record_hdr("stress.lat", t * EVENTS + i);
                }
            });
        }
    });
    let report = obs::snapshot();
    assert_eq!(report.counter("stress.counter"), Some(THREADS * EVENTS));
    let hdr = report.hdr("stress.lat").expect("hdr row");
    assert_eq!(hdr.count, THREADS * EVENTS, "no lost hdr samples");
    // The merged quantiles must match a serially built reference — the
    // per-shard histograms merge bucket-wise without fidelity loss.
    let mut reference = obs::HdrHist::new();
    for v in 0..THREADS * EVENTS {
        reference.record(v);
    }
    assert_eq!(hdr.p50, reference.p50());
    assert_eq!(hdr.p99, reference.p99());
    assert_eq!(hdr.p999, reference.p999());
    obs::reset();
    obs::set_level(obs::Level::Off);
}

#[test]
fn flight_recorder_loses_and_tears_nothing() {
    let _g = guard();
    // Capacity above the per-thread event count: nothing may wrap.
    obs::flight::configure(1024);
    obs::flight::reset();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                // Each writer runs under its own trace id; a torn slot
                // would mix one writer's payload with another's trace.
                let _trace = obs::TraceGuard::enter(t + 1);
                for i in 0..EVENTS {
                    obs::flight::note("stress.flight", t, i);
                }
            });
        }
    });
    let dump = obs::flight::drain();
    assert_eq!(dump.dropped, 0, "capacity was sized to hold everything");
    let events: Vec<_> = dump.events.iter().filter(|e| e.name == "stress.flight").collect();
    assert_eq!(events.len() as u64, THREADS * EVENTS, "no lost events");
    // Untorn: every event's payload words and trace id belong to the
    // same writer, and each writer's events appear in program order.
    let mut next_b = [0u64; THREADS as usize];
    let mut last_seq = 0u64;
    for e in &events {
        assert!(e.a < THREADS, "payload a is a writer id");
        assert_eq!(e.trace, e.a + 1, "trace and payload from one writer");
        let t = usize::try_from(e.a).expect("fits");
        assert_eq!(e.b, next_b[t], "writer {t} events in program order");
        next_b[t] += 1;
        assert!(e.seq > last_seq, "global sequence strictly increases");
        last_seq = e.seq;
    }
    // Deterministic post-join drain: a second drain sees the exact same
    // events in the exact same order, and the JSON form is byte-stable.
    let again = obs::flight::drain();
    assert_eq!(dump.events, again.events, "drain is repeatable");
    assert_eq!(dump.to_json(), again.to_json(), "dump JSON is byte-stable");
    obs::flight::reset();
}

#[test]
fn flight_reset_clears_and_sequence_keeps_ordering() {
    let _g = guard();
    obs::flight::configure(64);
    obs::flight::reset();
    obs::flight::note("stress.pre", 1, 1);
    let before = obs::flight::drain();
    assert!(before.events.iter().any(|e| e.name == "stress.pre"));
    let max_seq = before.events.iter().map(|e| e.seq).max().unwrap_or(0);
    obs::flight::reset();
    let cleared = obs::flight::drain();
    assert!(cleared.events.is_empty(), "reset clears every ring");
    obs::flight::note("stress.post", 2, 2);
    let after = obs::flight::drain();
    let post = after.events.iter().find(|e| e.name == "stress.post").expect("post event");
    assert!(post.seq > max_seq, "sequence advances across resets");
    obs::flight::reset();
}
