//! Chrome trace-event export: every span close becomes one complete
//! (`"ph":"X"`) event in the JSON-array format that `chrome://tracing`
//! and Perfetto load directly, so a slow codesign can be decomposed
//! visually instead of from aggregate tables.
//!
//! Enabled by pointing `OBS_TRACE_OUT` at a file (requires
//! `OBS_LEVEL>=summary` — spans are not timed at `off`). Events buffer
//! in memory (bounded; overflow is counted, newest events dropped) and
//! the file is written by [`crate::finish`] or [`flush`]. Timestamps
//! are microseconds since the collector epoch; `tid` is a small
//! per-thread ordinal assigned at first use.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Cap on buffered events (~100 bytes each → a few MiB worst case).
const MAX_EVENTS: usize = 262_144;

struct State {
    path: PathBuf,
    events: Vec<String>,
    overflow: u64,
}

/// `ACTIVE` encoding: 0 = uninit (read env), 1 = off, 2 = on.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn state() -> &'static Mutex<Option<State>> {
    static S: OnceLock<Mutex<Option<State>>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(None))
}

/// `true` when a trace output file is configured (one relaxed load
/// after initialization).
pub(crate) fn active() -> bool {
    match ACTIVE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let path = std::env::var("OBS_TRACE_OUT")
                .ok()
                .filter(|p| !p.trim().is_empty())
                .map(PathBuf::from);
            set_trace_out(path.as_deref());
            ACTIVE.load(Ordering::Relaxed) == 2
        }
    }
}

/// Points the Chrome trace export at `path` (`None` disables).
/// Overrides `OBS_TRACE_OUT`; buffered events are discarded.
pub fn set_trace_out(path: Option<&Path>) {
    let mut g = state().lock().unwrap_or_else(|e| e.into_inner());
    match path {
        Some(p) => {
            *g = Some(State {
                path: p.to_path_buf(),
                events: Vec::new(),
                overflow: 0,
            });
            ACTIVE.store(2, Ordering::Relaxed);
        }
        None => {
            *g = None;
            ACTIVE.store(1, Ordering::Relaxed);
        }
    }
}

/// Small stable ordinal for the calling thread.
fn tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Buffers one complete ("X") event for a closed span.
pub(crate) fn span_event(name: &str, ts_ns: u64, dur_ns: u64, trace: u64) {
    let mut g = state().lock().unwrap_or_else(|e| e.into_inner());
    let Some(st) = g.as_mut() else { return };
    if st.events.len() >= MAX_EVENTS {
        st.overflow += 1;
        return;
    }
    let mut e = String::with_capacity(96);
    let _ = write!(
        e,
        "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"span\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{}",
        crate::sink::json_escape(name),
        ts_ns as f64 / 1e3,
        dur_ns as f64 / 1e3,
        std::process::id(),
        tid(),
    );
    if trace != 0 {
        let _ = write!(e, ",\"args\":{{\"trace\":{trace}}}");
    }
    e.push('}');
    st.events.push(e);
}

/// Writes the buffered events as one JSON array to the configured file
/// (atomically replacing it) and clears the buffer. Returns the number
/// of events written; 0 when disabled or empty. Called by
/// [`crate::finish`]; long-running servers can call it periodically —
/// each flush rewrites the file with the events since the previous one.
pub fn flush() -> usize {
    let (path, events, overflow) = {
        let mut g = state().lock().unwrap_or_else(|e| e.into_inner());
        let Some(st) = g.as_mut() else { return 0 };
        if st.events.is_empty() {
            return 0;
        }
        (
            st.path.clone(),
            std::mem::take(&mut st.events),
            std::mem::replace(&mut st.overflow, 0),
        )
    };
    let mut out = String::with_capacity(events.iter().map(|e| e.len() + 2).sum::<usize>() + 8);
    out.push_str("[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    if overflow > 0 {
        eprintln!("obs: chrome trace buffer overflowed, {overflow} events dropped");
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    if std::fs::write(&path, out).is_err() {
        crate::sink::record_error();
        return 0;
    }
    events.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chrome export state is process-global; tests serialize.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_export_buffers_nothing() {
        let _g = serial();
        set_trace_out(None);
        span_event("quiet", 0, 10, 0);
        assert_eq!(flush(), 0);
    }

    #[test]
    fn events_flush_as_a_json_array() {
        let _g = serial();
        let dir = std::env::temp_dir().join(format!("obs_chrome_{}", std::process::id()));
        let path = dir.join("trace.json");
        set_trace_out(Some(&path));
        span_event("alpha", 1_000, 2_500, 7);
        span_event("beta", 4_000, 1_000, 0);
        assert_eq!(flush(), 2);
        let text = std::fs::read_to_string(&path).expect("trace file");
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"name\":\"alpha\""));
        assert!(text.contains("\"ts\":1.000"));
        assert!(text.contains("\"dur\":2.500"));
        assert!(text.contains("\"args\":{\"trace\":7}"));
        assert!(!text.contains("alpha,")); // events are comma-separated lines
        assert_eq!(flush(), 0, "buffer drained");
        set_trace_out(None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
