//! Always-on flight recorder: the last N events per thread in lock-free
//! ring buffers, dumped as sorted-key JSON on panic, on the first
//! injected `FAULT_PLAN` fault, or on demand (the serve `metrics` verb).
//!
//! Unlike the level-gated spans/counters, the recorder runs even at
//! `OBS_LEVEL=off`: when a process dies the question is "what were the
//! last things every thread did", and that answer must not depend on
//! having remembered to enable tracing. The cost budget is accordingly
//! strict — a [`note`] is a few relaxed atomic stores into a
//! thread-owned slot (no locks after a thread's first note), and memory
//! is bounded at `threads x capacity x 40 bytes`.
//!
//! # Protocol
//!
//! Each thread owns one ring; only that thread writes it, so slots need
//! a seqlock only against concurrent *readers* (a live dump):
//!
//! * writer: claim the next slot, `seq := 0` (release), store payload,
//!   `seq := global++` (release);
//! * reader: load `seq` (acquire) — 0 means empty/in-flight — read the
//!   payload, re-load `seq`; a mismatch means the writer lapped us and
//!   the slot is skipped rather than surfaced torn.
//!
//! Sequence numbers come from one global counter, so a post-join drain
//! has a deterministic total order regardless of which thread's ring a
//! record sits in.
//!
//! # Knobs
//!
//! `OBS_FLIGHT` sets the per-thread capacity (default 256); `0` or
//! `off` disables the recorder entirely ([`note`] becomes one relaxed
//! load). [`configure`] overrides in-process (benches, tests).

use std::cell::{Cell, RefCell};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};

/// One recorded event, as returned by [`drain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number (total order across all threads).
    pub seq: u64,
    /// Event name as passed to [`note`].
    pub name: &'static str,
    /// Trace id active on the noting thread ([`crate::current_trace`]).
    pub trace: u64,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

/// Result of draining every ring: globally-ordered events plus how many
/// older events had already been overwritten.
#[derive(Debug, Clone, Default)]
pub struct FlightDump {
    /// Valid events, sorted by ascending `seq`.
    pub events: Vec<FlightEvent>,
    /// Events lost to ring wrap-around (per-ring `writes - capacity`).
    pub dropped: u64,
}

impl FlightDump {
    /// Sorted-key JSON form (keys alphabetical at every level), so two
    /// dumps of the same state are byte-identical.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\"dropped\":{},\"events\":[", self.dropped);
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"a\":{},\"b\":{},\"name\":\"{}\",\"seq\":{},\"trace\":{}}}",
                e.a,
                e.b,
                crate::sink::json_escape(e.name),
                e.seq,
                e.trace
            );
        }
        out.push_str("]}");
        out
    }
}

struct Slot {
    seq: AtomicU64,
    name_id: AtomicU64,
    trace: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            name_id: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

struct Ring {
    slots: Vec<Slot>,
    /// Monotonic count of writes into this ring (wraps → drops).
    writes: AtomicU64,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            slots: (0..cap).map(|_| Slot::empty()).collect(),
            writes: AtomicU64::new(0),
        }
    }

    /// Single-writer append (only the owning thread calls this).
    fn write(&self, name_id: u32, trace: u64, a: u64, b: u64) {
        let n = self.writes.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        let seq = GLOBAL_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
        slot.seq.store(0, Ordering::Release);
        slot.name_id.store(name_id as u64, Ordering::Relaxed);
        slot.trace.store(trace, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
    }

    /// Seqlock read; `None` for empty or torn (mid-overwrite) slots.
    fn read(&self, i: usize) -> Option<FlightEvent> {
        let slot = &self.slots[i];
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 {
            return None;
        }
        let name_id = slot.name_id.load(Ordering::Relaxed);
        let trace = slot.trace.load(Ordering::Relaxed);
        let a = slot.a.load(Ordering::Relaxed);
        let b = slot.b.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        let s2 = slot.seq.load(Ordering::Relaxed);
        if s1 != s2 {
            return None;
        }
        Some(FlightEvent {
            seq: s1,
            name: name_for(name_id as u32),
            trace,
            a,
            b,
        })
    }
}

/// Global event sequence; 0 is reserved for "empty slot".
static GLOBAL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Per-thread capacity; `CAP_UNINIT` means "read `OBS_FLIGHT` first".
const CAP_UNINIT: usize = usize::MAX;
/// Upper bound on per-thread capacity (keeps a typo from eating RAM).
const CAP_MAX: usize = 65_536;
static CAP: AtomicUsize = AtomicUsize::new(CAP_UNINIT);

/// Per-thread ring capacity (first call reads `OBS_FLIGHT`; 0 = off).
pub fn capacity() -> usize {
    let c = CAP.load(Ordering::Relaxed);
    if c != CAP_UNINIT {
        return c;
    }
    let c = match std::env::var("OBS_FLIGHT") {
        Ok(s) => {
            let s = s.trim().to_ascii_lowercase();
            if s == "off" || s == "false" {
                0
            } else {
                s.parse::<usize>().unwrap_or(256).min(CAP_MAX)
            }
        }
        Err(_) => 256,
    };
    CAP.store(c, Ordering::Relaxed);
    if c > 0 {
        faultsim::set_hit_hook(fault_hook);
    }
    c
}

/// Overrides the per-thread capacity in-process (0 disables). Threads
/// that already allocated a ring keep its size but honour `0` (their
/// [`note`]s become no-ops while disabled).
pub fn configure(cap: usize) {
    CAP.store(cap.min(CAP_MAX), Ordering::Relaxed);
    if cap > 0 {
        faultsim::set_hit_hook(fault_hook);
    }
}

/// `true` when the recorder is capturing.
pub fn flight_enabled() -> bool {
    capacity() > 0
}

/// Every ring ever registered (rings outlive their threads so a
/// post-join drain still sees their final events).
fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static R: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

/// Interned event names: a `u32` id fits a slot word and the hot path
/// resolves it from a thread-local cache without taking the table lock.
fn names() -> &'static Mutex<Vec<&'static str>> {
    static N: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    N.get_or_init(|| Mutex::new(Vec::new()))
}

fn intern_slow(name: &'static str) -> u32 {
    let mut table = names().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(i) = table.iter().position(|n| *n == name) {
        return i as u32;
    }
    table.push(name);
    (table.len() - 1) as u32
}

/// Content-based intern for names only known at runtime (the fault
/// hook). New names leak one small allocation each — the set of fault
/// point names in a process is tiny and fixed.
fn intern_dyn(name: &str) -> u32 {
    let mut table = names().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(i) = table.iter().position(|n| *n == name) {
        return i as u32;
    }
    table.push(Box::leak(name.to_string().into_boxed_str()));
    (table.len() - 1) as u32
}

fn name_for(id: u32) -> &'static str {
    let table = names().lock().unwrap_or_else(|e| e.into_inner());
    table.get(id as usize).copied().unwrap_or("?")
}

thread_local! {
    /// (name pointer, interned id) pairs — tiny, linear scan.
    static NAME_CACHE: RefCell<Vec<(usize, u32)>> = const { RefCell::new(Vec::new()) };
    /// This thread's ring (allocated and registered on first note).
    static RING: RefCell<Option<Arc<Ring>>> = const { RefCell::new(None) };
    /// Re-entrancy guard for the fault hook (a dump can itself hit
    /// fault points like `obs.sink`).
    static IN_HOOK: Cell<bool> = const { Cell::new(false) };
}

fn intern(name: &'static str) -> u32 {
    let key = name.as_ptr() as usize;
    NAME_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if let Some(&(_, id)) = cache.iter().find(|(k, _)| *k == key) {
            return id;
        }
        let id = intern_slow(name);
        cache.push((key, id));
        id
    })
}

/// Records one event into this thread's ring. A few atomic stores when
/// enabled; one relaxed load when `OBS_FLIGHT=0`. The current trace id
/// ([`crate::current_trace`]) is captured automatically.
#[inline]
pub fn note(name: &'static str, a: u64, b: u64) {
    let cap = capacity();
    if cap == 0 {
        return;
    }
    write_event(intern(name), a, b, cap);
}

/// Like [`note`] for a name only known at runtime (interned by content;
/// cold path — the fault hook).
fn note_dyn(name: &str, a: u64, b: u64) {
    let cap = capacity();
    if cap == 0 {
        return;
    }
    write_event(intern_dyn(name), a, b, cap);
}

fn write_event(id: u32, a: u64, b: u64, cap: usize) {
    let trace = crate::current_trace();
    RING.with(|r| {
        let mut ring = r.borrow_mut();
        let ring = ring.get_or_insert_with(|| {
            let new = Arc::new(Ring::new(cap));
            registry()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&new));
            new
        });
        ring.write(id, trace, a, b);
    });
}

/// Collects every ring's valid events, sorted by global sequence (a
/// deterministic total order once writer threads have joined), plus the
/// overwrite count.
pub fn drain() -> FlightDump {
    let rings: Vec<Arc<Ring>> = registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect();
    let mut dump = FlightDump::default();
    for ring in &rings {
        let writes = ring.writes.load(Ordering::Acquire);
        dump.dropped += writes.saturating_sub(ring.slots.len() as u64);
        for i in 0..ring.slots.len() {
            if let Some(e) = ring.read(i) {
                dump.events.push(e);
            }
        }
    }
    dump.events.sort_by_key(|e| e.seq);
    dump
}

/// Clears every registered ring (slots and write counts). The global
/// sequence keeps advancing — drains stay ordered across resets.
pub fn reset() {
    let rings = registry().lock().unwrap_or_else(|e| e.into_inner());
    for ring in rings.iter() {
        for slot in &ring.slots {
            slot.seq.store(0, Ordering::Release);
        }
        ring.writes.store(0, Ordering::Release);
    }
}

/// Writes `dump` to the JSONL sink as one `{"t":"flight",...}` line.
///
/// The `trace.dump` fault point models a torn/failed dump: it degrades
/// typed — the sink error counter increments, `false` comes back, and
/// nothing panics.
fn sink_dump(dump: &FlightDump) -> bool {
    if faultsim::hit("trace.dump") {
        crate::sink::record_error();
        return false;
    }
    crate::sink::write_line(&format!("{{\"t\":\"flight\",\"flight\":{}}}", dump.to_json()));
    true
}

/// Drains the recorder and writes it to the sink; `false` when the dump
/// failed (including an injected `trace.dump` fault).
pub fn dump_to_sink() -> bool {
    sink_dump(&drain())
}

/// Installs a chained panic hook that dumps the recorder to stderr and
/// the sink before the previous hook runs. Idempotent.
pub fn install_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if flight_enabled() {
                let dump = drain();
                eprintln!(
                    "flight recorder ({} events, {} dropped): {}",
                    dump.events.len(),
                    dump.dropped,
                    dump.to_json()
                );
                let _ = sink_dump(&dump);
            }
            prev(info);
        }));
    });
}

/// First-injection dump latch: a `FAULT_PLAN` run dumps the recorder
/// once, at the first injected fault, then keeps noting later ones.
static FAULT_DUMPED: AtomicBool = AtomicBool::new(false);

/// Called by `faultsim` whenever a scripted fault actually fires. Notes
/// the fault into the ring; the first one also dumps to the sink.
fn fault_hook(name: &str) {
    if name == "trace.dump" {
        return; // the dump path's own fault point; never recurse
    }
    let entered = IN_HOOK.with(|f| f.replace(true));
    if entered {
        return;
    }
    note_dyn(name, u64::MAX, 0);
    // `obs.sink` fires from inside the sink lock — noting it is safe,
    // but dumping *to the sink* from there is not (and the sink is
    // degrading anyway). Other faults trigger one dump per process.
    if name != "obs.sink" && !FAULT_DUMPED.swap(true, Ordering::Relaxed) {
        let _ = dump_to_sink();
    }
    IN_HOOK.with(|f| f.set(false));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recorder state is process-global; these tests serialize.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn notes_drain_in_global_order() {
        let _g = serial();
        configure(64);
        reset();
        note("alpha", 1, 2);
        note("beta", 3, 4);
        note("alpha", 5, 6);
        let d = drain();
        let mine: Vec<_> = d
            .events
            .iter()
            .filter(|e| e.name == "alpha" || e.name == "beta")
            .collect();
        assert_eq!(mine.len(), 3);
        assert!(mine.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(mine[0].name, "alpha");
        assert_eq!(mine[1].name, "beta");
        assert_eq!((mine[2].a, mine[2].b), (5, 6));
        assert_eq!(d.dropped, 0);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let _g = serial();
        configure(64);
        reset();
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..100u64 {
                    note("wrap", i, i * 2);
                }
            });
        });
        let d = drain();
        let wraps: Vec<_> = d.events.iter().filter(|e| e.name == "wrap").collect();
        assert_eq!(wraps.len(), 64, "ring keeps exactly the last cap events");
        assert_eq!(wraps.last().unwrap().a, 99, "newest survives");
        assert!(wraps.first().unwrap().a >= 36, "oldest overwritten");
        assert_eq!(d.dropped, 36);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let _g = serial();
        configure(0);
        reset();
        note("ghost", 1, 1);
        assert!(drain().events.iter().all(|e| e.name != "ghost"));
        configure(64);
    }

    #[test]
    fn dump_json_is_sorted_key_and_stable() {
        let _g = serial();
        configure(64);
        reset();
        note("json", 7, 8);
        let d = drain();
        let j1 = d.to_json();
        let j2 = d.to_json();
        assert_eq!(j1, j2);
        assert!(j1.starts_with("{\"dropped\":"));
        assert!(j1.contains("\"a\":7,\"b\":8,\"name\":\"json\""));
        let a = j1.find("\"a\":7").unwrap();
        let s = j1.find("\"seq\":").unwrap();
        assert!(a < s, "keys are alphabetical within an event");
    }
}
