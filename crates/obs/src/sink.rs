//! JSONL sink: one line per event/span/summary record, written to the
//! file named by `OBS_OUT` (parent directories are created), to an
//! in-memory buffer (tests), or dropped when neither is configured.
//! Sink failures disable the sink silently — instrumentation must never
//! take a run down.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Times the sink degraded to [`Target::Drop`] after a write failure
/// (real or injected via the `obs.sink` fault point).
static SINK_ERRORS: AtomicU64 = AtomicU64::new(0);

/// Number of sink write failures observed so far in this process. The
/// sink degrades to dropping lines on the first failure; the count stays
/// as the record that telemetry was lost.
pub fn sink_errors() -> u64 {
    SINK_ERRORS.load(Ordering::Relaxed)
}

/// Counts a telemetry-output failure from another module (flight-dump
/// or Chrome-trace write paths) in the same degradation counter.
pub(crate) fn record_error() {
    SINK_ERRORS.fetch_add(1, Ordering::Relaxed);
}

enum Target {
    /// No sink configured (or the configured one failed): drop lines.
    Drop,
    File(BufWriter<File>),
    Memory(Vec<String>),
}

/// `None` until first use, then lazily resolved from `OBS_OUT`.
static SINK: OnceLock<Mutex<Option<Target>>> = OnceLock::new();

fn sink() -> &'static Mutex<Option<Target>> {
    SINK.get_or_init(|| Mutex::new(None))
}

fn open_path(path: &Path) -> Target {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match File::create(path) {
        Ok(f) => Target::File(BufWriter::new(f)),
        Err(_) => Target::Drop,
    }
}

fn from_env() -> Target {
    match std::env::var("OBS_OUT") {
        Ok(p) if !p.trim().is_empty() => open_path(Path::new(&p)),
        _ => Target::Drop,
    }
}

/// Points the sink at `path`, truncating it. Overrides `OBS_OUT`.
pub fn set_sink_path(path: &Path) {
    let mut g = sink().lock().unwrap_or_else(|e| e.into_inner());
    *g = Some(open_path(path));
}

/// Switches the sink to an in-memory buffer readable with
/// [`take_memory_lines`]. Intended for tests.
pub fn set_sink_memory() {
    let mut g = sink().lock().unwrap_or_else(|e| e.into_inner());
    *g = Some(Target::Memory(Vec::new()));
}

/// Drains and returns the in-memory sink's lines (empty unless
/// [`set_sink_memory`] is active).
pub fn take_memory_lines() -> Vec<String> {
    let mut g = sink().lock().unwrap_or_else(|e| e.into_inner());
    match g.as_mut() {
        Some(Target::Memory(lines)) => std::mem::take(lines),
        _ => Vec::new(),
    }
}

thread_local! {
    /// Re-entrancy guard: the `obs.sink` fault point fires while the
    /// sink lock is held, and the faultsim injection hook may itself
    /// try to write (the flight recorder's first-fault dump). A
    /// re-entrant write on the same thread is dropped instead of
    /// deadlocking.
    static IN_WRITE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Appends one JSONL line (the newline is added here).
pub(crate) fn write_line(line: &str) {
    if IN_WRITE.with(|f| f.replace(true)) {
        return;
    }
    write_line_inner(line);
    IN_WRITE.with(|f| f.set(false));
}

fn write_line_inner(line: &str) {
    let mut g = sink().lock().unwrap_or_else(|e| e.into_inner());
    let target = g.get_or_insert_with(from_env);
    // `obs.sink` fault point: a scripted write failure behaves exactly
    // like a real one — the sink degrades to Drop and the error counter
    // records the loss. Instrumentation must never take a run down.
    if !matches!(target, Target::Drop) && faultsim::hit("obs.sink") {
        *target = Target::Drop;
        SINK_ERRORS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    match target {
        Target::Drop => {}
        Target::File(w) => {
            if writeln!(w, "{line}").is_err() {
                *target = Target::Drop;
                SINK_ERRORS.fetch_add(1, Ordering::Relaxed);
            }
        }
        Target::Memory(lines) => lines.push(line.to_string()),
    }
}

/// Flushes a file-backed sink (no-op otherwise).
pub(crate) fn flush() {
    let mut g = sink().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(Target::File(w)) = g.as_mut() {
        // The sink mutex exists to serialize writer access; flushing the
        // file under it *is* the protocol, and flush() is only called at
        // epoch boundaries, never on the request path.
        let _ = w.flush(); // lint: allow(blocking-while-locked)
    }
}

/// Escapes a string for embedding inside a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sink is process-global; tests that repoint it must not
    /// interleave (and the fault test must own the armed plan).
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny\tz"), "x\\ny\\tz");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn file_sink_writes_lines() {
        let _g = serial();
        let dir = std::env::temp_dir().join("obs_sink_test");
        let path = dir.join("nested").join("out.jsonl");
        set_sink_path(&path);
        write_line("{\"t\":\"event\"}");
        flush();
        let text = std::fs::read_to_string(&path).expect("sink file");
        assert_eq!(text, "{\"t\":\"event\"}\n");
        // Leave the sink in memory mode so other tests are unaffected.
        set_sink_memory();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_sink_drains() {
        let _g = serial();
        set_sink_memory();
        write_line("one");
        write_line("two");
        assert_eq!(take_memory_lines(), vec!["one", "two"]);
        assert!(take_memory_lines().is_empty());
    }

    #[test]
    fn injected_sink_fault_degrades_to_drop_and_counts() {
        let _g = serial();
        set_sink_memory();
        let _ = take_memory_lines();
        let before = sink_errors();
        faultsim::arm("obs.sink@1").expect("plan parses");
        write_line("lost");
        write_line("also dropped: sink already degraded");
        faultsim::disarm();
        assert_eq!(sink_errors(), before + 1, "exactly one failure counted");
        assert!(take_memory_lines().is_empty(), "no line survived the fault");
        // Re-pointing the sink recovers it.
        set_sink_memory();
        write_line("back");
        assert_eq!(take_memory_lines(), vec!["back"]);
    }
}
