//! Structured observability for the AutoSeg DSE and SPA simulators:
//! hierarchical timing spans, counters, histograms, a JSONL event sink
//! and an end-of-run summary report — std-only, no external dependencies
//! (the same philosophy as `autoseg::dse::DsePool`).
//!
//! # Model
//!
//! * **Spans** ([`span!`]) time a scope with a monotonic clock. Spans
//!   nest per thread; closing a span charges its duration to the
//!   enclosing span's *child time*, so every span knows both its total
//!   and its *self* time (total minus children).
//! * **Counters** ([`add`]) and **histograms** ([`record`]) aggregate
//!   named integers: cache hits, simplex pivots, branch-and-bound nodes,
//!   per-candidate latencies.
//! * **Events** ([`event`]) are one-line JSONL records (search progress,
//!   incumbent trajectories, best-so-far curves) written to the sink.
//! * The **report** ([`snapshot`] / [`finish`]) merges everything into a
//!   sorted table: per-span total/self time, the top-N hot spans, every
//!   counter and histogram.
//!
//! All state lives in a sharded, lock-cheap global collector; each thread
//! is pinned to one shard, so concurrent emitters rarely contend. Totals
//! are exact: the snapshot merges all shards under their locks.
//!
//! # Level gating
//!
//! The `OBS_LEVEL` environment variable (or [`set_level`]) selects:
//!
//! * `off` (default) — every API is a no-op costing one relaxed atomic
//!   load; no clocks are read.
//! * `summary` — spans/counters/histograms aggregate in memory; [`event`]
//!   lines go to the sink; [`finish`] renders the summary.
//! * `trace` — additionally, every span close is written to the sink.
//!
//! The sink target is the `OBS_OUT` environment variable (e.g.
//! `OBS_OUT=results/obs/run.jsonl`); without it, events are dropped and
//! only the in-memory aggregation remains.
//!
//! # Determinism
//!
//! Instrumentation reads clocks but never feeds timing back into the
//! instrumented code: enabling tracing cannot change a search result
//! (pinned by the `obs_equiv` integration tests in `autoseg`).
//!
//! # Example
//!
//! ```
//! obs::set_level(obs::Level::Summary);
//! obs::reset();
//! {
//!     let _outer = obs::span!("search");
//!     let _inner = obs::span!("evaluate", candidate = 7);
//!     obs::add("candidates", 1);
//!     obs::record("latency_ns", 1250);
//! }
//! let report = obs::snapshot();
//! assert_eq!(report.counter("candidates"), Some(1));
//! assert!(report.span("search").is_some());
//! obs::set_level(obs::Level::Off);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
pub mod flight;
mod hdr;
mod report;
mod sink;

pub use chrome::set_trace_out;
pub use flight::{FlightDump, FlightEvent};
pub use hdr::{HdrHist, MAX_RELATIVE_ERROR};
pub use report::{HdrRow, HistRow, Report, SpanRow};
pub use sink::{set_sink_memory, set_sink_path, sink_errors, take_memory_lines};

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Instrumentation level (the `OBS_LEVEL` environment variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Everything disabled; every API call is a cheap no-op.
    Off,
    /// Aggregate spans/counters/histograms; emit [`event`] lines.
    Summary,
    /// `Summary` plus one sink line per span close.
    Trace,
}

impl Level {
    /// Parses an `OBS_LEVEL` value. Unknown strings mean `Off`.
    pub fn parse(s: &str) -> Level {
        match s.trim().to_ascii_lowercase().as_str() {
            "summary" | "on" | "1" => Level::Summary,
            "trace" | "full" | "2" => Level::Trace,
            _ => Level::Off,
        }
    }
}

/// `LEVEL` encoding: 0/1/2 = Off/Summary/Trace, `UNINIT` = read env first.
const UNINIT: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

fn level_from(v: u8) -> Level {
    match v {
        1 => Level::Summary,
        2 => Level::Trace,
        _ => Level::Off,
    }
}

/// The current instrumentation level (first call reads `OBS_LEVEL`).
pub fn level() -> Level {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != UNINIT {
        return level_from(v);
    }
    let init = std::env::var("OBS_LEVEL").map_or(Level::Off, |s| Level::parse(&s));
    // A concurrent set_level may race this store; last write wins, and
    // both writes are valid levels — never UNINIT again.
    LEVEL.store(init as u8, Ordering::Relaxed);
    init
}

/// Overrides the instrumentation level (tests, binaries with CLI flags).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// `true` if any instrumentation is active.
#[inline]
pub fn enabled() -> bool {
    level() > Level::Off
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

/// Per-span aggregate.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SpanStat {
    pub count: u64,
    pub total_ns: u64,
    pub self_ns: u64,
}

/// Log2-bucketed histogram aggregate.
#[derive(Debug, Clone)]
pub(crate) struct Hist {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// `buckets[b]` counts values with `64 - leading_zeros(v) == b`
    /// (bucket 0 holds zeros).
    pub buckets: [u64; 65],
}

impl Default for Hist {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Hist {
    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[(64 - v.leading_zeros()) as usize] += 1;
    }

    pub(crate) fn merge(&mut self, o: &Hist) {
        self.count += o.count;
        self.sum = self.sum.saturating_add(o.sum);
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
        for (a, b) in self.buckets.iter_mut().zip(o.buckets.iter()) {
            *a += b;
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0..=1).
    pub(crate) fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if b == 0 { 0 } else { (1u64 << b).saturating_sub(1) };
            }
        }
        self.max
    }
}

#[derive(Debug, Default)]
struct Shard {
    spans: HashMap<&'static str, SpanStat>,
    counters: HashMap<&'static str, u64>,
    hists: HashMap<&'static str, Hist>,
    hdrs: HashMap<&'static str, HdrHist>,
}

struct Collector {
    shards: Vec<Mutex<Shard>>,
    /// Wall-clock origin for event timestamps (restarted by [`reset`]).
    epoch: Mutex<Instant>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// Enough shards that typical worker-pool widths rarely collide.
const SHARDS: usize = 16;

fn collector() -> &'static Collector {
    static C: OnceLock<Collector> = OnceLock::new();
    C.get_or_init(|| Collector {
        shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
        epoch: Mutex::new(Instant::now()),
    })
}

/// Nanoseconds since the collector epoch (used for event timestamps).
fn since_epoch_ns() -> u64 {
    let epoch = *collector().epoch.lock().unwrap_or_else(|e| e.into_inner());
    epoch.elapsed().as_nanos() as u64
}

fn my_shard() -> MutexGuard<'static, Shard> {
    // Each thread is pinned round-robin to one shard: no cross-thread
    // contention until more than `SHARDS` threads emit concurrently.
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    let idx = IDX.with(|i| *i);
    collector().shards[idx]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Adds `delta` to counter `name`.
#[inline]
pub fn add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    *my_shard().counters.entry(name).or_insert(0) += delta;
}

/// Records one `value` into histogram `name`.
#[inline]
pub fn record(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    my_shard().hists.entry(name).or_default().record(value);
}

/// Records one `value` into the fixed-precision quantile histogram
/// `name` ([`HdrHist`]: p50/p90/p99/p999 within ~3%). Shard-local like
/// [`record`]; the snapshot merges shards bucket-wise, which preserves
/// quantiles exactly.
#[inline]
pub fn record_hdr(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    my_shard().hdrs.entry(name).or_default().record(value);
}

// ---------------------------------------------------------------------------
// Trace ids
// ---------------------------------------------------------------------------

thread_local! {
    /// The request trace id active on this thread (0 = none). Always-on
    /// like the flight recorder: attribution must not depend on
    /// `OBS_LEVEL`.
    static TRACE_ID: Cell<u64> = const { Cell::new(0) };
}

/// Sets this thread's current trace id (0 clears it). Serving layers
/// mint an id per request and set it around request execution; worker
/// pools re-set it inside spawned workers ([`current_trace`] is
/// thread-local and does not cross thread spawns by itself).
pub fn set_trace(id: u64) {
    TRACE_ID.with(|t| t.set(id));
}

/// This thread's current trace id (0 when none). Flight-recorder notes
/// and Chrome span events capture it automatically.
pub fn current_trace() -> u64 {
    TRACE_ID.with(|t| t.get())
}

/// RAII trace-id scope: sets `id` and restores the previous id on drop.
#[derive(Debug)]
pub struct TraceGuard {
    prev: u64,
}

impl TraceGuard {
    /// Enters a trace scope for `id`.
    pub fn enter(id: u64) -> TraceGuard {
        let prev = current_trace();
        set_trace(id);
        TraceGuard { prev }
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        set_trace(self.prev);
    }
}

/// Drops all aggregated data and restarts the epoch. The level and sink
/// are untouched. Intended for tests and multi-phase binaries.
pub fn reset() {
    for s in &collector().shards {
        let mut s = s.lock().unwrap_or_else(|e| e.into_inner());
        s.spans.clear();
        s.counters.clear();
        s.hists.clear();
        s.hdrs.clear();
    }
    *collector().epoch.lock().unwrap_or_else(|e| e.into_inner()) = Instant::now();
}

/// Merged snapshot of every shard, sorted hottest-span first.
pub fn snapshot() -> Report {
    let mut spans: HashMap<&'static str, SpanStat> = HashMap::new();
    let mut counters: HashMap<&'static str, u64> = HashMap::new();
    let mut hists: HashMap<&'static str, Hist> = HashMap::new();
    let mut hdrs: HashMap<&'static str, HdrHist> = HashMap::new();
    for shard in &collector().shards {
        let s = shard.lock().unwrap_or_else(|e| e.into_inner());
        for (k, v) in &s.spans {
            let e = spans.entry(k).or_default();
            e.count += v.count;
            e.total_ns += v.total_ns;
            e.self_ns += v.self_ns;
        }
        for (k, v) in &s.counters {
            *counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in &s.hists {
            hists.entry(k).or_default().merge(v);
        }
        for (k, v) in &s.hdrs {
            hdrs.entry(k).or_default().merge(v);
        }
    }
    Report::build(spans, counters, hists, hdrs, since_epoch_ns())
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

struct ActiveSpan {
    name: &'static str,
    start: Instant,
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<ActiveSpan>> = const { RefCell::new(Vec::new()) };
}

/// RAII timing scope: created by [`span!`], recorded on drop.
///
/// When instrumentation is off the guard is inert — no clock is read.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; bind it to a named local"]
pub struct SpanGuard {
    armed: bool,
}

impl SpanGuard {
    /// Opens a span. Prefer the [`span!`] macro.
    pub fn enter(name: &'static str) -> SpanGuard {
        if !enabled() {
            return SpanGuard { armed: false };
        }
        STACK.with(|s| {
            s.borrow_mut().push(ActiveSpan {
                name,
                start: Instant::now(),
                child_ns: 0,
            })
        });
        SpanGuard { armed: true }
    }

    /// Opens a span with lazily-built attributes, written to the sink at
    /// `trace` level on close. The closure runs only when tracing.
    pub fn enter_with(name: &'static str, attrs: impl FnOnce() -> String) -> SpanGuard {
        if level() < Level::Trace {
            return SpanGuard::enter(name);
        }
        let guard = SpanGuard::enter(name);
        if guard.armed {
            let attrs = attrs();
            if !attrs.is_empty() {
                TRACE_ATTRS.with(|a| a.borrow_mut().push((name, attrs)));
            }
        }
        guard
    }
}

thread_local! {
    /// Pending attribute strings for open trace-level spans (name-keyed,
    /// popped at close; spans of equal name close LIFO per thread).
    static TRACE_ATTRS: RefCell<Vec<(&'static str, String)>> =
        const { RefCell::new(Vec::new()) };
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let Some(span) = STACK.with(|s| s.borrow_mut().pop()) else {
            return; // reset() or an unbalanced stack; drop silently
        };
        let dur_ns = span.start.elapsed().as_nanos() as u64;
        let self_ns = dur_ns.saturating_sub(span.child_ns);
        let depth = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += dur_ns;
            }
            stack.len()
        });
        {
            let mut shard = my_shard();
            let e = shard.spans.entry(span.name).or_default();
            e.count += 1;
            e.total_ns += dur_ns;
            e.self_ns += self_ns;
        }
        if chrome::active() {
            chrome::span_event(
                span.name,
                since_epoch_ns().saturating_sub(dur_ns),
                dur_ns,
                current_trace(),
            );
        }
        if level() >= Level::Trace {
            let attrs = TRACE_ATTRS.with(|a| {
                let mut v = a.borrow_mut();
                match v.iter().rposition(|(n, _)| *n == span.name) {
                    Some(i) => v.remove(i).1,
                    None => String::new(),
                }
            });
            let mut line = format!(
                "{{\"t\":\"span\",\"name\":\"{}\",\"ts_ns\":{},\"dur_ns\":{},\"self_ns\":{},\"depth\":{}",
                sink::json_escape(span.name),
                since_epoch_ns().saturating_sub(dur_ns),
                dur_ns,
                self_ns,
                depth,
            );
            if !attrs.is_empty() {
                line.push_str(&format!(
                    ",\"attrs\":\"{}\"",
                    sink::json_escape(attrs.trim_end())
                ));
            }
            line.push('}');
            sink::write_line(&line);
        }
    }
}

/// Opens a named timing span bound to the enclosing scope.
///
/// ```
/// # obs::set_level(obs::Level::Off);
/// let _span = obs::span!("allocate");
/// let _span2 = obs::span!("evaluate", model = "alexnet", shape = 3);
/// ```
///
/// Attribute expressions are evaluated only at `trace` level.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::SpanGuard::enter_with($name, || {
            let mut s = String::new();
            $(
                {
                    use std::fmt::Write as _;
                    let _ = write!(s, concat!(stringify!($key), "={} "), $value);
                }
            )+
            s
        })
    };
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// A JSON-serializable event field value.
#[derive(Debug, Clone)]
pub enum V {
    /// Unsigned integer.
    U(u64),
    /// Signed integer.
    I(i64),
    /// Float (non-finite values serialize as `null`).
    F(f64),
    /// String.
    S(String),
    /// Boolean.
    B(bool),
}

impl From<u64> for V {
    fn from(v: u64) -> V {
        V::U(v)
    }
}
impl From<usize> for V {
    fn from(v: usize) -> V {
        V::U(v as u64)
    }
}
impl From<u32> for V {
    fn from(v: u32) -> V {
        V::U(v as u64)
    }
}
impl From<i64> for V {
    fn from(v: i64) -> V {
        V::I(v)
    }
}
impl From<f64> for V {
    fn from(v: f64) -> V {
        V::F(v)
    }
}
impl From<&str> for V {
    fn from(v: &str) -> V {
        V::S(v.to_string())
    }
}
impl From<String> for V {
    fn from(v: String) -> V {
        V::S(v)
    }
}
impl From<bool> for V {
    fn from(v: bool) -> V {
        V::B(v)
    }
}

impl V {
    fn to_json(&self) -> String {
        match self {
            V::U(v) => v.to_string(),
            V::I(v) => v.to_string(),
            V::F(v) if v.is_finite() => format!("{v}"),
            V::F(_) => "null".to_string(),
            V::S(s) => format!("\"{}\"", sink::json_escape(s)),
            V::B(b) => b.to_string(),
        }
    }
}

/// Writes one structured progress event to the sink (level >= `summary`).
///
/// ```
/// # obs::set_level(obs::Level::Off);
/// obs::event("mip.incumbent", &[("objective", 41.5.into()), ("node", 12u64.into())]);
/// ```
pub fn event(name: &'static str, fields: &[(&str, V)]) {
    if level() < Level::Summary {
        return;
    }
    let mut line = format!(
        "{{\"t\":\"event\",\"name\":\"{}\",\"ts_ns\":{}",
        sink::json_escape(name),
        since_epoch_ns()
    );
    for (k, v) in fields {
        line.push_str(&format!(",\"{}\":{}", sink::json_escape(k), v.to_json()));
    }
    line.push('}');
    sink::write_line(&line);
}

/// Takes the end-of-run snapshot and, when enabled, renders it to stderr
/// and appends it as a final `{"t":"summary",...}` line to the sink.
///
/// Returns `None` when instrumentation is off.
pub fn finish() -> Option<Report> {
    if !enabled() {
        return None;
    }
    let report = snapshot();
    sink::write_line(&format!(
        "{{\"t\":\"summary\",\"report\":{}}}",
        report.to_json()
    ));
    sink::flush();
    chrome::flush();
    eprintln!("{}", report.render(10));
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Global-state tests must not interleave.
    static TEST_GUARD: StdMutex<()> = StdMutex::new(());

    fn with_level<R>(l: Level, f: impl FnOnce() -> R) -> R {
        let _g = TEST_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let prev = level();
        set_level(l);
        reset();
        let r = f();
        set_level(prev);
        r
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("off"), Level::Off);
        assert_eq!(Level::parse("summary"), Level::Summary);
        assert_eq!(Level::parse(" TRACE "), Level::Trace);
        assert_eq!(Level::parse("bogus"), Level::Off);
        assert_eq!(Level::parse(""), Level::Off);
        assert!(Level::Trace > Level::Summary && Level::Summary > Level::Off);
    }

    #[test]
    fn disabled_apis_are_inert() {
        with_level(Level::Off, || {
            let _s = span!("never");
            add("never", 3);
            record("never", 9);
            event("never", &[("x", 1u64.into())]);
            let r = snapshot();
            assert!(r.spans.is_empty());
            assert!(r.counters.is_empty());
            assert!(finish().is_none());
        });
    }

    #[test]
    fn spans_aggregate_and_nest() {
        with_level(Level::Summary, || {
            {
                let _a = span!("outer");
                std::thread::sleep(std::time::Duration::from_millis(2));
                {
                    let _b = span!("inner");
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            let r = snapshot();
            let outer = r.span("outer").expect("outer recorded");
            let inner = r.span("inner").expect("inner recorded");
            assert_eq!(outer.count, 1);
            assert_eq!(inner.count, 1);
            assert!(outer.total_ns >= inner.total_ns);
            // Outer self time excludes the inner span (1 ms slack for
            // clock granularity).
            assert!(outer.self_ns <= outer.total_ns - inner.total_ns + 1_000_000);
            assert_eq!(inner.self_ns, inner.total_ns);
        });
    }

    #[test]
    fn counters_and_histograms_are_exact_across_threads() {
        with_level(Level::Summary, || {
            const THREADS: u64 = 8;
            const PER: u64 = 1000;
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    scope.spawn(move || {
                        for i in 0..PER {
                            add("n", 1);
                            record("h", t * PER + i);
                            let _s = span!("worker");
                        }
                    });
                }
            });
            let r = snapshot();
            assert_eq!(r.counter("n"), Some(THREADS * PER));
            let h = r.hist("h").expect("histogram recorded");
            assert_eq!(h.count, THREADS * PER);
            let n = THREADS * PER;
            assert_eq!(h.sum, n * (n - 1) / 2);
            assert_eq!(h.min, 0);
            assert_eq!(h.max, n - 1);
            assert_eq!(r.span("worker").unwrap().count, THREADS * PER);
        });
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = Hist::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert!(h.quantile(0.5) >= 500 && h.quantile(0.5) <= 1023);
        assert!(h.quantile(1.0) >= 1000);
        assert_eq!(Hist::default().quantile(0.5), 0);
        let mut z = Hist::default();
        z.record(0);
        assert_eq!(z.quantile(1.0), 0);
        assert_eq!(z.min, 0);
    }

    #[test]
    fn reset_clears_everything() {
        with_level(Level::Summary, || {
            add("x", 5);
            record("y", 1);
            {
                let _s = span!("z");
            }
            assert!(!snapshot().is_empty());
            reset();
            let r = snapshot();
            assert!(r.is_empty());
            assert_eq!(r.counter("x"), None);
        });
    }

    #[test]
    fn trace_level_writes_span_lines() {
        with_level(Level::Trace, || {
            set_sink_memory();
            {
                let _s = span!("traced", item = 3);
            }
            event("progress", &[("done", 1u64.into()), ("label", "a\"b".into())]);
            let lines = take_memory_lines();
            assert!(lines.iter().any(|l| l.contains("\"t\":\"span\"")
                && l.contains("\"name\":\"traced\"")
                && l.contains("item=3")));
            assert!(lines
                .iter()
                .any(|l| l.contains("\"t\":\"event\"") && l.contains("a\\\"b")));
        });
    }

    #[test]
    fn summary_level_skips_span_lines_but_keeps_events() {
        with_level(Level::Summary, || {
            set_sink_memory();
            {
                let _s = span!("quiet");
            }
            event("loud", &[]);
            let lines = take_memory_lines();
            assert!(!lines.iter().any(|l| l.contains("\"t\":\"span\"")));
            assert!(lines.iter().any(|l| l.contains("\"name\":\"loud\"")));
        });
    }

    #[test]
    fn finish_emits_summary_line_and_report() {
        with_level(Level::Summary, || {
            set_sink_memory();
            add("done", 2);
            let r = finish().expect("enabled");
            assert_eq!(r.counter("done"), Some(2));
            let lines = take_memory_lines();
            assert!(lines.iter().any(|l| l.contains("\"t\":\"summary\"")));
            let rendered = r.render(5);
            assert!(rendered.contains("done"));
        });
    }

    #[test]
    fn value_json_forms() {
        assert_eq!(V::from(3u64).to_json(), "3");
        assert_eq!(V::from(-4i64).to_json(), "-4");
        assert_eq!(V::from(true).to_json(), "true");
        assert_eq!(V::from("a\"b").to_json(), "\"a\\\"b\"");
        assert_eq!(V::F(f64::NAN).to_json(), "null");
        assert_eq!(V::from(1.5f64).to_json(), "1.5");
    }
}
