//! End-of-run summary report: merged span/counter/histogram tables with
//! a stderr renderer and a hand-rolled JSON form (the workspace carries
//! no JSON serializer; the schema is flat).

use crate::sink::json_escape;
use crate::{HdrHist, Hist, SpanStat};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One span's merged totals.
#[derive(Debug, Clone)]
pub struct SpanRow {
    /// Span name as passed to [`crate::span!`].
    pub name: String,
    /// Number of times the span closed.
    pub count: u64,
    /// Total wall time inside the span, nanoseconds.
    pub total_ns: u64,
    /// Total minus time spent in child spans, nanoseconds.
    pub self_ns: u64,
}

/// One histogram's merged summary.
///
/// The quantiles are *estimates* derived from the log2 buckets (each
/// reported value is its bucket's upper bound, so a p-estimate can
/// overshoot by up to 2x); render and JSON mark them `approx`. For
/// tail-latency work use [`crate::record_hdr`] / [`HdrRow`] instead.
#[derive(Debug, Clone)]
pub struct HistRow {
    /// Histogram name as passed to [`crate::record`].
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Log2-bucket upper bound of the median.
    pub p50: u64,
    /// Log2-bucket upper bound of the 95th percentile.
    pub p95: u64,
    /// Log2-bucket upper bound of the 99th percentile.
    pub p99: u64,
}

/// One fixed-precision quantile histogram's merged summary
/// ([`crate::record_hdr`]; quantiles within ~3.1%).
#[derive(Debug, Clone)]
pub struct HdrRow {
    /// Histogram name as passed to [`crate::record_hdr`].
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

/// Merged snapshot of all collector shards. Produced by
/// [`crate::snapshot`] and [`crate::finish`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Span rows, hottest (largest self time) first.
    pub spans: Vec<SpanRow>,
    /// Counter rows, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram rows, sorted by name.
    pub hists: Vec<HistRow>,
    /// Fixed-precision quantile rows, sorted by name.
    pub hdrs: Vec<HdrRow>,
    /// Nanoseconds since the collector epoch when the snapshot was taken.
    pub wall_ns: u64,
}

impl Report {
    pub(crate) fn build(
        spans: HashMap<&'static str, SpanStat>,
        counters: HashMap<&'static str, u64>,
        hists: HashMap<&'static str, Hist>,
        hdrs: HashMap<&'static str, HdrHist>,
        wall_ns: u64,
    ) -> Report {
        let mut spans: Vec<SpanRow> = spans
            .into_iter()
            .map(|(name, s)| SpanRow {
                name: name.to_string(),
                count: s.count,
                total_ns: s.total_ns,
                self_ns: s.self_ns,
            })
            .collect();
        spans.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));

        let mut counters: Vec<(String, u64)> = counters
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));

        let mut hists: Vec<HistRow> = hists
            .into_iter()
            .map(|(name, h)| HistRow {
                name: name.to_string(),
                count: h.count,
                sum: h.sum,
                min: if h.count == 0 { 0 } else { h.min },
                max: h.max,
                p50: h.quantile(0.5),
                p95: h.quantile(0.95),
                p99: h.quantile(0.99),
            })
            .collect();
        hists.sort_by(|a, b| a.name.cmp(&b.name));

        let mut hdr_rows: Vec<HdrRow> = hdrs
            .into_iter()
            .map(|(name, h)| HdrRow {
                name: name.to_string(),
                count: h.count(),
                sum: h.sum(),
                min: h.min(),
                max: h.max(),
                p50: h.p50(),
                p90: h.p90(),
                p99: h.p99(),
                p999: h.p999(),
            })
            .collect();
        hdr_rows.sort_by(|a, b| a.name.cmp(&b.name));

        Report {
            spans,
            counters,
            hists,
            hdrs: hdr_rows,
            wall_ns,
        }
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.hists.is_empty()
            && self.hdrs.is_empty()
    }

    /// Looks up a counter's total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a span row by name.
    pub fn span(&self, name: &str) -> Option<&SpanRow> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Looks up a histogram row by name.
    pub fn hist(&self, name: &str) -> Option<&HistRow> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Looks up a fixed-precision quantile row by name.
    pub fn hdr(&self, name: &str) -> Option<&HdrRow> {
        self.hdrs.iter().find(|h| h.name == name)
    }

    /// Renders the human-readable summary (the stderr report): the top-N
    /// hot spans by self time, then every counter and histogram.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== obs report ({:.3} s wall) ==",
            self.wall_ns as f64 / 1e9
        );
        if self.is_empty() {
            let _ = writeln!(out, "   (nothing recorded)");
            return out;
        }
        if !self.spans.is_empty() {
            let _ = writeln!(
                out,
                "   {:<28} {:>10} {:>12} {:>12}",
                "span", "count", "total ms", "self ms"
            );
            for s in self.spans.iter().take(top) {
                let _ = writeln!(
                    out,
                    "   {:<28} {:>10} {:>12.3} {:>12.3}",
                    s.name,
                    s.count,
                    s.total_ns as f64 / 1e6,
                    s.self_ns as f64 / 1e6
                );
            }
            if self.spans.len() > top {
                let _ = writeln!(out, "   ... {} more spans", self.spans.len() - top);
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "   {:<40} {:>14}", "counter", "total");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "   {k:<40} {v:>14}");
            }
        }
        if !self.hists.is_empty() {
            // `~` columns: log2-bucket estimates (upper bounds, approx).
            let _ = writeln!(
                out,
                "   {:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "histogram (approx)", "count", "min", "~p50", "~p95", "~p99", "max"
            );
            for h in &self.hists {
                let _ = writeln!(
                    out,
                    "   {:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    h.name, h.count, h.min, h.p50, h.p95, h.p99, h.max
                );
            }
        }
        if !self.hdrs.is_empty() {
            let _ = writeln!(
                out,
                "   {:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "hdr histogram", "count", "p50", "p90", "p99", "p999", "max"
            );
            for h in &self.hdrs {
                let _ = writeln!(
                    out,
                    "   {:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    h.name, h.count, h.p50, h.p90, h.p99, h.p999, h.max
                );
            }
        }
        out
    }

    /// Serializes the whole report as one JSON object (embedded into
    /// `bench_dse`'s output and the sink's final summary line).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"wall_ns\":{},\"spans\":[", self.wall_ns);
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"self_ns\":{}}}",
                json_escape(&s.name),
                s.count,
                s.total_ns,
                s.self_ns
            );
        }
        out.push_str("],\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(k), v);
        }
        out.push_str("},\"hists\":[");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{},\"approx\":true}}",
                json_escape(&h.name),
                h.count,
                h.sum,
                h.min,
                h.p50,
                h.p95,
                h.p99,
                h.max
            );
        }
        out.push_str("],\"hdrs\":[");
        for (i, h) in self.hdrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{}}}",
                json_escape(&h.name),
                h.count,
                h.sum,
                h.min,
                h.p50,
                h.p90,
                h.p99,
                h.p999,
                h.max
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut spans = HashMap::new();
        spans.insert(
            "hot",
            SpanStat {
                count: 4,
                total_ns: 4_000,
                self_ns: 3_000,
            },
        );
        spans.insert(
            "cold",
            SpanStat {
                count: 1,
                total_ns: 500,
                self_ns: 500,
            },
        );
        let mut counters = HashMap::new();
        counters.insert("cache.hits", 9u64);
        let mut hists = HashMap::new();
        let mut h = Hist::default();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        hists.insert("lat", h);
        let mut hdrs = HashMap::new();
        let mut q = HdrHist::new();
        for v in 1..=1000u64 {
            q.record(v);
        }
        hdrs.insert("tail", q);
        Report::build(spans, counters, hists, hdrs, 1_000_000)
    }

    #[test]
    fn spans_sorted_hottest_first() {
        let r = sample();
        assert_eq!(r.spans[0].name, "hot");
        assert_eq!(r.spans[1].name, "cold");
        assert_eq!(r.counter("cache.hits"), Some(9));
        assert_eq!(r.counter("nope"), None);
        let h = r.hist("lat").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        assert!(!r.is_empty());
    }

    #[test]
    fn hist_quantile_estimates_bracket_and_order() {
        let r = sample();
        let h = r.hist("lat").unwrap();
        // Log2 upper bounds: estimates never underestimate and are
        // monotone p50 <= p95 <= p99 <= next power of two above max.
        assert!(h.p50 >= 2 && h.p50 <= h.p95 && h.p95 <= h.p99);
        assert!(h.p99 >= h.max && h.p99 < h.max * 2);
    }

    #[test]
    fn hdr_rows_carry_tight_quantiles() {
        let r = sample();
        let q = r.hdr("tail").unwrap();
        assert_eq!(q.count, 1000);
        assert!(q.p50 >= 500 && q.p50 <= 516, "p50 within 1/32: {}", q.p50);
        assert!(q.p99 >= 990 && q.p99 <= 1000 + 1000 / 32);
        assert!(q.p999 <= q.max);
        assert!(r.hdr("absent").is_none());
    }

    #[test]
    fn render_truncates_to_top_n() {
        let r = sample();
        let top1 = r.render(1);
        assert!(top1.contains("hot"));
        assert!(top1.contains("... 1 more spans"));
        assert!(top1.contains("cache.hits"));
        assert!(top1.contains("approx"), "legacy hists marked approximate");
        assert!(top1.contains("~p95"));
        assert!(top1.contains("hdr histogram"));
        let full = r.render(10);
        assert!(full.contains("cold"));
        assert!(!full.contains("more spans"));
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let r = sample();
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"name\":\"hot\""));
        assert!(j.contains("\"cache.hits\":9"));
        assert!(j.contains("\"wall_ns\":1000000"));
        assert!(j.contains("\"approx\":true"));
        assert!(j.contains("\"p95\":"));
        assert!(j.contains("\"hdrs\":[{\"name\":\"tail\""));
        assert!(j.contains("\"p999\":"));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn empty_report_renders_placeholder() {
        let r = Report::build(
            HashMap::new(),
            HashMap::new(),
            HashMap::new(),
            HashMap::new(),
            0,
        );
        assert!(r.is_empty());
        assert!(r.render(5).contains("nothing recorded"));
        assert!(r.to_json().contains("\"spans\":[]"));
        assert!(r.to_json().contains("\"hdrs\":[]"));
    }
}
