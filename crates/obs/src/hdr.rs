//! Two-level fixed-precision quantile histogram ("HDR-style").
//!
//! The legacy [`crate::record`] histograms use one log2 bucket per power
//! of two, so a p99 estimate can be off by almost 2x — fine for orders
//! of magnitude, useless for tail-latency work. [`HdrHist`] subdivides
//! every power-of-two range into [`SUBS`] linear sub-buckets:
//!
//! * values `< 32` are exact (one bucket per value);
//! * a value with most-significant bit `b >= 5` lands in sub-bucket
//!   `(v >> (b - 5)) & 31`, a range of width `2^(b-5)`.
//!
//! A reported quantile is the *upper bound* of its bucket, so the
//! relative error is at most `1/32` (~3.1%) — "exact-ish" p50/p90/p99/
//! p999 across the full `u64` range in a fixed 1920-slot table (15 KiB).
//! Histograms merge by bucket-wise addition, which is how the sharded
//! collector combines per-thread tails without losing quantile fidelity
//! (unlike mergeable-only-approximately sketches).

/// Bits of linear subdivision per power-of-two range.
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per power-of-two range (`2^SUB_BITS`).
pub const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count: 32 exact low values + 59 subdivided ranges.
const BUCKETS: usize = SUBS * 60;

/// Worst-case relative error of a reported quantile (`1 / SUBS`).
pub const MAX_RELATIVE_ERROR: f64 = 1.0 / SUBS as f64;

/// Fixed-precision quantile histogram over `u64` values.
///
/// ```
/// let mut h = obs::HdrHist::new();
/// for v in 1..=100_000u64 {
///     h.record(v);
/// }
/// let p99 = h.quantile(0.99);
/// assert!((p99 as f64 - 99_000.0).abs() / 99_000.0 < 0.04);
/// ```
#[derive(Clone)]
pub struct HdrHist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    counts: Vec<u64>,
}

impl Default for HdrHist {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for HdrHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HdrHist")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

/// Bucket index of `v` (monotonic in `v`).
fn index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let b = 63 - v.leading_zeros();
    let sub = ((v >> (b - SUB_BITS)) as usize) & (SUBS - 1);
    SUBS * (b - SUB_BITS + 1) as usize + sub
}

/// Largest value mapping to bucket `idx` (saturating at `u64::MAX`).
fn upper(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let b = (idx / SUBS) as u32 + SUB_BITS - 1;
    let sub = (idx % SUBS) as u64;
    let width = 1u64 << (b - SUB_BITS);
    ((1u64 << b) - 1).saturating_add((sub + 1) * width)
}

impl HdrHist {
    /// An empty histogram.
    pub fn new() -> HdrHist {
        HdrHist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            counts: vec![0; BUCKETS],
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.counts[index(v)] += 1;
    }

    /// Bucket-wise merge: `self` absorbs `other`. Quantiles of the merge
    /// equal quantiles of the concatenated streams (same fixed buckets).
    pub fn merge(&mut self, other: &HdrHist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding quantile `q` in `0..=1`,
    /// clamped to the observed `[min, max]` — relative error at most
    /// [`MAX_RELATIVE_ERROR`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= target {
                return upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (`quantile(0.50)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_monotonic_and_upper_brackets() {
        let mut values: Vec<u64> = Vec::new();
        for shift in 0..64u32 {
            for off in [0u64, 1, 3] {
                values.push((1u64 << shift).saturating_add(off << shift.saturating_sub(3)));
            }
        }
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let idx = index(v);
            assert!(idx >= last, "index not monotonic at v={v}");
            assert!(upper(idx) >= v, "upper({idx}) < v={v}");
            last = idx;
        }
        assert_eq!(index(0), 0);
        assert_eq!(upper(index(u64::MAX)), u64::MAX);
        for v in 0..64u64 {
            assert_eq!(upper(index(v)), v, "low values must be exact");
        }
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = HdrHist::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(
                rel <= MAX_RELATIVE_ERROR + 1e-9,
                "q={q}: got {got}, want ~{expect} (rel {rel})"
            );
            assert!(got >= expect, "bucket upper bound never underestimates");
        }
        assert_eq!(h.quantile(1.0), 100_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100_000);
    }

    #[test]
    fn empty_and_single_value() {
        let h = HdrHist::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
        let mut one = HdrHist::new();
        one.record(77);
        assert_eq!(one.p50(), 77);
        assert_eq!(one.p999(), 77);
        let mut zero = HdrHist::new();
        zero.record(0);
        assert_eq!(zero.quantile(1.0), 0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = HdrHist::new();
        let mut b = HdrHist::new();
        let mut whole = HdrHist::new();
        for v in 0..10_000u64 {
            let x = (v * 2_654_435_761) % 1_000_003;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn extreme_values_survive() {
        let mut h = HdrHist::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert!(h.p50() >= u64::MAX / 32 * 31);
    }
}
