//! A complete customized SPA accelerator.

use crate::budget::{HwBudget, Platform, BRAM36K_BYTES};
use crate::schedule::SegmentSchedule;
use benes::{BenesNetwork, Demand, PrunedFabric, RouteError, Routing};
use nnmodel::Workload;
use pucost::{Dataflow, PuConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when assembling or checking a design.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignError {
    /// The per-PU dataflow table does not match the pipeline/segment shape.
    DataflowShape {
        /// Expected `(n_pus, n_segments)`.
        expected: (usize, usize),
        /// Found shape.
        found: (usize, usize),
    },
    /// A segment's inter-PU traffic could not be routed on the fabric.
    FabricUnroutable {
        /// Segment index.
        segment: usize,
        /// Underlying routing failure.
        source: RouteError,
    },
    /// The design has no PUs or a zero batch factor.
    EmptyDesign,
    /// A PU's PE array does not evenly tile the pipeline's PE budget
    /// share, or has a degenerate dimension.
    BadPuArray {
        /// PU index.
        pu: usize,
    },
    /// The design exceeds the budget on one axis.
    OverBudget {
        /// `"pes"` or `"on_chip_bytes"`.
        resource: &'static str,
        /// What the design uses.
        used: u64,
        /// What the budget provides.
        available: u64,
    },
    /// The target budget itself is malformed.
    BadBudget(crate::budget::BudgetError),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::DataflowShape { expected, found } => write!(
                f,
                "dataflow table is {}x{}, expected {}x{}",
                found.0, found.1, expected.0, expected.1
            ),
            DesignError::FabricUnroutable { segment, source } => {
                write!(f, "segment {segment}: fabric routing failed: {source}")
            }
            DesignError::EmptyDesign => write!(f, "design has no PUs or zero batch"),
            DesignError::BadPuArray { pu } => {
                write!(f, "PU {pu} has a degenerate PE array")
            }
            DesignError::OverBudget {
                resource,
                used,
                available,
            } => write!(f, "design uses {used} {resource}, budget has {available}"),
            DesignError::BadBudget(e) => write!(f, "target budget is malformed: {e}"),
        }
    }
}

impl std::error::Error for DesignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DesignError::FabricUnroutable { source, .. } => Some(source),
            DesignError::BadBudget(source) => Some(source),
            _ => None,
        }
    }
}

/// Resource consumption of a design, in budget units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Total PEs (ASIC) / DSPs (FPGA) across PUs, times the batch factor.
    pub pes: usize,
    /// Total on-chip buffer bytes, times the batch factor. For FPGA
    /// targets this is rounded up to whole BRAM36K blocks per buffer.
    pub on_chip_bytes: u64,
}

/// A customized segment-grained pipeline accelerator: the output of the
/// AutoSeg co-design engine and the input of the simulators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaDesign {
    /// Design name (typically `<model>@<budget>`).
    pub name: String,
    /// The PU pipeline.
    pub pus: Vec<PuConfig>,
    /// Model segmentation and layer binding.
    pub schedule: SegmentSchedule,
    /// Chosen dataflow per `[pu][segment]` (Algorithm 1's `DF[n][s]`).
    pub dataflows: Vec<Vec<Dataflow>>,
    /// Frame-level batch replication factor (Algorithm 1 lines 13–16; 1
    /// for latency-oriented designs).
    pub batch: usize,
    /// DRAM bandwidth available to the design (GB/s).
    pub bandwidth_gbps: f64,
    /// Implementation platform.
    pub platform: Platform,
}

impl SpaDesign {
    /// Number of PUs in the pipeline.
    pub fn n_pus(&self) -> usize {
        self.pus.len()
    }

    /// The design's segments.
    pub fn segments(&self) -> &[crate::schedule::Segment] {
        &self.schedule.segments
    }

    /// Total PEs across the pipeline (one batch replica).
    pub fn total_pes(&self) -> usize {
        self.pus.iter().map(PuConfig::num_pe).sum()
    }

    /// Checks the dataflow table shape and validates the schedule.
    ///
    /// # Errors
    ///
    /// [`DesignError::DataflowShape`] on a malformed dataflow table;
    /// schedule constraint violations surface as a panic-free error from
    /// [`SegmentSchedule::validate`] wrapped in an `Err` by the caller
    /// (kept separate since the error types differ).
    pub fn check_shape(&self) -> Result<(), DesignError> {
        let expected = (self.n_pus(), self.schedule.len());
        let rows = self.dataflows.len();
        let cols = self.dataflows.first().map_or(0, Vec::len);
        if rows != expected.0 || self.dataflows.iter().any(|r| r.len() != expected.1) {
            return Err(DesignError::DataflowShape {
                expected,
                found: (rows, cols),
            });
        }
        Ok(())
    }

    /// Resource usage in budget units (includes the batch factor).
    pub fn resources(&self) -> ResourceUsage {
        let pes = self.total_pes() * self.batch;
        let bytes_one: u64 = self
            .pus
            .iter()
            .map(|p| match self.platform {
                Platform::Asic => p.act_buf_bytes + p.wgt_buf_bytes,
                Platform::Fpga => {
                    // Each buffer occupies whole BRAM blocks.
                    let blocks = pucost::util::div_ceil_u64(p.act_buf_bytes, BRAM36K_BYTES)
                        + pucost::util::div_ceil_u64(p.wgt_buf_bytes, BRAM36K_BYTES);
                    blocks * BRAM36K_BYTES
                }
            })
            .sum();
        ResourceUsage {
            pes,
            on_chip_bytes: bytes_one * self.batch as u64,
        }
    }

    /// `true` if the design fits in `budget`.
    pub fn fits(&self, budget: &HwBudget) -> bool {
        let r = self.resources();
        r.pes <= budget.pes && r.on_chip_bytes <= budget.on_chip_bytes
    }

    /// Full pre-flight validation against `budget`: the budget itself,
    /// pipeline non-emptiness, per-PU PE-array sanity, the dataflow table
    /// shape, and both resource axes — with *which* axis overflows and by
    /// how much, where [`fits`](Self::fits) only says yes/no.
    ///
    /// # Errors
    ///
    /// The first [`DesignError`] found.
    pub fn validate_against(&self, budget: &HwBudget) -> Result<(), DesignError> {
        budget.validate().map_err(DesignError::BadBudget)?;
        if self.pus.is_empty() || self.batch == 0 {
            return Err(DesignError::EmptyDesign);
        }
        for (pu, cfg) in self.pus.iter().enumerate() {
            if cfg.num_pe() == 0 {
                return Err(DesignError::BadPuArray { pu });
            }
        }
        self.check_shape()?;
        let r = self.resources();
        if r.pes > budget.pes {
            return Err(DesignError::OverBudget {
                resource: "pes",
                used: r.pes as u64,
                available: budget.pes as u64,
            });
        }
        if r.on_chip_bytes > budget.on_chip_bytes {
            return Err(DesignError::OverBudget {
                resource: "on_chip_bytes",
                used: r.on_chip_bytes,
                available: budget.on_chip_bytes,
            });
        }
        Ok(())
    }

    /// The inter-PU fabric sized for this pipeline.
    pub fn fabric(&self) -> BenesNetwork {
        BenesNetwork::new(self.n_pus().max(2))
    }

    /// Estimated silicon area of the design in mm^2 (PEs + buffers +
    /// pruned fabric), for ASIC reporting. `area` supplies the PE/SRAM
    /// densities; the fabric is costed after pruning against `workload`.
    ///
    /// # Errors
    ///
    /// See [`SpaDesign::segment_routings`].
    pub fn area_mm2(
        &self,
        workload: &Workload,
        area: &pucost::AreaModel,
    ) -> Result<f64, DesignError> {
        let pe_um2: f64 = self.total_pes() as f64 * area.pe_um2;
        let sram_um2: f64 = self
            .pus
            .iter()
            .map(|p| (p.act_buf_bytes + p.wgt_buf_bytes) as f64 * area.sram_um2_per_byte)
            .sum();
        let net = self.fabric();
        let fabric_um2 = self
            .pruned_fabric(workload)?
            .cost(8, net.stages(), &benes::FabricCostModel::tsmc28())
            .area_um2;
        Ok((pe_um2 + sram_um2 + fabric_um2) * self.batch as f64 / 1e6)
    }

    /// Routes every segment's inter-PU traffic on the fabric.
    ///
    /// A consumer PU with several producers (e.g. a concatenation whose
    /// parts live on different PUs) needs more simultaneous transfers than
    /// a circuit-switched network can carry; such demand sets are split
    /// into sequential *configuration phases* — each phase conflict-free —
    /// exactly as the clockless fabric would be reprogrammed between
    /// pieces. The returned list therefore holds one routing per
    /// configuration (at least one per segment, possibly more).
    ///
    /// # Errors
    ///
    /// [`DesignError::FabricUnroutable`] if some phase's pattern exceeds
    /// the fabric's (multicast) capacity.
    pub fn segment_routings(&self, workload: &Workload) -> Result<Vec<Routing>, DesignError> {
        let net = self.fabric();
        let mut routings = Vec::with_capacity(self.schedule.len());
        for s in 0..self.schedule.len() {
            let mut remaining: Vec<Demand> = self
                .schedule
                .fabric_demands(workload, s)
                .into_iter()
                .map(|(src, dsts)| Demand::multicast(src, dsts))
                .collect();
            if remaining.is_empty() {
                let routing = net
                    .route(&[])
                    .map_err(|source| DesignError::FabricUnroutable { segment: s, source })?;
                routings.push(routing);
                continue;
            }
            while !remaining.is_empty() {
                let mut used_dst = std::collections::BTreeSet::new();
                let mut phase = Vec::new();
                let mut next = Vec::new();
                for d in remaining {
                    let (now, later): (Vec<usize>, Vec<usize>) =
                        d.dsts.iter().partition(|o| used_dst.insert(**o));
                    if !now.is_empty() {
                        phase.push(Demand::multicast(d.src, now));
                    }
                    if !later.is_empty() {
                        next.push(Demand::multicast(d.src, later));
                    }
                }
                debug_assert!(!phase.is_empty(), "phase splitting always progresses");
                let routing = net
                    .route(&phase)
                    .map_err(|source| DesignError::FabricUnroutable { segment: s, source })?;
                routings.push(routing);
                remaining = next;
            }
        }
        Ok(routings)
    }

    /// Prunes the fabric to exactly the hardware this design's segments
    /// exercise (Figure 10).
    ///
    /// # Errors
    ///
    /// See [`SpaDesign::segment_routings`].
    pub fn pruned_fabric(&self, workload: &Workload) -> Result<PrunedFabric, DesignError> {
        let routings = self.segment_routings(workload)?;
        let refs: Vec<&Routing> = routings.iter().collect();
        Ok(self.fabric().prune(&refs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Assignment, Segment};
    use nnmodel::{Dtype, GraphBuilder, TensorShape, Workload};

    fn chain_workload(n: usize) -> Workload {
        let mut b = GraphBuilder::new("w", Dtype::Int8, TensorShape::new(4, 16, 16));
        let mut x = b.input();
        for i in 0..n {
            x = b.conv(format!("c{i}"), x, 8, 3, 1, 1).unwrap();
        }
        Workload::from_graph(&b.finish())
    }

    fn design(w: &Workload, n_pus: usize, n_segs: usize) -> SpaDesign {
        let per = w.len() / n_segs;
        let segments: Vec<Segment> = (0..n_segs)
            .map(|s| Segment {
                // Contiguous split: first chunk on PU0, next on PU1, ...
                // (an alternating split would violate Eq. 4).
                assignments: (0..per)
                    .map(|k| Assignment {
                        item: s * per + k,
                        pu: (k * n_pus) / per,
                    })
                    .collect(),
            })
            .collect();
        let schedule = SegmentSchedule::new(segments, n_pus, w).unwrap();
        SpaDesign {
            name: "test".into(),
            pus: (0..n_pus)
                .map(|_| PuConfig::new(4, 8).with_buffers(4096, 2048))
                .collect(),
            schedule,
            dataflows: vec![vec![Dataflow::WeightStationary; n_segs]; n_pus],
            batch: 1,
            bandwidth_gbps: 10.0,
            platform: Platform::Asic,
        }
    }

    #[test]
    fn resources_sum_pus() {
        let w = chain_workload(8);
        let d = design(&w, 2, 2);
        let r = d.resources();
        assert_eq!(r.pes, 2 * 32);
        assert_eq!(r.on_chip_bytes, 2 * (4096 + 2048));
    }

    #[test]
    fn batch_multiplies_resources() {
        let w = chain_workload(8);
        let mut d = design(&w, 2, 2);
        d.batch = 3;
        assert_eq!(d.resources().pes, 3 * 64);
    }

    #[test]
    fn fpga_rounds_buffers_to_bram() {
        let w = chain_workload(8);
        let mut d = design(&w, 2, 2);
        d.platform = Platform::Fpga;
        // 4096 -> 1 block, 2048 -> 1 block (rounded up): 2 blocks per PU.
        assert_eq!(d.resources().on_chip_bytes, 2 * 2 * 4096);
    }

    #[test]
    fn fits_checks_both_axes() {
        let w = chain_workload(8);
        let d = design(&w, 2, 2);
        let mut b = HwBudget::eyeriss();
        assert!(d.fits(&b));
        b.pes = 10;
        assert!(!d.fits(&b));
    }

    #[test]
    fn segment_routings_cover_pipeline_edges() {
        let w = chain_workload(8);
        let d = design(&w, 2, 2);
        let routings = d.segment_routings(&w).unwrap();
        assert_eq!(routings.len(), 2);
        // Each segment has one PU0 -> PU1 crossing.
        let net = d.fabric();
        assert_eq!(net.trace(&routings[0], 0), vec![1]);
        let pruned = d.pruned_fabric(&w).unwrap();
        assert!(pruned.nodes() <= d.fabric().num_nodes());
    }

    #[test]
    fn area_accounts_pes_buffers_and_fabric() {
        let w = chain_workload(8);
        let d = design(&w, 2, 2);
        let area = d.area_mm2(&w, &pucost::AreaModel::tsmc28()).unwrap();
        // 64 PEs * 580 um2 + 12 KB SRAM * 0.6 um2/B ~= 0.045 mm2.
        assert!(area > 0.01 && area < 1.0, "area {area}");
        // Batch scales area linearly.
        let mut d2 = design(&w, 2, 2);
        d2.batch = 2;
        let area2 = d2.area_mm2(&w, &pucost::AreaModel::tsmc28()).unwrap();
        assert!((area2 / area - 2.0).abs() < 1e-9);
    }

    #[test]
    fn validate_against_reports_overflowing_axis() {
        let w = chain_workload(8);
        let d = design(&w, 2, 2);
        let mut b = HwBudget::eyeriss();
        d.validate_against(&b).unwrap();
        b.pes = 10;
        assert!(matches!(
            d.validate_against(&b),
            Err(DesignError::OverBudget { resource: "pes", .. })
        ));
        b = HwBudget::eyeriss();
        b.on_chip_bytes = 16;
        assert!(matches!(
            d.validate_against(&b),
            Err(DesignError::OverBudget {
                resource: "on_chip_bytes",
                ..
            })
        ));
        b.on_chip_bytes = 0;
        assert!(matches!(
            d.validate_against(&b),
            Err(DesignError::BadBudget(_))
        ));
    }

    #[test]
    fn dataflow_shape_checked() {
        let w = chain_workload(8);
        let mut d = design(&w, 2, 2);
        d.check_shape().unwrap();
        d.dataflows.pop();
        assert!(matches!(
            d.check_shape(),
            Err(DesignError::DataflowShape { .. })
        ));
    }
}
