//! Hardware resource budgets (Table II of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A malformed [`HwBudget`].
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetError {
    /// Zero processing elements.
    NoPes,
    /// Zero on-chip memory.
    NoMemory,
    /// Bandwidth or frequency is not a positive finite number.
    BadRate {
        /// Which rate field is broken.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An FPGA budget whose on-chip capacity is not a whole number of
    /// BRAM36K blocks, so BRAM accounting would silently truncate.
    UnalignedBram {
        /// On-chip capacity in bytes.
        on_chip_bytes: u64,
    },
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::NoPes => write!(f, "budget has zero processing elements"),
            BudgetError::NoMemory => write!(f, "budget has zero on-chip memory"),
            BudgetError::BadRate { field, value } => {
                write!(f, "budget {field} must be positive and finite, got {value}")
            }
            BudgetError::UnalignedBram { on_chip_bytes } => write!(
                f,
                "FPGA on-chip capacity {on_chip_bytes} B is not a multiple of one \
                 BRAM36K block ({BRAM36K_BYTES} B)"
            ),
        }
    }
}

impl std::error::Error for BudgetError {}

/// Implementation platform of a budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// ASIC: the PE count is literal MAC units.
    Asic,
    /// FPGA: the PE count is DSP slices (one int8 MAC per DSP per cycle),
    /// and on-chip memory is BRAM.
    Fpga,
}

/// A hardware resource envelope a design must fit in.
///
/// For ASIC scenarios these reproduce the budgets of general DNN processors
/// (the paper customizes an SPA accelerator *of the same resources* and
/// compares); for FPGAs they are the device capacities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HwBudget {
    /// Budget name (e.g. `"eyeriss"`).
    pub name: String,
    /// Platform kind.
    pub platform: Platform,
    /// MAC units (ASIC) or DSP slices (FPGA).
    pub pes: usize,
    /// On-chip memory capacity in bytes.
    pub on_chip_bytes: u64,
    /// DRAM bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
}

/// Bytes in one BRAM36K block (36 Kbit = 4.5 KB; 4 KB usable for byte-wide
/// data ports is the conventional accounting).
pub(crate) const BRAM36K_BYTES: u64 = 4096;

impl HwBudget {
    /// Eyeriss (dense) budget: 192 PEs, 123 KB, 25 GB/s @ 200 MHz.
    pub fn eyeriss() -> Self {
        Self {
            name: "eyeriss".into(),
            platform: Platform::Asic,
            pes: 192,
            on_chip_bytes: 123 * 1024,
            bandwidth_gbps: 25.0,
            freq_mhz: 200.0,
        }
    }

    /// NVDLA-Small budget: 256 PEs, 256 KB, 5 GB/s @ 1 GHz.
    pub fn nvdla_small() -> Self {
        Self {
            name: "nvdla-small".into(),
            platform: Platform::Asic,
            pes: 256,
            on_chip_bytes: 256 * 1024,
            bandwidth_gbps: 5.0,
            freq_mhz: 1000.0,
        }
    }

    /// NVDLA-Large budget: 2048 PEs, 512 KB, 20 GB/s @ 1.37 GHz (the
    /// configuration whose 5.6 int8 TOPs and 280 OPs/Byte ridge point
    /// Section II cites).
    pub fn nvdla_large() -> Self {
        Self {
            name: "nvdla-large".into(),
            platform: Platform::Asic,
            pes: 2048,
            on_chip_bytes: 512 * 1024,
            bandwidth_gbps: 20.0,
            freq_mhz: 1370.0,
        }
    }

    /// EdgeTPU budget: 8192 PEs, 8 MB, 0.5 GB/s @ 500 MHz.
    pub fn edge_tpu() -> Self {
        Self {
            name: "edge-tpu".into(),
            platform: Platform::Asic,
            pes: 8192,
            on_chip_bytes: 8192 * 1024,
            bandwidth_gbps: 0.5,
            freq_mhz: 500.0,
        }
    }

    /// Avnet Ultra96 (Xilinx XAZU3EG): 360 DSPs, 216 BRAM36K, 3.5 GB/s
    /// @ 300 MHz.
    pub fn zu3eg() -> Self {
        Self {
            name: "zu3eg".into(),
            platform: Platform::Fpga,
            pes: 360,
            on_chip_bytes: 216 * BRAM36K_BYTES,
            bandwidth_gbps: 3.5,
            freq_mhz: 300.0,
        }
    }

    /// Xilinx ZC706 (XC7Z045): 900 DSPs, 545 BRAM36K, 5.3 GB/s @ 200 MHz.
    pub fn z7045() -> Self {
        Self {
            name: "7z045".into(),
            platform: Platform::Fpga,
            pes: 900,
            on_chip_bytes: 545 * BRAM36K_BYTES,
            bandwidth_gbps: 5.3,
            freq_mhz: 200.0,
        }
    }

    /// AlphaData 8K5 (XCKU115): 5520 DSPs, 2160 BRAM36K, 19.2 GB/s
    /// @ 200 MHz.
    pub fn ku115() -> Self {
        Self {
            name: "ku115".into(),
            platform: Platform::Fpga,
            pes: 5520,
            on_chip_bytes: 2160 * BRAM36K_BYTES,
            bandwidth_gbps: 19.2,
            freq_mhz: 200.0,
        }
    }

    /// The four ASIC scenarios of Figure 12, in the paper's order.
    pub fn asic_suite() -> Vec<Self> {
        vec![
            Self::eyeriss(),
            Self::nvdla_small(),
            Self::nvdla_large(),
            Self::edge_tpu(),
        ]
    }

    /// The three FPGA devices of Table III.
    pub fn fpga_suite() -> Vec<Self> {
        vec![Self::zu3eg(), Self::z7045(), Self::ku115()]
    }

    /// Pre-flight sanity check: positive PE/memory capacities, positive
    /// finite rates, and BRAM-block-aligned capacity on FPGA platforms.
    /// All Table II/III presets pass; spec-file and user-constructed
    /// budgets should be validated before entering the search.
    ///
    /// # Errors
    ///
    /// The first [`BudgetError`] found.
    pub fn validate(&self) -> Result<(), BudgetError> {
        if self.pes == 0 {
            return Err(BudgetError::NoPes);
        }
        if self.on_chip_bytes == 0 {
            return Err(BudgetError::NoMemory);
        }
        for (field, value) in [
            ("bandwidth_gbps", self.bandwidth_gbps),
            ("freq_mhz", self.freq_mhz),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return Err(BudgetError::BadRate { field, value });
            }
        }
        if self.platform == Platform::Fpga && self.on_chip_bytes % BRAM36K_BYTES != 0 {
            return Err(BudgetError::UnalignedBram {
                on_chip_bytes: self.on_chip_bytes,
            });
        }
        Ok(())
    }

    /// Peak compute performance in MAC/s (1 MAC per PE per cycle).
    pub fn peak_macs_per_sec(&self) -> f64 {
        self.pes as f64 * self.freq_mhz * 1e6
    }

    /// Peak performance in OP/s (2 OPs per MAC, the paper's convention).
    pub fn peak_ops_per_sec(&self) -> f64 {
        2.0 * self.peak_macs_per_sec()
    }

    /// Roofline ridge point in OPs per byte (Figure 2): the minimum CTC
    /// ratio at which the budget reaches peak performance.
    pub fn ridge_ops_per_byte(&self) -> f64 {
        self.peak_ops_per_sec() / (self.bandwidth_gbps * 1e9)
    }

    /// Attainable performance (OP/s) of a workload with CTC ratio
    /// `macs_per_byte` under this budget's roofline.
    pub fn roofline_ops_per_sec(&self, macs_per_byte: f64) -> f64 {
        // The roofline is stated in OPs; CTC in MACs/byte contributes 2 OPs
        // per MAC.
        let ops_per_byte = 2.0 * macs_per_byte;
        (self.bandwidth_gbps * 1e9 * ops_per_byte).min(self.peak_ops_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_presets() {
        let e = HwBudget::eyeriss();
        assert_eq!((e.pes, e.on_chip_bytes), (192, 123 * 1024));
        let nl = HwBudget::nvdla_large();
        assert_eq!(nl.pes, 2048);
        assert_eq!(nl.bandwidth_gbps, 20.0);
        let k = HwBudget::ku115();
        assert_eq!(k.platform, Platform::Fpga);
        assert_eq!(k.on_chip_bytes, 2160 * 4096);
    }

    #[test]
    fn nvdla_large_ridge_matches_paper() {
        // Section II: NVDLA has 5.6 TOPs and 20 GB/s -> 280 OPs/Byte.
        let b = HwBudget::nvdla_large();
        assert!((b.peak_ops_per_sec() / 1e12 - 5.6).abs() < 0.1);
        assert!((b.ridge_ops_per_byte() - 280.0).abs() < 5.0);
    }

    #[test]
    fn edge_tpu_is_severely_memory_bound() {
        let b = HwBudget::edge_tpu();
        assert!(b.ridge_ops_per_byte() > 10_000.0);
    }

    #[test]
    fn roofline_clamps_at_peak() {
        let b = HwBudget::eyeriss();
        let low = b.roofline_ops_per_sec(0.5);
        let high = b.roofline_ops_per_sec(1e9);
        assert!(low < high);
        assert_eq!(high, b.peak_ops_per_sec());
        // Below the ridge, performance is bandwidth * ops-per-byte.
        assert!((low - 0.5 * 2.0 * 25.0e9).abs() < 1.0);
    }

    #[test]
    fn suites_have_expected_sizes() {
        assert_eq!(HwBudget::asic_suite().len(), 4);
        assert_eq!(HwBudget::fpga_suite().len(), 3);
    }

    #[test]
    fn all_presets_validate() {
        for b in HwBudget::asic_suite().into_iter().chain(HwBudget::fpga_suite()) {
            b.validate().expect("preset budget is well-formed");
        }
    }

    #[test]
    fn validate_rejects_degenerate_budgets() {
        let mut b = HwBudget::eyeriss();
        b.pes = 0;
        assert_eq!(b.validate(), Err(BudgetError::NoPes));

        let mut b = HwBudget::eyeriss();
        b.bandwidth_gbps = f64::NAN;
        assert!(matches!(b.validate(), Err(BudgetError::BadRate { .. })));

        let mut b = HwBudget::eyeriss();
        b.freq_mhz = -1.0;
        assert!(matches!(b.validate(), Err(BudgetError::BadRate { .. })));

        let mut b = HwBudget::zu3eg();
        b.on_chip_bytes += 1;
        assert!(matches!(b.validate(), Err(BudgetError::UnalignedBram { .. })));
    }
}
