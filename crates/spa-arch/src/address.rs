//! Circular activation-buffer address generation (Eq. 1 of the paper).

use pucost::util::div_ceil;

/// Computes the activation-buffer word offset for feature-map coordinate
/// `(c, w, h)` on a PU with `rn` array rows, for an ifmap of `ci` channels
/// and width `wi`, under a layer with kernel `k` and stride `s`.
///
/// The buffer stores fmaps channel-first so either dataflow can read them
/// without transformation, and only the `(K + S)` *active* rows are
/// resident — row `h` wraps at `h % (K + S)`, reusing buffer space in a
/// circular-shifted manner (Section IV-B):
///
/// ```text
/// offset = floor(c / Rn) + w * ceil(Ci / Rn)
///        + (h % (K+S)) * Wi * ceil(Ci / Rn)
/// ```
///
/// Each returned offset addresses a word of `Rn` channel-parallel elements.
///
/// # Panics
///
/// Panics if any divisor parameter is zero or the coordinate is out of
/// range.
///
/// # Example
///
/// ```
/// use spa_arch::act_offset;
/// // 2 array rows, 8-channel x 5-wide ifmap, 3x3 kernel stride 1:
/// // four active rows are resident at a time.
/// let a = act_offset(3, 2, 0, 2, 8, 5, 3, 1);
/// let b = act_offset(3, 2, 4, 2, 8, 5, 3, 1); // row 4 reuses row 0's space
/// assert_eq!(a, b);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn act_offset(
    c: usize,
    w: usize,
    h: usize,
    rn: usize,
    ci: usize,
    wi: usize,
    k: usize,
    s: usize,
) -> usize {
    assert!(rn > 0 && k + s > 0, "divisors must be positive");
    assert!(c < ci && w < wi, "coordinate out of range");
    let words_per_pixel = div_ceil(ci, rn);
    c / rn + w * words_per_pixel + (h % (k + s)) * wi * words_per_pixel
}

/// Number of buffer words required to hold the active rows:
/// `(K + S) * Wi * ceil(Ci / Rn)`.
pub fn active_words(rn: usize, ci: usize, wi: usize, k: usize, s: usize) -> usize {
    (k + s) * wi * div_ceil(ci, rn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn offsets_fit_in_active_window() {
        let (rn, ci, wi, k, s) = (4, 32, 14, 3, 2);
        let cap = active_words(rn, ci, wi, k, s);
        for h in 0..20 {
            for w in 0..wi {
                for c in 0..ci {
                    assert!(act_offset(c, w, h, rn, ci, wi, k, s) < cap);
                }
            }
        }
    }

    #[test]
    fn offsets_injective_over_active_rows() {
        // Within any window of (K+S) consecutive rows, distinct
        // (word-channel-group, w, h) triples get distinct offsets.
        let (rn, ci, wi, k, s): (usize, usize, usize, usize, usize) = (4, 16, 7, 3, 1);
        let mut seen = HashSet::new();
        for h in 0..(k + s) {
            for w in 0..wi {
                for cg in 0..ci.div_ceil(rn) {
                    let off = act_offset(cg * rn, w, h, rn, ci, wi, k, s);
                    assert!(seen.insert(off), "collision at ({cg},{w},{h})");
                }
            }
        }
        assert_eq!(seen.len(), active_words(rn, ci, wi, k, s));
    }

    #[test]
    fn rows_wrap_circularly() {
        let (rn, ci, wi, k, s) = (2, 8, 5, 3, 1);
        for h in 0..4 {
            assert_eq!(
                act_offset(0, 0, h, rn, ci, wi, k, s),
                act_offset(0, 0, h + (k + s), rn, ci, wi, k, s)
            );
        }
    }

    #[test]
    fn channels_within_word_share_offset() {
        // Channels in the same Rn-group are read in parallel: same word.
        let (rn, ci, wi, k, s) = (4, 16, 5, 1, 1);
        assert_eq!(
            act_offset(0, 2, 1, rn, ci, wi, k, s),
            act_offset(3, 2, 1, rn, ci, wi, k, s)
        );
        assert_ne!(
            act_offset(0, 2, 1, rn, ci, wi, k, s),
            act_offset(4, 2, 1, rn, ci, wi, k, s)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        act_offset(8, 0, 0, 2, 8, 5, 3, 1);
    }
}
