//! Segment schedules: the model-segmentation output (which items form each
//! segment and which PU runs each item), with validation of the paper's
//! MIP constraints (Eq. 2–4).

use nnmodel::Workload;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One item-to-PU binding inside a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Workload item index.
    pub item: usize,
    /// PU index in the pipeline.
    pub pu: usize,
}

/// One model segment: the set of items executed concurrently on the PU
/// pipeline during one timeslot (Figure 8).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Segment {
    /// Item-to-PU bindings (multiple items may share a PU; they execute
    /// alternately, like L6/L7 in Figure 8).
    pub assignments: Vec<Assignment>,
}

impl Segment {
    /// Items assigned to PU `pu`.
    pub fn items_on(&self, pu: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .filter(|a| a.pu == pu)
            .map(|a| a.item)
            .collect()
    }

    /// All item indices in this segment.
    pub fn items(&self) -> Vec<usize> {
        self.assignments.iter().map(|a| a.item).collect()
    }
}

/// Violation of the segmentation constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// An item appears zero or more than one time (Eq. 2, first row).
    ItemCoverage {
        /// The item in question.
        item: usize,
        /// How many times it was assigned.
        times: usize,
    },
    /// A PU received no item in some segment (Eq. 2, second row).
    IdlePu {
        /// Segment index.
        segment: usize,
        /// The idle PU.
        pu: usize,
    },
    /// A consumer was scheduled in an earlier segment than its producer
    /// (Eq. 3).
    BackwardDependency {
        /// Producing item.
        producer: usize,
        /// Consuming item.
        consumer: usize,
    },
    /// Two PUs exchange data in both directions within one segment (Eq. 4).
    BidirectionalFlow {
        /// Segment index.
        segment: usize,
        /// The PU pair.
        pus: (usize, usize),
    },
    /// An assignment referenced a PU outside the pipeline.
    PuOutOfRange {
        /// The offending PU index.
        pu: usize,
        /// Pipeline width.
        n_pus: usize,
    },
    /// An assignment referenced an item outside the workload.
    ItemOutOfRange {
        /// The offending item index.
        item: usize,
        /// Workload size.
        n_items: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::ItemCoverage { item, times } => {
                write!(f, "item {item} assigned {times} times (must be exactly 1)")
            }
            ScheduleError::IdlePu { segment, pu } => {
                write!(f, "PU {pu} has no work in segment {segment}")
            }
            ScheduleError::BackwardDependency { producer, consumer } => write!(
                f,
                "consumer item {consumer} scheduled before its producer {producer}"
            ),
            ScheduleError::BidirectionalFlow { segment, pus } => write!(
                f,
                "PUs {} and {} exchange data in both directions in segment {segment}",
                pus.0, pus.1
            ),
            ScheduleError::PuOutOfRange { pu, n_pus } => {
                write!(f, "PU {pu} out of range for a {n_pus}-PU pipeline")
            }
            ScheduleError::ItemOutOfRange { item, n_items } => {
                write!(f, "item {item} out of range for a {n_items}-item workload")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A complete segmentation: ordered segments over a fixed-width PU
/// pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentSchedule {
    /// Segments in execution order.
    pub segments: Vec<Segment>,
    /// Pipeline width (number of PUs).
    pub n_pus: usize,
}

impl SegmentSchedule {
    /// Builds a schedule and validates it against `workload`.
    ///
    /// # Errors
    ///
    /// Any [`ScheduleError`] constraint violation.
    pub fn new(
        segments: Vec<Segment>,
        n_pus: usize,
        workload: &Workload,
    ) -> Result<Self, ScheduleError> {
        let s = Self { segments, n_pus };
        s.validate(workload)?;
        Ok(s)
    }

    /// Checks the Eq. 2–4 constraints against `workload`.
    ///
    /// # Errors
    ///
    /// The first violated constraint.
    pub fn validate(&self, workload: &Workload) -> Result<(), ScheduleError> {
        let n_items = workload.len();
        let mut seen = vec![0usize; n_items];
        let mut seg_of = vec![usize::MAX; n_items];
        let mut pu_of = vec![usize::MAX; n_items];
        for (si, seg) in self.segments.iter().enumerate() {
            let mut pu_hit = vec![false; self.n_pus];
            for a in &seg.assignments {
                if a.item >= n_items {
                    return Err(ScheduleError::ItemOutOfRange {
                        item: a.item,
                        n_items,
                    });
                }
                if a.pu >= self.n_pus {
                    return Err(ScheduleError::PuOutOfRange {
                        pu: a.pu,
                        n_pus: self.n_pus,
                    });
                }
                seen[a.item] += 1;
                seg_of[a.item] = si;
                pu_of[a.item] = a.pu;
                pu_hit[a.pu] = true;
            }
            if let Some(pu) = pu_hit.iter().position(|&h| !h) {
                return Err(ScheduleError::IdlePu { segment: si, pu });
            }
        }
        if let Some(item) = seen.iter().position(|&t| t != 1) {
            return Err(ScheduleError::ItemCoverage {
                item,
                times: seen[item],
            });
        }
        // Eq. 3: dependencies never point backward across segments; Eq. 4:
        // no bidirectional PU pairs within a segment.
        let mut flow = vec![vec![false; self.n_pus]; self.n_pus];
        for (si, _) in self.segments.iter().enumerate() {
            for f in flow.iter_mut().flatten() {
                *f = false;
            }
            for item in workload.items() {
                if seg_of[item.index] != si {
                    continue;
                }
                for &(p, _) in &item.preds {
                    if seg_of[p] > si {
                        return Err(ScheduleError::BackwardDependency {
                            producer: p,
                            consumer: item.index,
                        });
                    }
                    if seg_of[p] == si {
                        let (from, to) = (pu_of[p], pu_of[item.index]);
                        if from != to {
                            if flow[to][from] {
                                return Err(ScheduleError::BidirectionalFlow {
                                    segment: si,
                                    pus: (from.min(to), from.max(to)),
                                });
                            }
                            flow[from][to] = true;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// `true` if there are no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The inter-PU communication demands of segment `s`: `(from_pu,
    /// to_pus)` pairs derived from intra-segment data dependencies — the
    /// fabric wiring the Benes network must realize for this timeslot.
    pub fn fabric_demands(&self, workload: &Workload, s: usize) -> Vec<(usize, Vec<usize>)> {
        let seg = &self.segments[s];
        let mut pu_of = std::collections::BTreeMap::new();
        for a in &seg.assignments {
            pu_of.insert(a.item, a.pu);
        }
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); self.n_pus];
        for a in &seg.assignments {
            let item = &workload.items()[a.item];
            for &(p, _) in &item.preds {
                if let Some(&from) = pu_of.get(&p) {
                    if from != a.pu && !fanout[from].contains(&a.pu) {
                        fanout[from].push(a.pu);
                    }
                }
            }
        }
        fanout
            .into_iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(src, mut v)| {
                v.sort_unstable();
                (src, v)
            })
            .collect()
    }

    /// Per-PU operation counts of segment `s` — the numerator of the
    /// paper's operation-distribution vector `V_s` (Eq. 10).
    pub fn pu_ops(&self, workload: &Workload, s: usize) -> Vec<u64> {
        let mut ops = vec![0u64; self.n_pus];
        for a in &self.segments[s].assignments {
            ops[a.pu] += workload.items()[a.item].ops;
        }
        ops
    }

    /// Renders the schedule as a Figure-6-style table: one row per PU, one
    /// column per segment, cells listing the bound layer names.
    ///
    /// ```text
    /// PU-1 | L1          | L5+L6
    /// PU-2 | L2+L3+L4    | L7
    /// ```
    pub fn render(&self, workload: &Workload) -> String {
        use std::fmt::Write as _;
        let cell = |pu: usize, s: usize| -> String {
            let names: Vec<String> = self.segments[s]
                .items_on(pu)
                .iter()
                .map(|&i| workload.items()[i].name.clone())
                .collect();
            if names.is_empty() {
                "-".to_string()
            } else {
                names.join("+")
            }
        };
        let mut widths = vec![0usize; self.len()];
        for (s, w) in widths.iter_mut().enumerate() {
            for pu in 0..self.n_pus {
                *w = (*w).max(cell(pu, s).len());
            }
            *w = (*w).max(format!("segment {}", s + 1).len());
        }
        let mut out = String::new();
        let _ = write!(out, "{:>6}", "");
        for (s, w) in widths.iter().enumerate() {
            let _ = write!(out, " | {:w$}", format!("segment {}", s + 1), w = w);
        }
        out.push('\n');
        for pu in 0..self.n_pus {
            let _ = write!(out, "PU-{:<3}", pu + 1);
            for (s, w) in widths.iter().enumerate() {
                let _ = write!(out, " | {:w$}", cell(pu, s), w = w);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnmodel::{Dtype, GraphBuilder, TensorShape, Workload};

    /// A 6-conv chain workload.
    fn chain6() -> Workload {
        let mut b = GraphBuilder::new("c6", Dtype::Int8, TensorShape::new(4, 16, 16));
        let mut x = b.input();
        for i in 0..6 {
            x = b.conv(format!("c{i}"), x, 8, 3, 1, 1).unwrap();
        }
        Workload::from_graph(&b.finish())
    }

    fn seg(pairs: &[(usize, usize)]) -> Segment {
        Segment {
            assignments: pairs
                .iter()
                .map(|&(item, pu)| Assignment { item, pu })
                .collect(),
        }
    }

    #[test]
    fn valid_two_segment_schedule() {
        let w = chain6();
        let s = SegmentSchedule::new(
            vec![seg(&[(0, 0), (1, 1), (2, 1)]), seg(&[(3, 0), (4, 1), (5, 1)])],
            2,
            &w,
        )
        .unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.pu_ops(&w, 0).len(), 2);
    }

    #[test]
    fn rejects_duplicate_and_missing_items() {
        let w = chain6();
        let dup = SegmentSchedule::new(
            vec![seg(&[(0, 0), (0, 1)]), seg(&[(1, 0), (2, 1), (3, 0), (4, 1), (5, 0)])],
            2,
            &w,
        );
        assert!(matches!(dup, Err(ScheduleError::ItemCoverage { .. })));
    }

    #[test]
    fn rejects_idle_pu() {
        let w = chain6();
        let r = SegmentSchedule::new(
            vec![seg(&[(0, 0), (1, 0), (2, 0)]), seg(&[(3, 0), (4, 1), (5, 1)])],
            2,
            &w,
        );
        assert_eq!(
            r,
            Err(ScheduleError::IdlePu {
                segment: 0,
                pu: 1
            })
        );
    }

    #[test]
    fn rejects_backward_dependency() {
        let w = chain6();
        let r = SegmentSchedule::new(
            vec![seg(&[(3, 0), (4, 1), (5, 1)]), seg(&[(0, 0), (1, 1), (2, 1)])],
            2,
            &w,
        );
        assert!(matches!(r, Err(ScheduleError::BackwardDependency { .. })));
    }

    #[test]
    fn rejects_bidirectional_flow() {
        let w = chain6();
        // 0 on PU0 -> 1 on PU1 -> 2 on PU0: PU0->PU1 and PU1->PU0.
        let r = SegmentSchedule::new(
            vec![
                seg(&[(0, 0), (1, 1), (2, 0)]),
                seg(&[(3, 0), (4, 1), (5, 1)]),
            ],
            2,
            &w,
        );
        assert!(matches!(r, Err(ScheduleError::BidirectionalFlow { .. })));
    }

    #[test]
    fn fabric_demands_follow_dependencies() {
        let w = chain6();
        let s = SegmentSchedule::new(
            vec![seg(&[(0, 0), (1, 1), (2, 2)]), seg(&[(3, 0), (4, 1), (5, 2)])],
            3,
            &w,
        )
        .unwrap();
        // Chain: PU0 -> PU1 -> PU2 in each segment.
        assert_eq!(
            s.fabric_demands(&w, 0),
            vec![(0, vec![1]), (1, vec![2])]
        );
    }

    #[test]
    fn out_of_range_checks() {
        let w = chain6();
        let r = SegmentSchedule::new(vec![seg(&[(0, 5)])], 2, &w);
        assert!(matches!(r, Err(ScheduleError::PuOutOfRange { .. })));
        let r = SegmentSchedule::new(vec![seg(&[(77, 0), (1, 1)])], 2, &w);
        assert!(matches!(r, Err(ScheduleError::ItemOutOfRange { .. })));
    }

    #[test]
    fn error_display() {
        let e = ScheduleError::IdlePu { segment: 1, pu: 2 };
        assert!(e.to_string().contains("no work"));
    }

    #[test]
    fn render_shows_figure6_layout() {
        let w = chain6();
        let s = SegmentSchedule::new(
            vec![seg(&[(0, 0), (1, 1), (2, 1)]), seg(&[(3, 0), (4, 1), (5, 1)])],
            2,
            &w,
        )
        .unwrap();
        let r = s.render(&w);
        assert!(r.contains("PU-1"));
        assert!(r.contains("segment 1") && r.contains("segment 2"));
        assert!(r.contains("c1+c2"), "{r}");
        assert_eq!(r.lines().count(), 3);
    }
}
