//! The SPA hardware template (Section IV of DeepBurning-SEG).
//!
//! This crate is the shared architecture vocabulary of the workspace:
//!
//! * [`HwBudget`] — resource envelopes (#PE/#DSP, on-chip memory, DRAM
//!   bandwidth, clock) with the paper's Table II presets (Eyeriss,
//!   NVDLA-Small/Large, EdgeTPU, and the ZU3EG / 7Z045 / KU115 FPGAs);
//! * [`SegmentSchedule`] — a model segmentation plus layer-to-PU binding,
//!   with validation of the paper's MIP constraints (Eq. 2–4);
//! * [`SpaDesign`] — a complete customized accelerator: PU pipeline,
//!   per-segment dataflows, batch factor and the pruned Benes fabric;
//! * [`act_offset`] — the circular activation-buffer address generator of
//!   Eq. 1.
//!
//! # Example
//!
//! ```
//! use spa_arch::HwBudget;
//!
//! let b = HwBudget::eyeriss();
//! assert_eq!(b.pes, 192);
//! // Ridge point of the roofline (Figure 2): OPs per byte needed to reach
//! // peak performance.
//! assert!(b.ridge_ops_per_byte() > 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod address;
mod budget;
mod design;
mod schedule;

pub use address::{act_offset, active_words};
pub use budget::{BudgetError, HwBudget, Platform};
pub use design::{DesignError, ResourceUsage, SpaDesign};
pub use schedule::{Assignment, ScheduleError, Segment, SegmentSchedule};
