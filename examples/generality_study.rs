//! Generality study (Section VI-F): build an accelerator dedicated to one
//! model, then map *different* models onto its frozen hardware — fixed PU
//! pipeline and pruned Benes fabric — by re-running segmentation with a
//! latency target and connection constraints.
//!
//! ```text
//! cargo run --release --example generality_study
//! ```

use autoseg::generality;
use deepburning_seg::prelude::*;

fn main() -> Result<(), autoseg::AutoSegError> {
    let budget = HwBudget::nvdla_small();

    // Dedicated design for SqueezeNet.
    let host = zoo::squeezenet1_0();
    let dedicated = AutoSeg::new(budget.clone())
        .max_pus(4)
        .max_segments(8)
        .run(&host)?;
    println!(
        "dedicated accelerator for {}: {} PUs, {} segments, {:.3} ms",
        host.name(),
        dedicated.design.n_pus(),
        dedicated.design.segments().len(),
        dedicated.report.seconds * 1e3
    );
    let pruned = dedicated
        .design
        .pruned_fabric(&dedicated.workload)
        .expect("routable");
    println!(
        "pruned fabric: {}/{} nodes survive",
        pruned.nodes(),
        pruned.total_nodes()
    );

    // Map guests onto the frozen hardware.
    for guest_name in ["mobilenet_v1", "inception_v1", "resnet18"] {
        let guest = nnmodel::zoo::by_name(guest_name).expect("zoo model");
        match generality::remap(&dedicated.design, &dedicated.workload, &guest) {
            Ok((remapped, report)) => {
                // Its own dedicated design, for reference.
                let own = AutoSeg::new(budget.clone())
                    .max_pus(4)
                    .max_segments(8)
                    .run(&guest)?;
                println!(
                    "{:>12}: {:.3} ms on the SqueezeNet accelerator ({} segments) vs {:.3} ms dedicated ({:+.0}%)",
                    guest_name,
                    report.seconds * 1e3,
                    remapped.segments().len(),
                    own.report.seconds * 1e3,
                    100.0 * (report.seconds / own.report.seconds - 1.0),
                );
            }
            Err(e) => println!("{guest_name:>12}: not mappable ({e})"),
        }
    }
    Ok(())
}
