//! Quickstart: customize a segment-grained pipeline accelerator for
//! SqueezeNet under the Eyeriss resource budget and compare it against a
//! same-budget general DNN processor.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use deepburning_seg::prelude::*;
use pucost::Dataflow;
use spa_sim::{simulate_processor, simulate_spa};

fn main() -> Result<(), autoseg::AutoSegError> {
    let model = zoo::squeezenet1_0();
    let budget = HwBudget::eyeriss();
    println!(
        "model: {} ({:.1} MMACs), budget: {} ({} PEs, {:.0} KB, {} GB/s)",
        model.name(),
        model.total_ops() as f64 / 1e6,
        budget.name,
        budget.pes,
        budget.on_chip_bytes as f64 / 1024.0,
        budget.bandwidth_gbps,
    );

    // Run the AutoSeg co-design engine: MIP-style segmentation plus the
    // Algorithm-1 heuristic resource allocation.
    let outcome = AutoSeg::new(budget.clone())
        .design_goal(autoseg::DesignGoal::Latency)
        .max_pus(4)
        .max_segments(8)
        .run(&model)?;
    let design = &outcome.design;

    println!("\ncustomized SPA design ({} (N,S) shapes explored):", outcome.explored);
    println!("  {} PUs, {} segments, {} PEs total", design.n_pus(), design.segments().len(), design.total_pes());
    for (i, pu) in design.pus.iter().enumerate() {
        println!(
            "  PU-{}: {}x{} PEs, AB {} B, WB {} B",
            i + 1,
            pu.rows,
            pu.cols,
            pu.act_buf_bytes,
            pu.wgt_buf_bytes
        );
    }
    println!("\n  schedule (Figure-6 style):");
    for line in design.schedule.render(&outcome.workload).lines() {
        println!("    {line}");
    }
    let pruned = design.pruned_fabric(&outcome.workload).expect("routable design");
    println!(
        "  fabric: {}/{} Benes nodes kept after pruning ({} muxes, {} wires)",
        pruned.nodes(),
        pruned.total_nodes(),
        pruned.muxes(),
        pruned.wires()
    );

    // Compare against the layerwise general processor of the same budget.
    let spa = simulate_spa(&outcome.workload, design);
    let baseline = simulate_processor(&outcome.workload, &budget, Dataflow::WeightStationary);
    println!("\nper-frame results:");
    println!(
        "  general processor: {:.3} ms, {:.1} MB DRAM, {:.0}% PE utilization",
        baseline.seconds * 1e3,
        baseline.dram_bytes as f64 / 1e6,
        baseline.utilization * 100.0
    );
    println!(
        "  SPA (AutoSeg):     {:.3} ms, {:.1} MB DRAM, {:.0}% PE utilization",
        spa.seconds * 1e3,
        spa.dram_bytes as f64 / 1e6,
        spa.utilization * 100.0
    );
    println!(
        "  speedup {:.2}x, DRAM traffic reduced {:.0}%",
        baseline.seconds / spa.seconds,
        100.0 * (1.0 - spa.dram_bytes as f64 / baseline.dram_bytes as f64)
    );
    Ok(())
}
