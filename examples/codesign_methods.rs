//! Compare HW/SW co-design strategies (Section VI-G): AutoSeg's
//! MIP-segmentation + heuristic allocation against random / Bayesian /
//! nested-Bayesian search over the same design space.
//!
//! ```text
//! cargo run --release --example codesign_methods
//! ```

use autoseg::codesign::{
    baye_baye, baye_heuristic, mip_baye, mip_heuristic, mip_random, CodesignBudgets,
};
use deepburning_seg::prelude::*;

fn main() -> Result<(), autoseg::AutoSegError> {
    let model = zoo::mobilenet_v1();
    let budget = HwBudget::nvdla_small();
    // threads: 0 auto-sizes the DSE pool (DSE_THREADS env var, else all
    // cores); results are identical for any thread count.
    let iters = CodesignBudgets {
        hw_iters: 120,
        seg_iters: 240,
        seed: 42,
        threads: 0,
    };

    println!(
        "co-design methods on {} under the {} budget:",
        model.name(),
        budget.name
    );
    println!(
        "{:>16}  {:>7}  {:>10}  {:>12}",
        "method", "points", "best ms", "max E (uJ)"
    );
    let runs = [
        mip_heuristic(&model, &budget)?,
        mip_random(&model, &budget, &iters)?,
        mip_baye(&model, &budget, &iters)?,
        baye_heuristic(&model, &budget, &iters)?,
        baye_baye(&model, &budget, &iters)?,
    ];
    for pts in &runs {
        let method = pts.first().map(|p| p.method).unwrap_or("(none)");
        let best = pts
            .iter()
            .map(|p| p.latency_s)
            .fold(f64::INFINITY, f64::min);
        let max_e = pts.iter().map(|p| p.energy_pj).fold(0.0f64, f64::max);
        println!(
            "{:>16}  {:>7}  {:>10.3}  {:>12.1}",
            method,
            pts.len(),
            best * 1e3,
            max_e / 1e6
        );
    }
    println!("\n(the MIP-Heuristic row is the AutoSeg engine; note its best");
    println!(" latency and the much lower worst-case energy of its points)");
    Ok(())
}
