//! Joint multi-model co-design: one SPA accelerator customized for a set
//! of workloads at once (the design-time counterpart of the paper's
//! Section VI-F generality study).
//!
//! ```text
//! cargo run --release --example multi_model
//! ```

use autoseg::multi::design_multi;
use deepburning_seg::prelude::*;

fn main() -> Result<(), autoseg::AutoSegError> {
    let models = vec![
        zoo::squeezenet1_0(),
        zoo::mobilenet_v1(),
        zoo::resnet18(),
    ];
    let budget = HwBudget::nvdla_small();

    let joint = design_multi(&models, &budget, 4, 8)?;
    println!(
        "shared accelerator: {} PUs {:?} under the {} budget",
        joint.n_pus,
        joint.designs[0]
            .pus
            .iter()
            .map(|p| p.num_pe())
            .collect::<Vec<_>>(),
        budget.name
    );
    let pruned = joint.union_pruned_fabric();
    println!(
        "union-pruned fabric: {}/{} nodes, {} muxes + {} wires",
        pruned.nodes(),
        pruned.total_nodes(),
        pruned.muxes(),
        pruned.wires()
    );

    println!("\nper-model performance on the shared hardware:");
    for (model, report) in models.iter().zip(&joint.reports) {
        // Compare with a dedicated design of the same budget.
        let solo = AutoSeg::new(budget.clone())
            .max_pus(4)
            .max_segments(8)
            .run(model)?;
        println!(
            "  {:>14}: {:.3} ms shared vs {:.3} ms dedicated ({:+.0}% sharing cost)",
            model.name(),
            report.seconds * 1e3,
            solo.report.seconds * 1e3,
            100.0 * (report.seconds / solo.report.seconds - 1.0)
        );
    }
    println!(
        "\ngeometric-mean latency: {:.3} ms",
        joint.geomean_seconds() * 1e3
    );
    Ok(())
}
