//! Customize a throughput-oriented SPA accelerator for MobileNetV2 on a
//! low-power edge FPGA (Avnet Ultra96 / Xilinx ZU3EG), the Table III
//! scenario.
//!
//! ```text
//! cargo run --release --example customize_edge_fpga
//! ```

use deepburning_seg::prelude::*;
use spa_sim::simulate_spa;

fn main() -> Result<(), autoseg::AutoSegError> {
    let model = zoo::mobilenet_v2();
    let device = HwBudget::zu3eg();
    println!(
        "device: {} — {} DSPs, {} BRAM36K, {} GB/s @ {} MHz",
        device.name,
        device.pes,
        device.on_chip_bytes / 4096,
        device.bandwidth_gbps,
        device.freq_mhz
    );

    let outcome = AutoSeg::new(device.clone())
        .design_goal(autoseg::DesignGoal::Throughput)
        .max_pus(6)
        .max_segments(10)
        .run(&model)?;
    let design = &outcome.design;
    let report = simulate_spa(&outcome.workload, design);
    let used = design.resources();

    println!("\ndesign for {}:", model.name());
    println!(
        "  {} PUs x batch {}, {} segments",
        design.n_pus(),
        design.batch,
        design.segments().len()
    );
    for (s, seg) in design.segments().iter().enumerate() {
        let layers: Vec<String> = (0..design.n_pus())
            .map(|pu| format!("PU{}:{}", pu + 1, seg.items_on(pu).len()))
            .collect();
        println!("  segment {}: {}", s + 1, layers.join(" "));
    }
    println!(
        "\nresources: {} DSPs ({:.1}%), {} BRAM36K ({:.1}%)",
        used.pes,
        100.0 * used.pes as f64 / device.pes as f64,
        used.on_chip_bytes / 4096,
        100.0 * used.on_chip_bytes as f64 / device.on_chip_bytes as f64
    );
    let peak = 2.0 * used.pes as f64 * device.freq_mhz * 1e6 / 1e9;
    println!(
        "performance: {:.1} GOP/s ({:.1} fps, {:.1}% DSP efficiency)",
        report.gops(),
        report.fps(),
        100.0 * report.gops() / peak
    );
    println!(
        "energy: {:.1} uJ/frame ({:.1} GOP/s/W)",
        report.energy.total_pj() / 1e6,
        report.gops_per_watt()
    );
    Ok(())
}
