//! Cross-crate integration tests: the full AutoSeg flow end to end, with
//! structural invariants checked on every produced design.

use deepburning_seg::prelude::*;
use deepburning_seg::{autoseg, nnmodel, pucost, spa_arch, spa_sim};
use nnmodel::Workload;
use spa_arch::HwBudget;
use spa_sim::{simulate_processor, simulate_spa};

/// A produced design must satisfy every structural invariant at once.
fn check_design(outcome: &autoseg::AutoSegOutcome, budget: &HwBudget) {
    let d = &outcome.design;
    let w = &outcome.workload;
    // Budget.
    assert!(d.fits(budget), "design exceeds budget {}", budget.name);
    // Schedule constraints (Eq. 2-4).
    d.schedule.validate(w).expect("valid schedule");
    // Dataflow table shape.
    d.check_shape().expect("consistent dataflow table");
    // Power-of-two PE arrays (the paper's alignment constraint).
    assert!(d.pus.iter().all(|p| p.num_pe().is_power_of_two()));
    // Every segment routes on the fabric, and pruning preserves them.
    let routings = d.segment_routings(w).expect("routable segments");
    let pruned = d.pruned_fabric(w).expect("prunable");
    for r in &routings {
        assert!(pruned.supports(r));
    }
    // Buffers meet each assigned layer's minimum.
    for (pu_idx, pu) in d.pus.iter().enumerate() {
        for seg in d.segments() {
            for &item in &seg.items_on(pu_idx) {
                let desc = pucost::LayerDesc::from_item(&w.items()[item]);
                assert!(pu.act_buf_bytes >= desc.min_act_buf_bytes());
                assert!(pu.wgt_buf_bytes >= desc.min_wgt_buf_bytes(pu.num_pe()));
            }
        }
    }
    // Simulation sanity.
    let r = &outcome.report;
    assert!(r.seconds > 0.0 && r.seconds.is_finite());
    assert!(r.utilization > 0.0 && r.utilization <= 1.0);
    assert!(r.energy.total_pj() > 0.0);
    assert_eq!(r.macs, w.total_ops());
}

#[test]
fn end_to_end_designs_for_all_models_on_nvdla_small() {
    let budget = HwBudget::nvdla_small();
    for model in nnmodel::zoo::evaluation_models() {
        let out = AutoSeg::new(budget.clone())
            .max_pus(4)
            .max_segments(6)
            .run(&model)
            .unwrap_or_else(|e| panic!("{}: {e}", model.name()));
        check_design(&out, &budget);
    }
}

#[test]
fn end_to_end_designs_across_budgets() {
    let model = nnmodel::zoo::squeezenet1_0();
    for budget in HwBudget::asic_suite().into_iter().chain(HwBudget::fpga_suite()) {
        let out = AutoSeg::new(budget.clone())
            .max_pus(4)
            .max_segments(6)
            .run(&model)
            .unwrap_or_else(|e| panic!("{}: {e}", budget.name));
        check_design(&out, &budget);
    }
}

#[test]
fn autoseg_is_deterministic() {
    let run = || {
        AutoSeg::new(HwBudget::eyeriss())
            .max_pus(3)
            .max_segments(4)
            .run(&nnmodel::zoo::mobilenet_v1())
            .expect("feasible")
    };
    let a = run();
    let b = run();
    assert_eq!(a.design, b.design);
    assert_eq!(a.report.cycles, b.report.cycles);
}

#[test]
fn spa_consistently_reduces_dram_traffic() {
    // The structural invariant behind Figure 13: the SPA design's DRAM
    // traffic never exceeds layerwise traffic, and equals at least the
    // weights + input + output floor.
    let budget = HwBudget::nvdla_large();
    for model in [
        nnmodel::zoo::mobilenet_v2(),
        nnmodel::zoo::resnet18(),
        nnmodel::zoo::inception_v1(),
    ] {
        let w = Workload::from_graph(&model);
        let out = AutoSeg::new(budget.clone())
            .max_pus(4)
            .max_segments(8)
            .run(&model)
            .expect("feasible");
        assert!(out.report.dram_bytes <= w.total_layerwise_access());
        let all: Vec<usize> = (0..w.len()).collect();
        assert!(out.report.dram_bytes >= w.pipelined_access(&all));
    }
}

#[test]
fn throughput_designs_dominate_latency_designs_on_gops() {
    let model = nnmodel::zoo::squeezenet1_0();
    let budget = HwBudget::ku115();
    let lat = AutoSeg::new(budget.clone())
        .max_pus(4)
        .max_segments(6)
        .run(&model)
        .expect("feasible");
    let thr = AutoSeg::new(budget)
        .design_goal(autoseg::DesignGoal::Throughput)
        .max_pus(4)
        .max_segments(6)
        .run(&model)
        .expect("feasible");
    assert!(thr.report.gops() >= lat.report.gops());
}

#[test]
fn designs_are_cloneable_and_comparable() {
    // Designs are plain data: cloning them and resimulating yields
    // identical reports (no hidden state in the simulator).
    let out = AutoSeg::new(HwBudget::eyeriss())
        .max_pus(3)
        .max_segments(3)
        .run(&nnmodel::zoo::squeezenet1_0())
        .expect("feasible");
    let copy = out.design.clone();
    assert_eq!(copy, out.design);
    let r1 = simulate_spa(&out.workload, &out.design);
    let r2 = simulate_spa(&out.workload, &copy);
    assert_eq!(r1, r2);
}

#[test]
fn remap_preserves_hardware_exactly() {
    let budget = HwBudget::nvdla_small();
    let host = AutoSeg::new(budget)
        .max_pus(3)
        .max_segments(6)
        .run(&nnmodel::zoo::squeezenet1_0())
        .expect("feasible");
    let guest = nnmodel::zoo::mobilenet_v1();
    let (design, report) =
        autoseg::generality::remap(&host.design, &host.workload, &guest).expect("mappable");
    assert_eq!(design.pus, host.design.pus);
    assert!(report.seconds > 0.0);
}

#[test]
fn simulators_agree_on_compute_floor() {
    // Whatever the architecture, total MACs are conserved and the
    // compute-cycle floor (macs / PEs) is respected.
    let budget = HwBudget::nvdla_large();
    let w = Workload::from_graph(&nnmodel::zoo::resnet18());
    let base = simulate_processor(&w, &budget, pucost::Dataflow::WeightStationary);
    let floor = w.total_ops() / budget.pes as u64;
    assert!(base.cycles >= floor);
    let out = AutoSeg::new(budget)
        .max_pus(4)
        .max_segments(6)
        .run(&nnmodel::zoo::resnet18())
        .expect("feasible");
    let spa = simulate_spa(&w, &out.design);
    assert!(spa.cycles >= w.total_ops() / out.design.total_pes().max(1) as u64);
}
