//! Integration tests encoding the paper's qualitative claims: these pin
//! the *shape* of the evaluation results (who wins, and roughly by how
//! much) so regressions in any crate surface as claim violations.

use deepburning_seg::prelude::*;
use deepburning_seg::{autoseg, nnmodel, pucost, spa_sim};
use nnmodel::{analysis, Workload};
use pucost::Dataflow;
use spa_arch::HwBudget;
use spa_sim::{simulate_fusion, simulate_processor, simulate_spa};

/// Section II / Figure 3: segment-grained pipelining lifts the CTC ratio
/// of every evaluation model, toward (but not beyond) the full-pipeline
/// bound.
#[test]
fn claim_segmentation_lifts_ctc() {
    for g in nnmodel::zoo::evaluation_models() {
        let w = Workload::from_graph(&g);
        let per_seg = 6.min(w.len());
        let segs = analysis::even_segments(&w, per_seg);
        let layerwise = analysis::layerwise_ctc(&w);
        let segmented = analysis::segmented_ctc(&w, &segs);
        let full = analysis::full_pipeline_ctc(&w);
        assert!(segmented > layerwise, "{}", g.name());
        assert!(full >= segmented, "{}", g.name());
    }
}

/// Figure 12: AutoSeg designs beat (or at worst match) same-budget general
/// processors, with the biggest wins on fmap-dominated models.
#[test]
fn claim_spa_beats_general_processors() {
    let budget = HwBudget::nvdla_large();
    let mut speedups = Vec::new();
    for g in nnmodel::zoo::evaluation_models() {
        let w = Workload::from_graph(&g);
        let base = simulate_processor(&w, &budget, Dataflow::WeightStationary);
        let out = AutoSeg::new(budget.clone())
            .max_pus(6)
            .max_segments(10)
            .run(&g)
            .expect("feasible");
        let s = base.seconds / out.report.seconds;
        assert!(s > 0.95, "{}: speedup {s:.2}", g.name());
        speedups.push((g.name().to_string(), s));
    }
    let avg = speedups.iter().map(|(_, s)| s).sum::<f64>() / speedups.len() as f64;
    assert!(avg > 1.5, "average speedup {avg:.2} too low");
    // fmap-dominated models (MobileNetV2 / SqueezeNet) should beat
    // weight-dominated AlexNet (Section VI-B's Amdahl argument).
    let get = |name: &str| speedups.iter().find(|(n, _)| n == name).unwrap().1;
    assert!(get("mobilenet_v2") > get("alexnet"));
    assert!(get("squeezenet1_0") > get("alexnet"));
}

/// Figure 13: memory-access reduction tracks the intermediate-fmap share
/// of the model's footprint.
#[test]
fn claim_mem_reduction_tracks_fmap_share() {
    let budget = HwBudget::eyeriss();
    for g in [nnmodel::zoo::mobilenet_v1(), nnmodel::zoo::alexnet()] {
        let w = Workload::from_graph(&g);
        let weights: u64 = w.items().iter().map(|i| i.w_bytes).sum();
        let fmap_share = 1.0 - weights as f64 / w.total_layerwise_access() as f64;
        if let Ok(out) = AutoSeg::new(budget.clone()).max_pus(4).max_segments(8).run(&g) {
            let reduction = 1.0 - out.report.dram_bytes as f64 / w.total_layerwise_access() as f64;
            // Reduction can approach but not exceed the fmap share.
            assert!(reduction <= fmap_share + 0.02, "{}", g.name());
        }
    }
}

/// Section VI-D / Figure 15: fusion helps the layerwise baseline but
/// AutoSeg still wins on bandwidth-starved budgets.
#[test]
fn claim_spa_beats_fusion() {
    let budget = HwBudget::nvdla_large();
    for g in [nnmodel::zoo::mobilenet_v2(), nnmodel::zoo::squeezenet1_0()] {
        let w = Workload::from_graph(&g);
        let fused = simulate_fusion(&w, &budget, Some(Dataflow::WeightStationary));
        let plain = simulate_processor(&w, &budget, Dataflow::WeightStationary);
        assert!(fused.seconds <= plain.seconds, "{}", g.name());
        let out = AutoSeg::new(budget.clone())
            .max_pus(6)
            .max_segments(10)
            .run(&g)
            .expect("feasible");
        assert!(
            out.report.seconds < fused.seconds,
            "{}: spa {} vs fusion {}",
            g.name(),
            out.report.seconds,
            fused.seconds
        );
    }
}

/// Section VI-E / Figure 16: fabric + dataflow muxes ("others") stay under
/// 3% of design energy.
#[test]
fn claim_fabric_energy_is_marginal() {
    let budget = HwBudget::nvdla_small();
    for g in [nnmodel::zoo::squeezenet1_0(), nnmodel::zoo::resnet18()] {
        let out = AutoSeg::new(budget.clone())
            .max_pus(4)
            .max_segments(6)
            .run(&g)
            .expect("feasible");
        let frac = out.report.energy.fabric_pj / out.report.energy.total_pj();
        assert!(frac < 0.03, "{}: others {frac:.3}", g.name());
    }
}

/// Section VI-H / Figure 19: the dataflow-hybrid configuration matches or
/// beats both single-dataflow configurations on on-chip data movement.
#[test]
fn claim_hybrid_dataflow_wins() {
    let budget = HwBudget::nvdla_large();
    for name in ["alexnet", "resnet18", "mobilenet_v1", "squeezenet1_0"] {
        let g = nnmodel::zoo::by_name(name).unwrap();
        let w = Workload::from_graph(&g);
        let out = AutoSeg::new(budget.clone())
            .max_pus(6)
            .max_segments(10)
            .run(&g)
            .expect("feasible");
        let force = |df: Dataflow| {
            let mut d = out.design.clone();
            for row in &mut d.dataflows {
                for slot in row {
                    *slot = df;
                }
            }
            simulate_spa(&w, &d).energy.onchip.data_moving_pj()
        };
        let hybrid = out.report.energy.onchip.data_moving_pj();
        let ws = force(Dataflow::WeightStationary);
        let os = force(Dataflow::OutputStationary);
        // Never the worst dataflow, and within 25% of the best — the
        // selection is latency-first (Algorithm 1 line 12), so a small
        // data-moving premium may be traded for speed (e.g. OS on
        // depthwise-heavy models).
        assert!(
            hybrid <= ws.max(os),
            "{name}: hybrid {hybrid:.2e} worse than both dataflows"
        );
        assert!(
            hybrid <= ws.min(os) * 1.25,
            "{name}: hybrid {hybrid:.2e} vs ws {ws:.2e} / os {os:.2e}"
        );
    }
}

/// Section VI-G / Figure 18: the MIP-Heuristic engine finds the best
/// latency and its points have lower worst-case energy than random
/// hardware sampling.
#[test]
fn claim_heuristic_codesign_dominates() {
    use autoseg::codesign::*;
    let model = nnmodel::zoo::alexnet_conv();
    let budget = HwBudget::nvdla_small();
    let iters = CodesignBudgets {
        hw_iters: 60,
        seg_iters: 80,
        seed: 5,
        threads: 0,
    };
    let h = mip_heuristic(&model, &budget).unwrap();
    let r = mip_random(&model, &budget, &iters).unwrap();
    let best = |pts: &[DesignPoint]| {
        pts.iter()
            .map(|p| p.latency_s)
            .fold(f64::INFINITY, f64::min)
    };
    let worst_e = |pts: &[DesignPoint]| pts.iter().map(|p| p.energy_pj).fold(0.0f64, f64::max);
    assert!(best(&h) <= best(&r) * 1.05);
    assert!(worst_e(&h) <= worst_e(&r));
}
